"""Setup shim: enables `pip install -e . --no-use-pep517` in offline
environments that lack the `wheel` package (setuptools reads the project
metadata from pyproject.toml)."""

from setuptools import setup

setup()
