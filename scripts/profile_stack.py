#!/usr/bin/env python
"""Profile any declared stack: cProfile + per-layer exclusive time.

Runs a :class:`repro.stack.StackSpec` workload (a spec file, or the
perf-trajectory macro/smoke shapes) under ``cProfile`` and reports where
the wall time actually goes, twice over:

1. **Per-layer attribution** — every profiled function is charged to the
   stack layer that owns its source file, using the same layer
   vocabulary the observability spans use (``sim``, ``nand``, ``ocssd``,
   ``ftl``, ``qos``, ``obs``, ...).  Exclusive (tottime) seconds, so the
   table answers "which layer is hot", not "which layer is on the call
   path" — a question cumtime cannot answer through ``yield from``
   chains.
2. **Top functions** — the usual cProfile top-N by tottime, for drilling
   into the hot layer.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/profile_stack.py --bench macro
    PYTHONPATH=src python scripts/profile_stack.py --bench smoke --top 40
    PYTHONPATH=src python scripts/profile_stack.py examples/specs/lightlsm_smoke.json

The report prints and is also written to
``benchmarks/results/profile_<name>.txt``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
from typing import Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

#: Source-path → layer attribution table.  First match wins; the labels
#: follow the obs span vocabulary so a profile row and a trace span for
#: the same work carry the same name.
LAYER_ATTRIBUTION: Tuple[Tuple[str, str], ...] = (
    (os.path.join("repro", "sim") + os.sep, "sim"),
    (os.path.join("repro", "nand") + os.sep, "nand"),
    (os.path.join("repro", "ocssd") + os.sep, "ocssd"),
    (os.path.join("repro", "ox") + os.sep, "ftl"),
    (os.path.join("repro", "qos") + os.sep, "qos"),
    (os.path.join("repro", "obs") + os.sep, "obs"),
    (os.path.join("repro", "lsm") + os.sep, "lsm"),
    (os.path.join("repro", "zns") + os.sep, "zns"),
    (os.path.join("repro", "faults") + os.sep, "faults"),
    (os.path.join("repro", "stack") + os.sep, "stack"),
    (os.path.join("repro", "llama") + os.sep, "llama"),
    (os.path.join("repro", "eleos") + os.sep, "eleos"),
    (os.path.join("repro", "") , "repro.other"),
    (os.path.join("benchmarks", ""), "harness"),
    (os.path.join("scripts", ""), "harness"),
)


def attribute(filename: str) -> str:
    """The layer a profiled source file belongs to."""
    for needle, layer in LAYER_ATTRIBUTION:
        if needle in filename:
            return layer
    return "python/other"


def layer_table(stats: pstats.Stats) -> List[Tuple[str, float, int]]:
    """``(layer, exclusive_seconds, calls)`` rows, hottest first."""
    seconds: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    for (filename, _line, _func), row in stats.stats.items():
        cc, nc, tt, ct, callers = row
        layer = attribute(filename)
        seconds[layer] = seconds.get(layer, 0.0) + tt
        calls[layer] = calls.get(layer, 0) + nc
    return sorted(((layer, seconds[layer], calls[layer])
                   for layer in seconds),
                  key=lambda item: item[1], reverse=True)


def run_profiled(spec) -> Tuple[dict, pstats.Stats]:
    from repro.stack.runner import run_spec

    profiler = cProfile.Profile()
    profiler.enable()
    metrics = run_spec(spec)
    profiler.disable()
    return metrics, pstats.Stats(profiler)


def format_report(name: str, metrics: dict, stats: pstats.Stats,
                  top: int) -> str:
    total = sum(tt for (_f, _l, _fn), (cc, nc, tt, ct, cl)
                in stats.stats.items())
    lines = [f"Profile: {name}", "",
             "Workload metrics:"]
    lines.extend(f"  {key:>18s} = {value}"
                 for key, value in metrics.items())
    lines += ["", f"Per-layer exclusive time (total {total:.3f}s):"]
    for layer, seconds, ncalls in layer_table(stats):
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {layer:>12s}  {seconds:8.3f}s  {share:5.1f}%"
                     f"  ({ncalls} calls)")
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("tottime").print_stats(top)
    lines += ["", f"Top {top} functions by exclusive time:",
              buffer.getvalue().rstrip()]
    return "\n".join(lines)


def bench_spec(shape: str):
    """The perf-trajectory stack (macro or smoke) as a profiling target,
    including its workload, so `--bench macro` profiles exactly what the
    recorded BENCH_perf.json numbers measure."""
    from bench_perf_trajectory import MACRO, SMOKE, stack_spec

    cfg = {"macro": MACRO, "smoke": SMOKE}[shape]
    overrides = {"workload": {"kind": "raw_fill_read",
                              "fill_ops": cfg["fill_ops"],
                              "read_ops": cfg["read_ops"]}}
    if cfg.get("qos"):
        overrides["tenants"] = [{"name": "bench"}]
    return stack_spec(cfg, **overrides)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("spec", nargs="?", default=None,
                        help="path to a JSON or TOML StackSpec to profile")
    parser.add_argument("--bench", choices=("macro", "smoke"), default=None,
                        help="profile the perf-trajectory stack instead "
                             "of a spec file")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="functions to list after the layer table "
                             "(default 25)")
    args = parser.parse_args(argv)

    if (args.spec is None) == (args.bench is None):
        parser.error("give a spec file or --bench macro|smoke (not both)")
    if args.bench is not None:
        spec = bench_spec(args.bench)
        name = f"perf_{args.bench}"
    else:
        from repro.stack.__main__ import load_spec
        spec = load_spec(args.spec)
        name = spec.name

    metrics, stats = run_profiled(spec)
    text = format_report(name, metrics, stats, max(1, args.top))
    print(text)
    results_dir = os.path.join(REPO_ROOT, "benchmarks", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"profile_{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\nreport written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
