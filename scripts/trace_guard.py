#!/usr/bin/env python
"""CI guard for the ``repro.trace`` subsystem (a ``scripts/check.sh`` step).

Four checks:

1. **Schema round-trip** — a representative op list survives both
   codecs (JSONL and binary) byte-for-byte at the record level, and the
   reader rejects a version bump.
2. **Record → replay bit-identity** — the lightlsm smoke spec is
   captured and replayed, serially in-process *and* through the
   ``python -m repro.stack`` CLI; every non-wall metric the two runs
   share must match exactly, and capture itself must not perturb the
   unrecorded timeline.  The same trace then replays through a second
   FTL personality (zns) to prove traces are portable across the
   Figure-1 spectrum.
3. **Calibration recovery** — fitting a synthetic profile drawn around
   the TLC preset must recover the ground-truth latencies within
   ``CALIBRATION_TOLERANCE`` on a *held-out* profile (different seed,
   same device).
4. **Detached-recorder overhead** — the perf smoke without any recorder
   attached (best of three) must stay within ``OVERHEAD_TOLERANCE`` of
   the ``ops_per_sec`` in ``benchmarks/results/perf_smoke.txt``, which
   the perf-smoke step rewrote moments earlier in the same check.  This
   prices the ``sim.trace is None`` guards the capture hooks put on the
   host/block hot paths.

``--append`` records the overhead measurement as a sha-stamped
``trace_overhead`` entry in ``BENCH_perf.json``.

Run from the repo root: ``PYTHONPATH=src python scripts/trace_guard.py``.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_perf_trajectory import SMOKE, run_macro    # noqa: E402
from repro.benchhelpers import append_trajectory, git_sha   # noqa: E402
from repro.nand import CellType, timing_for           # noqa: E402
from repro.stack import StackSpec                     # noqa: E402
from repro.stack.runner import run_spec               # noqa: E402
from repro.trace import (                             # noqa: E402
    TraceOp,
    evaluate,
    fit_profile,
    read_trace,
    synth_profile,
    write_trace,
)
from repro.errors import ReproError                   # noqa: E402

OVERHEAD_TOLERANCE = 0.02
CALIBRATION_TOLERANCE = 0.05
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "results",
                             "perf_smoke.txt")

# The lightlsm trace smoke: two closed-loop clients fill, quiesce, then
# read — small enough for CI, busy enough to exercise streams, phases
# and compaction in the replayed timeline.
TRACE_SMOKE = {
    "name": "trace_smoke",
    "geometry": {"num_groups": 2, "pus_per_group": 2,
                 "chunks_per_pu": 16, "pages_per_block": 6},
    "ftl": "lightlsm",
    "ftl_config": {"chunks_per_sstable": 4},
    "workload": {"kind": "fill_then_read_random", "clients": 2,
                 "ops_per_client": 40, "read_ops_per_client": 60},
}

#: Metrics derived from the wall clock; everything else must replay
#: bit-identically.
WALL_KEYS = {"fill_ops_per_sec", "read_ops_per_sec", "ops_per_sec"}


def replay_spec_dict(trace_path: str, ftl: str = "lightlsm",
                     ftl_config=None) -> dict:
    data = copy.deepcopy(TRACE_SMOKE)
    data["name"] = f"trace_smoke_replay_{ftl}"
    data["ftl"] = ftl
    if ftl_config is not None:
        data["ftl_config"] = ftl_config
    data["workload"] = {"kind": "trace", "trace": trace_path}
    return data


def nonwall(metrics: dict) -> dict:
    return {key: value for key, value in metrics.items()
            if key not in WALL_KEYS}


def compare(label: str, captured: dict, replayed: dict) -> None:
    common = set(captured) & set(replayed) - WALL_KEYS
    diffs = {key: (captured[key], replayed[key])
             for key in sorted(common) if captured[key] != replayed[key]}
    if diffs:
        for key, (want, got) in diffs.items():
            print(f"  {key}: captured {want!r} != replayed {got!r}",
                  file=sys.stderr)
        raise SystemExit(
            f"FAIL: {label}: {len(diffs)} non-wall metric(s) diverged "
            f"between capture and replay")
    if "sim_seconds" not in common or "events_processed" not in common:
        raise SystemExit(
            f"FAIL: {label}: runs share no determinism fingerprint")


def check_schema_round_trip(workdir: str) -> str:
    ops = [
        TraceOp(t=0.0, layer="host", kind="put", stream="fill-0",
                key="k0001", size=1024, fill=65),
        TraceOp(t=0.001, layer="host", kind="barrier", stream="quiesce"),
        TraceOp(t=0.002, layer="host", kind="get", stream="readrand-1",
                key="k0001"),
        TraceOp(t=0.003, layer="block", kind="write", lba=48, sectors=24,
                fill=7),
        TraceOp(t=0.004, layer="block", kind="flush"),
        TraceOp(t=0.005, layer="cluster", kind="read", key="17"),
    ]
    for suffix in (".jsonl", ".trace"):
        path = os.path.join(workdir, f"schema{suffix}")
        meta = write_trace(path, ops, meta={"guard": True})
        got_meta, got_ops = read_trace(path)
        if got_ops != ops:
            raise SystemExit(
                f"FAIL: {suffix} codec did not round-trip the op list")
        if got_meta.get("op_count") != len(ops) != meta["op_count"]:
            raise SystemExit(f"FAIL: {suffix} meta lost the op count")
    bumped = os.path.join(workdir, "bumped.jsonl")
    with open(bumped, "w") as handle:
        handle.write('{"format":"repro.trace","version":99}\n')
    try:
        read_trace(bumped)
    except ReproError:
        pass
    else:
        raise SystemExit("FAIL: reader accepted an unsupported version")
    return "schema round-trip: JSONL + binary codecs OK, version gated"


def check_replay_identity(workdir: str) -> str:
    trace_path = os.path.join(workdir, "smoke.jsonl")

    # Capture must not perturb the simulated timeline.
    plain = run_spec(StackSpec.from_dict(copy.deepcopy(TRACE_SMOKE)))
    captured = run_spec(StackSpec.from_dict(copy.deepcopy(TRACE_SMOKE)),
                        trace_out=trace_path)
    trace_ops = captured.pop("trace_ops")
    if plain != captured:
        raise SystemExit(
            "FAIL: attaching the recorder changed the captured run's "
            f"metrics: {plain} != {captured}")

    # Serial in-process replay.
    replayed = run_spec(StackSpec.from_dict(
        replay_spec_dict(trace_path)))
    compare("serial replay", captured, replayed)
    if replayed["replay_ops"] != trace_ops - 1:   # minus the barrier
        raise SystemExit(
            f"FAIL: replay drove {replayed['replay_ops']} ops from a "
            f"{trace_ops}-record trace")

    # The same replay through the CLI (a fresh interpreter).
    spec_path = os.path.join(workdir, "replay.json")
    with open(spec_path, "w") as handle:
        json.dump(replay_spec_dict(trace_path), handle)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.stack", spec_path,
         "--name", "trace_guard_cli_replay"],
        cwd=REPO_ROOT, capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit("FAIL: python -m repro.stack replay exited "
                         f"{proc.returncode}")
    cli_json = os.path.join(REPO_ROOT, "benchmarks", "results",
                            "trace_guard_cli_replay.json")
    with open(cli_json) as handle:
        cli_metrics = json.load(handle)["metrics"]
    compare("CLI replay", captured, cli_metrics)

    # Portability: the identical trace through a second FTL personality.
    other = run_spec(StackSpec.from_dict(
        replay_spec_dict(trace_path, ftl="zns", ftl_config={})))
    if other["replay_ops"] != replayed["replay_ops"]:
        raise SystemExit(
            f"FAIL: zns replay drove {other['replay_ops']} ops, "
            f"lightlsm drove {replayed['replay_ops']}")
    return (f"replay identity: {trace_ops} records, serial + CLI replays "
            f"bit-identical (sim {captured['sim_seconds']}s, "
            f"{captured['events_processed']} events); "
            f"same trace replayed on zns")


def check_calibration() -> str:
    truth = timing_for(CellType.TLC)
    fit = fit_profile(synth_profile(truth, seed=11), jitter=True)
    held_out = synth_profile(truth, seed=12)
    errors = evaluate(fit.timing, held_out)
    if errors["max"] >= CALIBRATION_TOLERANCE:
        raise SystemExit(
            f"FAIL: calibration held-out error {errors['max']:.4f} "
            f">= {CALIBRATION_TOLERANCE} (per-op: {errors})")
    return (f"calibration: held-out max relative error "
            f"{errors['max']:.4f} < {CALIBRATION_TOLERANCE}")


def read_baseline_ops(path: str) -> float:
    with open(path) as handle:
        for line in handle:
            key, _, value = line.partition("=")
            if key.strip() == "ops_per_sec":
                return float(value)
    raise ValueError(f"no ops_per_sec line in {path}")


def check_overhead() -> tuple:
    baseline = read_baseline_ops(BASELINE_PATH)
    best = max(run_macro(SMOKE)["ops_per_sec"] for __ in range(3))
    floor = (1.0 - OVERHEAD_TOLERANCE) * baseline
    verdict = (f"detached-recorder smoke: best-of-3 {best:.1f} ops/s vs "
               f"baseline {baseline:.1f} (floor {floor:.1f})")
    if best < floor:
        raise SystemExit(
            f"FAIL: {verdict} — the trace capture guards cost more than "
            f"{OVERHEAD_TOLERANCE:.0%} with no recorder attached")
    return verdict, {"ops_per_sec": round(best, 1),
                     "baseline_ops_per_sec": round(baseline, 1),
                     "overhead_tolerance": OVERHEAD_TOLERANCE}


def main(argv=None) -> int:
    append = argv is not None and "--append" in argv
    # Overhead first: the measurement wants a fresh heap, before the
    # replay checks churn it with stack builds and subprocess runs.
    verdict, overhead = check_overhead()
    print(verdict)
    with tempfile.TemporaryDirectory(prefix="trace_guard_") as workdir:
        print(check_schema_round_trip(workdir))
        print(check_replay_identity(workdir))
    print(check_calibration())
    if append:
        append_trajectory("trace_overhead", overhead, sha=git_sha())
        print("appended trace_overhead entry to BENCH_perf.json")
    print("trace guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
