#!/usr/bin/env python
"""CI guard for the LSM concurrency plane (a ``scripts/check.sh`` step).

Three checks:

1. **Default-spec bit-identity** — a fill + quiesce over LightLSM with
   every worker count at 1 must land on the pinned pre-refactor
   fingerprint exactly: ``sim_seconds``, ``events_processed``, the
   sha256 digest of the per-put latency series, and the stall total.
   The concurrency plane is opt-in; merely *existing* must not move a
   single simulated event.  If a PR changes the timeline on purpose,
   re-pin ``PINNED`` here in the same commit and say why.
2. **Concurrency smoke** — under the same bursty fill, two flush
   workers must finish in strictly less simulated time than one (the
   frozen-memtable FIFO actually pipelines), and a 2-compaction-worker
   run must reach ``max_in_flight >= 2`` without the executor's
   overlapping-input assertion firing anywhere.
3. **Dispatch sweep** — the §4.2 experiment: with a nonzero per-block
   dispatch CPU and concurrent flush/compaction writers, two dispatch
   workers must beat the paper's single dispatch thread by >= 1.2x
   ops/s on the write-heavy phase.

``--append`` records the sweep as a sha-stamped ``lsm_dispatch``
entry in ``BENCH_perf.json``.

Run from the repo root: ``PYTHONPATH=src python scripts/lsm_guard.py``.
"""

from __future__ import annotations

import hashlib
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.benchhelpers import append_trajectory, git_sha   # noqa: E402
from repro.stack import StackSpec, build_stack              # noqa: E402
from repro.units import KIB, MIB                            # noqa: E402

#: The guard workload's fingerprint on the pre-refactor single-daemon
#: engine (PR 10 baseline).  All-default worker counts must reproduce
#: it bit-for-bit.
PINNED = {
    "sim_seconds": 0.60142025,
    "events_processed": 27861,
    "put_latency_digest": "cbfc61c40540c638",
    "stall_seconds": 1.267275,
    "slowdown_puts": 96,
    "flushes": 24,
    "compactions": 13,
}

#: The dispatch regime where §4.2's bottleneck binds: dispatch CPU
#: comparable to a block program, several concurrent writers.
DISPATCH_CPU = 2e-3
MIN_DISPATCH_SPEEDUP = 1.2


def guard_spec(**overrides) -> StackSpec:
    base = dict(
        name="lsm-guard", ftl="lightlsm",
        geometry={"num_groups": 4, "pus_per_group": 2,
                  "chunks_per_pu": 80, "pages_per_block": 6},
        db={"block_size": 96 * KIB, "write_buffer_bytes": 1 * MIB,
            "l0_compaction_trigger": 2, "level_size_multiplier": 2},
        workload={"kind": "fill_sequential", "clients": 4,
                  "ops_per_client": 6000})
    base.update(overrides)
    return StackSpec(**base)


def run_fill(spec: StackSpec):
    """Build, fill, quiesce; returns (stack, phase BenchResult)."""
    stack = build_stack(spec)
    bench = stack.dbbench()
    workload = spec.workload
    result = bench.fill_sequential(clients=workload.clients,
                                   ops_per_client=workload.ops_per_client)
    bench.quiesce()
    return stack, result


def latency_digest(stack) -> str:
    samples = stack.obs.metrics.histogram("lsm.put.latency_s").samples()
    blob = repr([round(x, 12) for x in samples]).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def check_default_identity() -> str:
    stack, __ = run_fill(guard_spec(obs=True))
    db = stack.db
    got = {
        "sim_seconds": round(stack.sim.now, 9),
        "events_processed": stack.sim.events_processed,
        "put_latency_digest": latency_digest(stack),
        "stall_seconds": round(db.stats.stall_seconds, 9),
        "slowdown_puts": db.stats.slowdown_puts,
        "flushes": db.stats.flushes,
        "compactions": db.stats.compactions,
    }
    if got != PINNED:
        diff = {key: (PINNED[key], got[key]) for key in PINNED
                if got[key] != PINNED[key]}
        raise SystemExit(
            f"FAIL: the default concurrency plane moved the timeline: "
            f"(pinned, got) = {diff}.  If this PR changes the timeline "
            f"on purpose, re-pin lsm_guard.PINNED in the same commit.")
    return (f"default identity: {PINNED['sim_seconds']}s / "
            f"{PINNED['events_processed']} events / "
            f"put digest {PINNED['put_latency_digest']}")


def check_concurrency_smoke() -> str:
    serial, __ = run_fill(guard_spec())
    pipelined, __r = run_fill(guard_spec(lsm_flush_workers=2))
    if pipelined.sim.now >= serial.sim.now:
        raise SystemExit(
            f"FAIL: 2 flush workers did not beat 1 on sim-time "
            f"({pipelined.sim.now} >= {serial.sim.now}) — the frozen "
            f"queue is not pipelining")
    if pipelined.db.stats.max_flush_queue_depth < 2:
        raise SystemExit(
            "FAIL: the flush queue never held 2 frozen memtables under "
            "the bursty fill")
    return (f"concurrency smoke: flush pipeline "
            f"{serial.sim.now:.3f}s -> {pipelined.sim.now:.3f}s sim "
            f"(queue depth {pipelined.db.stats.max_flush_queue_depth})")


def check_input_locks() -> str:
    """The lock-assertion sweep: multi-worker compaction must reach
    real concurrency, and every acquire must pass the overlap assertion
    (a violation raises ReproError out of the run)."""
    stack, __ = run_fill(guard_spec(lsm_flush_workers=4,
                                    lsm_compaction_workers=2))
    executor = stack.db.executor
    if executor.max_in_flight < 2:
        raise SystemExit(
            f"FAIL: compaction concurrency never exceeded "
            f"{executor.max_in_flight} with 2 workers")
    if executor.in_flight != 0:
        raise SystemExit(
            f"FAIL: {executor.in_flight} compaction locks leaked "
            f"past quiesce")
    timeline = stack.db.stats.compaction_timeline
    return (f"input locks: max {executor.max_in_flight} concurrent "
            f"compactions, {len(timeline)} timeline samples, "
            f"0 overlap violations")


def check_dispatch_sweep() -> tuple:
    rows = []
    for workers in (1, 2, 4):
        __, result = run_fill(guard_spec(
            ftl_config={"dispatch_cpu": DISPATCH_CPU},
            lsm_flush_workers=2, lsm_compaction_workers=2,
            lightlsm_dispatch_workers=workers))
        rows.append({"dispatch_workers": workers,
                     "ops_per_sec": round(result.ops_per_sec, 1),
                     "stall_seconds": round(result.stall_seconds, 6),
                     "slowdown_puts": result.slowdown_puts})
    single = rows[0]["ops_per_sec"]
    best = max(row["ops_per_sec"] for row in rows[1:])
    speedup = best / single
    if speedup < MIN_DISPATCH_SPEEDUP:
        raise SystemExit(
            f"FAIL: multi-dispatch peaked at {speedup:.2f}x the single "
            f"dispatch thread (< {MIN_DISPATCH_SPEEDUP}x) — the §4.2 "
            f"bottleneck experiment regressed")
    verdict = (f"dispatch sweep: 1 worker {single:.0f} ops/s, best "
               f"multi {best:.0f} ops/s ({speedup:.2f}x)")
    summary = {"dispatch_cpu": DISPATCH_CPU, "rows": rows,
               "speedup": round(speedup, 4)}
    return verdict, summary


def main(argv=None) -> int:
    append = argv is not None and "--append" in argv
    print(check_default_identity())
    print(check_concurrency_smoke())
    print(check_input_locks())
    verdict, summary = check_dispatch_sweep()
    print(verdict)
    if append:
        append_trajectory("lsm_dispatch", summary, sha=git_sha())
        print("appended lsm_dispatch entry to BENCH_perf.json")
    print("lsm guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
