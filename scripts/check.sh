#!/bin/sh
# Tier-1 gate: the full test suite plus a perf smoke run with the
# regression check (>30% ops/sec drop vs the committed BENCH_perf.json
# entry fails the build).  No tox, no extra deps — plain pytest.
#
# Usage: scripts/check.sh   (or `make check`)
set -e
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== perf smoke (regression gate) =="
# --repeat 3: the median run becomes the perf_smoke.txt baseline the
# obs/qos overhead guards compare against moments later — a single
# lucky-fast run would fail their 2% floors on pure measurement noise.
python benchmarks/bench_perf_trajectory.py --smoke --check --no-append --repeat 3

echo "== obs guard (tracing overhead + trace validity) =="
python scripts/obs_guard.py

echo "== qos guard (no-qos fast path + isolation smoke) =="
python scripts/qos_guard.py

echo "== stack guard (no inline wiring + spec smoke) =="
python scripts/stack_guard.py

echo "== cluster guard (serial/parallel identity + wrapper overhead) =="
python scripts/cluster_guard.py

echo "== trace guard (record/replay identity + calibration + overhead) =="
python scripts/trace_guard.py

echo "== policy guard (default-policy identity + WAF ablation smoke) =="
python scripts/policy_guard.py

echo "== lsm guard (default bit-identity + concurrency plane smoke) =="
python scripts/lsm_guard.py

echo "== crash-consistency smoke (randomized power cuts) =="
python -m repro.faults.checker --seeds 20

echo "check: OK"
