#!/usr/bin/env python
"""CI guard for the observability subsystem (a ``scripts/check.sh`` step).

Two checks:

1. **Overhead** — the tracing-*disabled* perf smoke (best of three, to
   damp scheduler noise) must stay within ``OVERHEAD_TOLERANCE`` of the
   ``ops_per_sec`` recorded in ``benchmarks/results/perf_smoke.txt``.
   The perf-smoke step that runs moments earlier in the same check
   rewrites that file, so the comparison is same-machine/same-load and
   isolates the cost of the ``if obs is not None`` hot-path guards.
2. **Trace validity** — a traced run of the same workload must export a
   Chrome trace that ``json.loads`` back, whose spans nest correctly
   and whose per-layer attribution is consistent (layer exclusive
   times sum to the end-to-end root durations).  The attribution table
   is printed, and the trace is left in ``benchmarks/results/`` as an
   inspectable artifact.

Run from the repo root: ``PYTHONPATH=src python scripts/obs_guard.py``.
"""

from __future__ import annotations

import json
import os
import random
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_perf_trajectory import SMOKE, run_macro, stack_spec   # noqa: E402
from repro.obs import (                               # noqa: E402
    Obs,
    attribute,
    format_table,
    spans_from_chrome,
    validate_nesting,
    write_chrome_trace,
)
from repro.stack import build_stack                   # noqa: E402

SECTOR = 4096
OVERHEAD_TOLERANCE = 0.02
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "results",
                             "perf_smoke.txt")
TRACE_PATH = os.path.join(REPO_ROOT, "benchmarks", "results",
                          "obs_smoke_trace.json")


def read_baseline_ops(path: str) -> float:
    """Extract ``ops_per_sec`` from the perf-smoke report lines
    (``  {key:>18s} = {value}``)."""
    with open(path) as handle:
        for line in handle:
            key, _, value = line.partition("=")
            if key.strip() == "ops_per_sec":
                return float(value)
    raise ValueError(f"no ops_per_sec line in {path}")


def check_overhead() -> str:
    baseline = read_baseline_ops(BASELINE_PATH)
    best = max(run_macro(SMOKE)["ops_per_sec"] for __ in range(3))
    floor = (1.0 - OVERHEAD_TOLERANCE) * baseline
    verdict = (f"disabled-tracing smoke: best-of-3 {best:.1f} ops/s vs "
               f"baseline {baseline:.1f} (floor {floor:.1f})")
    if best < floor:
        raise SystemExit(
            f"FAIL: {verdict} — instrumentation overhead exceeds "
            f"{OVERHEAD_TOLERANCE:.0%} with tracing disabled")
    return verdict


def traced_smoke(cfg: dict, trace_path: str) -> Obs:
    """The perf-smoke workload with an Obs hub attached, trace exported."""
    stack = build_stack(stack_spec(cfg, obs=True))
    device, obs, ftl = stack.device, stack.obs, stack.ftl
    unit = device.geometry.ws_min
    payload = bytes(unit * SECTOR)
    for op in range(cfg["fill_ops"]):
        ftl.write(op * unit, payload)
    ftl.flush()
    rng = random.Random(17)
    lba_span = cfg["fill_ops"] * unit
    for __ in range(cfg["read_ops"]):
        ftl.read(rng.randrange(lba_span), 1)
    device.sim.run()
    write_chrome_trace(obs.tracer, trace_path)
    return obs


def check_trace_validity() -> None:
    obs = traced_smoke(SMOKE, TRACE_PATH)
    if not obs.tracer.spans:
        raise SystemExit("FAIL: traced smoke recorded no spans")
    with open(TRACE_PATH) as handle:
        document = json.loads(handle.read())   # must round-trip
    complete = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    if len(complete) != len(obs.tracer.finished_spans()):
        raise SystemExit(
            f"FAIL: chrome trace has {len(complete)} complete events, "
            f"tracer finished {len(obs.tracer.finished_spans())} spans")
    spans = spans_from_chrome(TRACE_PATH)
    violations = validate_nesting(spans)
    if violations:
        for violation in violations[:10]:
            print(f"  {violation}", file=sys.stderr)
        raise SystemExit(
            f"FAIL: {len(violations)} span-nesting violation(s) in "
            f"the exported trace")
    result = attribute(spans)
    print("\n".join(format_table(result)))
    if not result.consistent:
        raise SystemExit(
            f"FAIL: attribution drift: layer exclusive sum "
            f"{result.exclusive_total:.9f} != end-to-end "
            f"{result.root_total:.9f}")
    print(f"traced smoke: {len(spans)} spans, nesting OK, "
          f"attribution consistent; trace at {TRACE_PATH}")


def main() -> int:
    print(check_overhead())
    check_trace_validity()
    print("obs guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
