#!/usr/bin/env python
"""CI guard for the cluster layer (a ``scripts/check.sh`` step).

Three checks:

1. **Serial/parallel identity** — a 2-shard replicated fleet run
   serially and again on a 2-process spawn pool must merge to
   bit-identical metrics.  This is the cluster's reproducibility
   contract, and the one check that exercises the real process-pool
   machinery in CI.
2. **Wrapper overhead** — a single-shard cluster must stay within
   ``OVERHEAD_TOLERANCE`` of a bare ``build_stack`` stack driven
   through the *identical* op loop (same keys, payload verification,
   read sequence), gated on the best cluster/bare ratio over five
   interleaved pairs.  The loop is re-timed here rather than read from
   ``benchmarks/results/perf_smoke.txt`` because that baseline times
   only the hot fill/read phases — the cluster wall also covers stack
   build and payload verification, so the like-for-like bare run is
   what isolates the cost of routing, task dicts, and the merge.
3. **Spec smoke** — ``examples/specs/cluster_smoke.json`` must load,
   run end to end, verify every read, and lose none.

Run from the repo root: ``PYTHONPATH=src python scripts/cluster_guard.py``.
"""

from __future__ import annotations

import os
import random
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cluster import ClusterSpec, payload_for, run_cluster  # noqa: E402
from repro.cluster.__main__ import load_cluster_spec             # noqa: E402
from repro.stack import StackSpec, build_stack                   # noqa: E402
from repro.workloads import derive_stream_seed                   # noqa: E402

OVERHEAD_TOLERANCE = 0.02
SMOKE_SPEC = os.path.join(REPO_ROOT, "examples", "specs",
                          "cluster_smoke.json")
# One perf-smoke drive per shard (2 groups x 2 PUs), perf-smoke op
# counts, so the overhead number reads against a familiar scale.
TEMPLATE = {"geometry": {"num_groups": 2, "pus_per_group": 2,
                         "chunks_per_pu": 16, "pages_per_block": 6},
            "ftl": "oxblock",
            "ftl_config": {"wal_chunk_count": 4,
                           "ckpt_chunks_per_slot": 2}}
NUM_KEYS = 40
READ_OPS = 1200


def check_identity() -> str:
    spec = ClusterSpec(
        name="cluster_guard_identity", seed=0, num_shards=2,
        replication=2, template=dict(TEMPLATE),
        workload={"num_keys": 16, "read_ops": 48})
    serial = run_cluster(spec, workers=0)
    pooled = run_cluster(spec, workers=2)
    if serial.merged != pooled.merged:
        diverged = sorted(
            key for key in set(serial.merged) | set(pooled.merged)
            if serial.merged.get(key) != pooled.merged.get(key))
        raise SystemExit(
            f"FAIL: serial and 2-worker merged metrics diverged on "
            f"{diverged} — the parallel runner broke the bit-identity "
            f"contract")
    return (f"serial == 2-worker merge over "
            f"{len(serial.merged)} metric keys")


def bare_ops_per_sec() -> float:
    """The cluster workload driven straight through ``build_stack``."""
    # Timed from before the build: the cluster wall covers its shard
    # builds too, so the bare run must pay the same setup.
    started = time.perf_counter()
    stack = build_stack(StackSpec.from_dict(
        dict(TEMPLATE, name="cluster_guard_bare", seed=0)))
    unit = stack.device.geometry.ws_min
    sector = stack.spec.geometry.sector_size
    payloads = {key: payload_for(key, unit * sector)
                for key in range(NUM_KEYS)}
    for key in range(NUM_KEYS):
        stack.ftl.write(key * unit, payloads[key])
    stack.ftl.flush()
    rng = random.Random(derive_stream_seed(0, "cluster:reads"))
    for __ in range(READ_OPS):
        key = rng.randrange(NUM_KEYS)
        if stack.ftl.read(key * unit, 1) != payloads[key][:sector]:
            raise SystemExit("FAIL: bare baseline read verification broke")
    return (NUM_KEYS + READ_OPS) / (time.perf_counter() - started)


def check_overhead() -> str:
    spec = ClusterSpec(
        name="cluster_guard_overhead", seed=0, num_shards=1,
        replication=1, template=dict(TEMPLATE),
        workload={"num_keys": NUM_KEYS, "read_ops": READ_OPS})
    # Interleaved pairs, gated on the best cluster/bare *ratio*: the
    # shared CI box's absolute throughput drifts far more than 2%
    # between measurement blocks, so separately-best-of-N absolutes
    # false-fail.  Back-to-back pairs see near-identical conditions,
    # and a wrapper that really cost >2% could not produce a single
    # fair pair above the floor across five tries.
    ratios = []
    for __ in range(5):
        baseline = bare_ops_per_sec()
        clustered = run_cluster(spec, workers=0).wall["ops_per_sec"]
        ratios.append(clustered / baseline)
    best = max(ratios)
    floor = 1.0 - OVERHEAD_TOLERANCE
    verdict = (f"1-shard smoke: best pair ratio {best:.3f} "
               f"(cluster/bare over 5 interleaved pairs, floor {floor})")
    if best < floor:
        raise SystemExit(
            f"FAIL: {verdict} — cluster routing/merge costs more than "
            f"{OVERHEAD_TOLERANCE:.0%} over a bare build_stack run")
    return verdict


def check_spec_smoke() -> str:
    spec = load_cluster_spec(SMOKE_SPEC)
    result = run_cluster(spec)
    attempted = result.merged["cluster.reads_attempted"]
    verified = result.merged["cluster.reads_verified_total"]
    if result.reads_lost or verified != attempted:
        raise SystemExit(
            f"FAIL: smoke spec {SMOKE_SPEC} verified {verified}/"
            f"{attempted} reads with {result.reads_lost} lost")
    return (f"{os.path.relpath(SMOKE_SPEC, REPO_ROOT)}: "
            f"{spec.num_shards} shards, {verified}/{attempted} reads "
            f"verified, 0 lost")


def main() -> int:
    print(check_identity())
    print(check_overhead())
    print(check_spec_smoke())
    print("cluster guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
