#!/usr/bin/env python
"""CI guard for the QoS subsystem (a ``scripts/check.sh`` step).

Two checks:

1. **No-QoS fast path** — with no scheduler attached, the hot paths pay
   one ``self.qos`` attribute load per command; the perf smoke (best of
   three, to damp scheduler noise) must stay within
   ``OVERHEAD_TOLERANCE`` of the ``ops_per_sec`` recorded in
   ``benchmarks/results/perf_smoke.txt``.  The perf-smoke step that runs
   moments earlier in the same check rewrites that file, so the
   comparison is same-machine/same-load and isolates the cost of the
   tenant plumbing and ``if qos is None`` guards.
2. **Isolation smoke** — the noisy-neighbor experiment at smoke op
   counts must still show both acceptance bounds: victim read p99 under
   partitioned placement + DRR within 2x its solo p99, and the shared
   FIFO baseline degrading it by at least 4x.

Run from the repo root: ``PYTHONPATH=src python scripts/qos_guard.py``.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_isolation import SMOKE as ISOLATION_SMOKE   # noqa: E402
from bench_isolation import run_all, verdicts           # noqa: E402
from bench_perf_trajectory import SMOKE, run_macro      # noqa: E402

OVERHEAD_TOLERANCE = 0.02
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "results",
                             "perf_smoke.txt")


def read_baseline_ops(path: str) -> float:
    """Extract ``ops_per_sec`` from the perf-smoke report lines
    (``  {key:>18s} = {value}``)."""
    with open(path) as handle:
        for line in handle:
            key, _, value = line.partition("=")
            if key.strip() == "ops_per_sec":
                return float(value)
    raise ValueError(f"no ops_per_sec line in {path}")


def check_fast_path() -> str:
    baseline = read_baseline_ops(BASELINE_PATH)
    best = max(run_macro(SMOKE)["ops_per_sec"] for __ in range(3))
    floor = (1.0 - OVERHEAD_TOLERANCE) * baseline
    verdict = (f"no-qos smoke: best-of-3 {best:.1f} ops/s vs "
               f"baseline {baseline:.1f} (floor {floor:.1f})")
    if best < floor:
        raise SystemExit(
            f"FAIL: {verdict} — qos plumbing costs more than "
            f"{OVERHEAD_TOLERANCE:.0%} with no scheduler attached")
    return verdict


def check_isolation() -> None:
    results = run_all(ISOLATION_SMOKE)
    failed = False
    for label, ok in verdicts(results):
        print(f"  {'PASS' if ok else 'FAIL'}: {label}")
        failed = failed or not ok
    if failed:
        raise SystemExit(
            "FAIL: isolation smoke lost an acceptance bound (see above)")


def main() -> int:
    print(check_fast_path())
    check_isolation()
    print("qos guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
