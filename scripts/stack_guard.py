#!/usr/bin/env python
"""CI guard for the stack-assembly layer (a ``scripts/check.sh`` step).

Two checks:

1. **No inline wiring** — nothing under ``benchmarks/``, ``scripts/``,
   or ``examples/`` may construct ``OpenChannelSSD(`` directly; every
   stack goes through :func:`repro.stack.build_stack` so specs remain
   the single source of assembly truth.  ``src/repro`` is exempt (the
   builder itself and the layers live there), as are tests (unit tests
   legitimately wire single layers) and any file in ``ALLOWLIST``.
2. **Spec smoke** — ``examples/specs/lightlsm_smoke.json`` must build
   and run end to end through the ``python -m repro.stack`` path and
   report a nonzero operation count.

Run from the repo root: ``PYTHONPATH=src python scripts/stack_guard.py``.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

SCANNED_DIRS = ("benchmarks", "scripts", "examples")
#: Files allowed to mention the constructor despite living in a scanned
#: directory (tests are outside the scanned set; this guard names the
#: pattern in its own docstring).
ALLOWLIST: frozenset = frozenset({"scripts/stack_guard.py"})
INLINE_WIRING = re.compile(r"\bOpenChannelSSD\s*\(")
SMOKE_SPEC = os.path.join(REPO_ROOT, "examples", "specs",
                          "lightlsm_smoke.json")


def find_inline_wiring() -> list:
    """(path, line_no, line) for every inline device construction."""
    violations = []
    for top in SCANNED_DIRS:
        for dirpath, __, filenames in os.walk(os.path.join(REPO_ROOT, top)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, REPO_ROOT)
                if rel in ALLOWLIST:
                    continue
                with open(path) as handle:
                    for line_no, line in enumerate(handle, 1):
                        if INLINE_WIRING.search(line):
                            violations.append((rel, line_no, line.strip()))
    return violations


def check_no_inline_wiring() -> None:
    violations = find_inline_wiring()
    if violations:
        for rel, line_no, line in violations:
            print(f"  {rel}:{line_no}: {line}", file=sys.stderr)
        raise SystemExit(
            f"FAIL: {len(violations)} inline OpenChannelSSD construction(s) "
            f"outside repro.stack — declare a StackSpec and call "
            f"build_stack() instead")
    print(f"no inline device wiring in {'/'.join(SCANNED_DIRS)}")


def check_spec_smoke() -> None:
    from repro.stack import run_spec
    from repro.stack.__main__ import load_spec
    spec = load_spec(SMOKE_SPEC)
    metrics = run_spec(spec)
    if not metrics.get("fill_ops"):
        raise SystemExit(
            f"FAIL: smoke spec {SMOKE_SPEC} ran but reported no fill ops: "
            f"{metrics}")
    print(f"spec smoke: {os.path.relpath(SMOKE_SPEC, REPO_ROOT)} ran "
          f"{metrics['fill_ops']} fill + {metrics.get('read_ops', 0)} read "
          f"ops in {metrics['sim_seconds']}s simulated")


def main() -> int:
    check_no_inline_wiring()
    check_spec_smoke()
    print("stack guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
