#!/usr/bin/env python
"""CI guard for the ``repro.policies`` lab (a ``scripts/check.sh`` step).

Three checks:

1. **Default-policy bit-identity** — the perf macro workload run with
   every policy knob at its default must land on the pinned pre-policy
   baseline exactly (``sim_seconds`` and ``events_processed``).  The
   policy plane is opt-in: merely *existing* must not move a single
   simulated event.  If a PR changes the timeline on purpose, re-pin
   ``PINNED`` here in the same commit and say why.
2. **Default == legacy victim order** — ``resolve_victim_policy
   ("default")`` must order a synthetic candidate pool exactly as the
   historical collector's stable ``sorted(key=valid_count)`` over
   table order did, tie-breaks included.
3. **Ablation smoke** — one cell per GC policy plus a write-less-cache
   row (zipf overwrites, 60 % fill) must complete, report WAF > 1 for
   every bare-FTL policy, and the WLFC row must undercut bare greedy —
   the bench's "measurably lower WAF than greedy" acceptance row, kept
   honest on every commit.

``--append`` records the smoke ablation summary as a sha-stamped
``policy_ablation`` entry in ``BENCH_perf.json``.

Run from the repo root: ``PYTHONPATH=src python scripts/policy_guard.py``.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

from bench_perf_trajectory import MACRO, run_macro      # noqa: E402
from bench_policy_ablation import (                     # noqa: E402
    GC_POLICIES,
    SMOKE,
    run_cell,
    summarize,
)
from repro.benchhelpers import append_trajectory, git_sha  # noqa: E402
from repro.ocssd.geometry import DeviceGeometry         # noqa: E402
from repro.nand import FlashGeometry                    # noqa: E402
from repro.ox.ftl.metadata import ChunkTable, FtlChunkState  # noqa: E402
from repro.policies import resolve_victim_policy        # noqa: E402

#: The perf_macro fingerprint of the pre-policy-plane collector.  The
#: default gc_policy/placement_policy must reproduce it bit-for-bit.
PINNED = {"sim_seconds": 9.744491, "events_processed": 78125}


def check_default_identity() -> str:
    metrics = run_macro(MACRO)
    got = {key: metrics[key] for key in PINNED}
    if got != PINNED:
        raise SystemExit(
            f"FAIL: default policies moved the perf_macro timeline: "
            f"expected {PINNED}, got {got}.  If this PR changes the "
            f"timeline on purpose, re-pin policy_guard.PINNED in the "
            f"same commit.")
    return (f"default-policy identity: perf_macro at pinned "
            f"{PINNED['sim_seconds']}s / "
            f"{PINNED['events_processed']} events")


def check_legacy_victim_order() -> str:
    geometry = DeviceGeometry(num_groups=2, pus_per_group=2,
                              flash=FlashGeometry(pages_per_block=6))
    keys = [(group, pu, chunk)
            for group in range(2) for pu in range(2) for chunk in range(8)]
    table = ChunkTable(geometry, iter(keys))
    capacity = geometry.sectors_per_chunk
    # A pool with plenty of ties: valid counts cycle through a few
    # values in table order, exactly where stable-sort order and an
    # accidental reordering would diverge.
    for index, (key, info) in enumerate(table.items()):
        info.state = FtlChunkState.FULL
        info.valid_count = (index * 7) % 5 * (capacity // 8)
    for group in (0, 1):
        candidates = table.gc_candidates(group)
        legacy = sorted(candidates, key=lambda info: info.valid_count)
        chosen = resolve_victim_policy("default").select(candidates, table)
        if [info.key for info in chosen] != [info.key for info in legacy]:
            raise SystemExit(
                f"FAIL: default victim order diverged from the legacy "
                f"stable sort in group {group}: "
                f"{[i.key for i in chosen]} != {[i.key for i in legacy]}")
    return ("legacy victim order: default policy == historical stable "
            "sort, ties included")


def check_ablation_smoke() -> tuple:
    rows = [run_cell(policy, "zipf", 0.60, SMOKE["overwrite_ops"])
            for policy in GC_POLICIES]
    rows.append(run_cell("greedy", "zipf", 0.60, SMOKE["overwrite_ops"],
                         host="wlfc"))
    by_policy = {row["policy"]: row for row in rows}
    for policy in GC_POLICIES:
        if by_policy[policy]["waf"] <= 1.0:
            raise SystemExit(
                f"FAIL: {policy} reported WAF "
                f"{by_policy[policy]['waf']} <= 1.0 — the overwrite "
                f"phase no longer exercises GC")
    greedy = by_policy["greedy"]["waf"]
    wlfc = by_policy["wlfc+greedy"]["waf"]
    if wlfc >= greedy:
        raise SystemExit(
            f"FAIL: write-less cache WAF {wlfc} did not undercut bare "
            f"greedy {greedy}")
    verdict = (f"ablation smoke: {len(rows)} cells, greedy WAF {greedy}, "
               f"wlfc {wlfc} "
               f"(-{(greedy - wlfc) / greedy:.0%})")
    return verdict, summarize(rows)


def main(argv=None) -> int:
    append = argv is not None and "--append" in argv
    print(check_default_identity())
    print(check_legacy_victim_order())
    verdict, summary = check_ablation_smoke()
    print(verdict)
    if append:
        append_trajectory("policy_ablation", summary, sha=git_sha())
        print("appended policy_ablation entry to BENCH_perf.json")
    print("policy guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
