"""Perf-regression macro-benchmark: the simulator's own speed over time.

Unlike the ``bench_fig*`` files, this bench does not reproduce a figure —
it measures how fast the *reproduction itself* runs, so every PR can tell
whether it made the simulator faster or slower.  The workload is
db_bench-style: a fill-sequential phase (one 4 KB sector per op through
the OX-Block write path: allocation, WAL, mapping, device cache, flusher)
followed by a read-random phase over the filled LBA space.

Reported metrics:

* ``fill_ops_per_sec`` / ``read_ops_per_sec`` / ``ops_per_sec`` —
  wall-clock operations per second (the regression-gated number);
* ``events_per_sec`` — simulator heap entries processed per wall second;
* ``peak_map_bytes`` / ``peak_chunk_bytes`` — resident size of the FTL
  mapping table and the device chunk payload store at phase boundaries;
* ``sim_seconds`` — simulated time consumed (a semantics canary: fast
  paths must not change it).

Results append to ``BENCH_perf.json`` at the repo root (a JSON list of
``{"name", "date", "metrics"}`` entries) so successive PRs build a
trajectory.  ``--profile`` additionally writes a cProfile top-25 to
``benchmarks/results/profile_top.txt``.  ``--check`` compares against the
last committed entry of the same name and fails on a >30 % ops/sec
regression (used by ``make check``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py
    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py --smoke --check
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Optional

from repro.benchhelpers import (
    RESULTS_DIR,
    TRAJECTORY_PATH,
    append_trajectory,
    git_sha,
    load_trajectory,
    report,
)
from repro.obs.metrics import MetricsRegistry
from repro.ocssd import OpenChannelSSD
from repro.stack import StackSpec, build_stack

SECTOR = 4096
REGRESSION_THRESHOLD = 0.30

# Full-size run: the Figure 4 drive shape (8 groups x 4 PUs), ~97k data
# sectors; fill ~37% with write-unit-sized (96 KB) transactions, then
# read 15k random single sectors back.  Each fill op exercises the whole
# write path: allocation, 24 mapping updates, WAL FUA batch, cache
# admission, background flushers.
MACRO = dict(name="perf_macro", groups=8, pus=4, chunks=64, pages=6,
             wal_chunks=16, ckpt_chunks=4, fill_ops=1_500, read_ops=15_000)
# Tiny geometry for `make check` smoke runs and the pytest smoke test.
SMOKE = dict(name="perf_smoke", groups=2, pus=2, chunks=16, pages=6,
             wal_chunks=4, ckpt_chunks=2, fill_ops=40, read_ops=300)


def stack_spec(cfg: dict, **overrides) -> StackSpec:
    """The perf-trajectory stack as a spec (shared with the guards)."""
    return StackSpec(
        name=cfg["name"],
        geometry={"num_groups": cfg["groups"], "pus_per_group": cfg["pus"],
                  "chunks_per_pu": cfg["chunks"],
                  "pages_per_block": cfg["pages"]},
        ftl="oxblock",
        ftl_config={"wal_chunk_count": cfg["wal_chunks"],
                    "ckpt_chunks_per_slot": cfg["ckpt_chunks"]},
        **overrides)


def build_ftl(cfg: dict):
    stack = build_stack(stack_spec(cfg))
    return stack.device, stack.ftl


def chunk_memory_bytes(device: OpenChannelSSD) -> int:
    return sum(chunk.memory_bytes() for chunk in device.chunks.values())


def run_macro(cfg: dict) -> dict:
    """Run fillseq + readrandom; return the metrics dict."""
    device, ftl = build_ftl(cfg)
    sim = device.sim
    rng = random.Random(17)
    fill_ops = cfg["fill_ops"]
    read_ops = cfg["read_ops"]

    events_before = sim.events_processed
    sim_before = sim.now
    unit = device.geometry.ws_min

    started = time.perf_counter()
    payload = bytes(unit * SECTOR)
    for op in range(fill_ops):
        ftl.write(op * unit, payload)
    ftl.flush()
    fill_wall = time.perf_counter() - started

    peak_map = ftl.page_map.memory_bytes()
    peak_chunk = chunk_memory_bytes(device)

    span = fill_ops * unit
    started = time.perf_counter()
    for __ in range(read_ops):
        ftl.read(rng.randrange(span), 1)
    read_wall = time.perf_counter() - started

    peak_map = max(peak_map, ftl.page_map.memory_bytes())
    peak_chunk = max(peak_chunk, chunk_memory_bytes(device))
    total_wall = fill_wall + read_wall

    # Route the results through the metrics registry (the bench harness
    # speaks the same instrument vocabulary as the traced stack); the
    # flattened view keeps the historical metric keys byte-identical.
    registry = MetricsRegistry()
    registry.counter("fill_ops").increment(fill_ops)
    registry.counter("read_ops").increment(read_ops)
    registry.counter("events_processed").increment(
        sim.events_processed - events_before)
    gauges = {
        "fill_wall_seconds": round(fill_wall, 3),
        "read_wall_seconds": round(read_wall, 3),
        "fill_ops_per_sec": round(fill_ops / fill_wall, 1),
        "read_ops_per_sec": round(read_ops / read_wall, 1),
        "ops_per_sec": round((fill_ops + read_ops) / total_wall, 1),
        "events_per_sec": round(
            (sim.events_processed - events_before) / total_wall, 1),
        "sim_seconds": round(sim.now - sim_before, 6),
        "peak_map_bytes": peak_map,
        "peak_chunk_bytes": peak_chunk,
    }
    for key, value in gauges.items():
        registry.gauge(key).set(value)
    return registry.flat()


def check_regression(name: str, metrics: dict,
                     path: str = TRAJECTORY_PATH) -> Optional[str]:
    """Compare against the last committed entry of *name*; return an error
    message on a >30 % ops/sec regression, else None."""
    baseline = [e for e in load_trajectory(path) if e["name"] == name]
    if not baseline:
        return None
    reference = baseline[-1]["metrics"]["ops_per_sec"]
    current = metrics["ops_per_sec"]
    if current < reference * (1.0 - REGRESSION_THRESHOLD):
        return (f"{name}: ops/sec regressed >{REGRESSION_THRESHOLD:.0%}: "
                f"{current:.0f} vs committed baseline {reference:.0f}")
    return None


def format_lines(name: str, metrics: dict) -> list:
    lines = [f"Perf trajectory: {name} (fillseq + readrandom over OX-Block)"]
    for key in ("fill_ops_per_sec", "read_ops_per_sec", "ops_per_sec",
                "events_per_sec", "sim_seconds", "peak_map_bytes",
                "peak_chunk_bytes"):
        lines.append(f"  {key:>18s} = {metrics[key]}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny geometry / op counts (CI smoke run)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run; dump top-25 to "
                             "benchmarks/results/profile_top.txt")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on a >30%% ops/sec regression "
                             "vs the committed BENCH_perf.json entry")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run N times and keep the median-ops/sec run "
                             "(default 1; use 3+ for recorded entries so "
                             "transient machine load cannot skew the "
                             "trajectory)")
    parser.add_argument("--no-append", action="store_true",
                        help="do not append this run to BENCH_perf.json")
    parser.add_argument("--json-path", default=TRAJECTORY_PATH,
                        help="trajectory file (default: repo BENCH_perf.json)")
    args = parser.parse_args(argv)

    cfg = SMOKE if args.smoke else MACRO
    if args.profile:
        import cProfile
        import io
        import os
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        metrics = run_macro(cfg)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        top_path = os.path.join(RESULTS_DIR, "profile_top.txt")
        with open(top_path, "w") as handle:
            handle.write(buffer.getvalue())
        print(f"profile top-25 written to {top_path}")
    else:
        runs = [run_macro(cfg) for __ in range(max(1, args.repeat))]
        runs.sort(key=lambda m: m["ops_per_sec"])
        metrics = runs[len(runs) // 2]

    report(cfg["name"], format_lines(cfg["name"], metrics))

    failure = check_regression(cfg["name"], metrics,
                               args.json_path) if args.check else None
    if not args.no_append:
        # Key each recorded entry by the commit it measured, so the
        # trajectory reads as one point per PR.
        append_trajectory(cfg["name"], metrics, args.json_path,
                          sha=git_sha())
    if failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def test_perf_trajectory_smoke(tmp_path):
    """Smoke-run the harness end to end without touching the repo file."""
    metrics = run_macro(SMOKE)
    assert metrics["fill_ops_per_sec"] > 0
    assert metrics["read_ops_per_sec"] > 0
    assert metrics["events_processed"] > SMOKE["fill_ops"]
    assert metrics["peak_map_bytes"] > 0
    assert metrics["peak_chunk_bytes"] > 0
    path = tmp_path / "BENCH_perf.json"
    append_trajectory(SMOKE["name"], metrics, str(path))
    entries = load_trajectory(str(path))
    assert entries[-1]["name"] == SMOKE["name"]
    assert entries[-1]["metrics"]["ops_per_sec"] == metrics["ops_per_sec"]
    # A fresh identical run must never trip the regression gate against
    # itself by construction noise alone.
    assert check_regression(SMOKE["name"],
                            {"ops_per_sec":
                             metrics["ops_per_sec"]}, str(path)) is None


if __name__ == "__main__":
    sys.exit(main())
