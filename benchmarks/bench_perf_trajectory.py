"""Perf-regression macro-benchmark: the simulator's own speed over time.

Unlike the ``bench_fig*`` files, this bench does not reproduce a figure —
it measures how fast the *reproduction itself* runs, so every PR can tell
whether it made the simulator faster or slower.  The workload is
db_bench-style: a fill-sequential phase (one 4 KB sector per op through
the OX-Block write path: allocation, WAL, mapping, device cache, flusher)
followed by a read-random phase over the filled LBA space.

Reported metrics:

* ``fill_ops_per_sec`` / ``read_ops_per_sec`` / ``ops_per_sec`` —
  wall-clock operations per second (the regression-gated number);
* ``events_per_sec`` — simulator heap entries processed per wall second;
* ``peak_map_bytes`` / ``peak_chunk_bytes`` — resident size of the FTL
  mapping table and the device chunk payload store at phase boundaries;
* ``sim_seconds`` — simulated time consumed (a semantics canary: fast
  paths must not change it).

Results append to ``BENCH_perf.json`` at the repo root (a JSON list of
``{"name", "date", "metrics"}`` entries) so successive PRs build a
trajectory.  ``--profile`` additionally writes a cProfile top-25 to
``benchmarks/results/profile_top.txt``.  ``--check`` compares against the
last committed entry of the same name and fails on a >30 % ops/sec
regression (used by ``make check``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py
    PYTHONPATH=src python benchmarks/bench_perf_trajectory.py --smoke --check
"""

from __future__ import annotations

import argparse
import gc
import random
import sys
import time
from typing import Optional

from repro.benchhelpers import (
    RESULTS_DIR,
    TRAJECTORY_PATH,
    append_trajectory,
    git_sha,
    load_trajectory,
    report,
)
from repro.obs.metrics import MetricsRegistry
from repro.ocssd import OpenChannelSSD
from repro.stack import StackSpec, build_stack

SECTOR = 4096
REGRESSION_THRESHOLD = 0.30
# Absolute ops/sec floors, gated alongside the relative check.  Set well
# under the typical numbers on the reference box (macro ~20-22k, smoke
# ~18-20k with the GC hygiene below) so only a real regression — not
# machine noise — can trip them.
ABSOLUTE_FLOORS = {"perf_macro": 14_000.0, "perf_smoke": 9_000.0}

# Full-size run: the Figure 4 drive shape (8 groups x 4 PUs), ~97k data
# sectors; fill ~37% with write-unit-sized (96 KB) transactions, then
# read 15k random single sectors back.  Each fill op exercises the whole
# write path: allocation, 24 mapping updates, WAL FUA batch, cache
# admission, background flushers.
MACRO = dict(name="perf_macro", groups=8, pus=4, chunks=64, pages=6,
             wal_chunks=16, ckpt_chunks=4, fill_ops=1_500, read_ops=15_000,
             qos=True, storm=(200, 250))
# Tiny geometry for `make check` smoke runs and the pytest smoke test.
# No qos here on purpose: the qos/obs guards use this config to price the
# *detached* sidecar fast paths against benchmarks/results/perf_smoke.txt.
SMOKE = dict(name="perf_smoke", groups=2, pus=2, chunks=16, pages=6,
             wal_chunks=4, ckpt_chunks=2, fill_ops=40, read_ops=300,
             storm=(20, 50))


def stack_spec(cfg: dict, **overrides) -> StackSpec:
    """The perf-trajectory stack as a spec (shared with the guards)."""
    return StackSpec(
        name=cfg["name"],
        geometry={"num_groups": cfg["groups"], "pus_per_group": cfg["pus"],
                  "chunks_per_pu": cfg["chunks"],
                  "pages_per_block": cfg["pages"]},
        ftl="oxblock",
        ftl_config={"wal_chunk_count": cfg["wal_chunks"],
                    "ckpt_chunks_per_slot": cfg["ckpt_chunks"]},
        **overrides)


def build_ftl(cfg: dict):
    overrides = {}
    if cfg.get("qos"):
        # One tenant, no rate cap: every command pays the full scheduler
        # path (gate fast-grant, DRR on contention) so the recorded
        # ops/sec prices the simulator *with* qos attached.
        overrides["tenants"] = [{"name": "bench"}]
    stack = build_stack(stack_spec(cfg, **overrides))
    if cfg.get("qos"):
        stack.media.tenant = stack.tenant("bench")
    return stack.device, stack.ftl


def chunk_memory_bytes(device: OpenChannelSSD) -> int:
    return sum(chunk.memory_bytes() for chunk in device.chunks.values())


def run_macro(cfg: dict) -> dict:
    """Run fillseq + readrandom; return the metrics dict."""
    device, ftl = build_ftl(cfg)
    sim = device.sim
    rng = random.Random(17)
    fill_ops = cfg["fill_ops"]
    read_ops = cfg["read_ops"]

    events_before = sim.events_processed
    sim_before = sim.now
    unit = device.geometry.ws_min

    # Cyclic-GC hygiene: a collection landing inside a timed phase used
    # to swing ops/sec by ~25% run to run.  Collect up front, then keep
    # the collector off while the clock runs (refcounting still frees
    # the payload churn; the generator/event cycles are few).
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        payload = bytes(unit * SECTOR)
        for op in range(fill_ops):
            ftl.write(op * unit, payload)
        ftl.flush()
        fill_wall = time.perf_counter() - started

        peak_map = ftl.page_map.memory_bytes()
        peak_chunk = chunk_memory_bytes(device)

        span = fill_ops * unit
        started = time.perf_counter()
        for __ in range(read_ops):
            ftl.read(rng.randrange(span), 1)
        read_wall = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()

    peak_map = max(peak_map, ftl.page_map.memory_bytes())
    peak_chunk = max(peak_chunk, chunk_memory_bytes(device))
    total_wall = fill_wall + read_wall

    # Route the results through the metrics registry (the bench harness
    # speaks the same instrument vocabulary as the traced stack); the
    # flattened view keeps the historical metric keys byte-identical.
    registry = MetricsRegistry()
    registry.counter("fill_ops").increment(fill_ops)
    registry.counter("read_ops").increment(read_ops)
    registry.counter("events_processed").increment(
        sim.events_processed - events_before)
    gauges = {
        "fill_wall_seconds": round(fill_wall, 3),
        "read_wall_seconds": round(read_wall, 3),
        "fill_ops_per_sec": round(fill_ops / fill_wall, 1),
        "read_ops_per_sec": round(read_ops / read_wall, 1),
        "ops_per_sec": round((fill_ops + read_ops) / total_wall, 1),
        "events_per_sec": round(
            (sim.events_processed - events_before) / total_wall, 1),
        "kernel_events_per_sec": run_kernel_storm(*cfg.get("storm",
                                                           (200, 250))),
        "sim_seconds": round(sim.now - sim_before, 6),
        "peak_map_bytes": peak_map,
        "peak_chunk_bytes": peak_chunk,
    }
    for key, value in gauges.items():
        registry.gauge(key).set(value)
    return registry.flat()


def run_kernel_storm(procs: int = 200, waits: int = 250) -> float:
    """Kernel-only microbench: events/sec through a bare :class:`Simulator`.

    A synthetic storm — *procs* concurrent processes each sleeping *waits*
    times with interleaving delays — exercises only the event engine
    (calendar queue, timeout fast path, process resumption), no storage
    stack.  The resulting ``kernel_events_per_sec`` separates "the
    scheduler got slower" from "a storage layer got slower" in the
    trajectory.
    """
    from repro.sim import Simulator

    sim = Simulator()

    def storm(step: float):
        for __ in range(waits):
            yield sim.timeout(step)

    # Distinct, incommensurate-ish steps so buckets keep churning
    # instead of degenerating into one shared trigger time.
    done = sim.all_of([sim.spawn(storm(1.0 + index / procs))
                       for index in range(procs)])
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        sim.run_until(done)
        wall = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    return round(sim.events_processed / wall, 1)


def check_regression(name: str, metrics: dict,
                     path: str = TRAJECTORY_PATH) -> Optional[str]:
    """Gate *metrics* against the trajectory: fails on a >30 % ops/sec
    regression vs the last committed entry of *name*, or on missing the
    absolute :data:`ABSOLUTE_FLOORS` floor for *name*.  Returns the error
    message, or None when the gate passes.  Legacy entries without a
    ``sha`` key still serve as baselines."""
    current = metrics["ops_per_sec"]
    floor = ABSOLUTE_FLOORS.get(name)
    if floor is not None and current < floor:
        return (f"{name}: ops/sec below the absolute floor: "
                f"{current:.0f} vs floor {floor:.0f}")
    baseline = [e for e in load_trajectory(path) if e["name"] == name]
    if not baseline:
        return None
    reference = baseline[-1]["metrics"]["ops_per_sec"]
    if current < reference * (1.0 - REGRESSION_THRESHOLD):
        return (f"{name}: ops/sec regressed >{REGRESSION_THRESHOLD:.0%}: "
                f"{current:.0f} vs committed baseline {reference:.0f}")
    return None


def format_lines(name: str, metrics: dict) -> list:
    lines = [f"Perf trajectory: {name} (fillseq + readrandom over OX-Block)"]
    for key in ("fill_ops_per_sec", "read_ops_per_sec", "ops_per_sec",
                "events_per_sec", "kernel_events_per_sec", "sim_seconds",
                "peak_map_bytes", "peak_chunk_bytes"):
        lines.append(f"  {key:>18s} = {metrics[key]}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny geometry / op counts (CI smoke run)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run; dump top-25 to "
                             "benchmarks/results/profile_top.txt")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on a >30%% ops/sec regression "
                             "vs the committed BENCH_perf.json entry")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run N times and keep the median-ops/sec run "
                             "(default 1; use 3+ for recorded entries so "
                             "transient machine load cannot skew the "
                             "trajectory)")
    parser.add_argument("--no-append", action="store_true",
                        help="do not append this run to BENCH_perf.json")
    parser.add_argument("--json-path", default=TRAJECTORY_PATH,
                        help="trajectory file (default: repo BENCH_perf.json)")
    args = parser.parse_args(argv)

    cfg = SMOKE if args.smoke else MACRO
    if args.profile:
        import cProfile
        import io
        import os
        import pstats
        profiler = cProfile.Profile()
        profiler.enable()
        metrics = run_macro(cfg)
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        top_path = os.path.join(RESULTS_DIR, "profile_top.txt")
        with open(top_path, "w") as handle:
            handle.write(buffer.getvalue())
        print(f"profile top-25 written to {top_path}")
    else:
        runs = [run_macro(cfg) for __ in range(max(1, args.repeat))]
        runs.sort(key=lambda m: m["ops_per_sec"])
        metrics = runs[len(runs) // 2]

    report(cfg["name"], format_lines(cfg["name"], metrics))

    failure = check_regression(cfg["name"], metrics,
                               args.json_path) if args.check else None
    if not args.no_append:
        # Key each recorded entry by the commit it measured, so the
        # trajectory reads as one point per PR.
        append_trajectory(cfg["name"], metrics, args.json_path,
                          sha=git_sha())
    if failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def test_perf_trajectory_smoke(tmp_path):
    """Smoke-run the harness end to end without touching the repo file."""
    metrics = run_macro(SMOKE)
    assert metrics["fill_ops_per_sec"] > 0
    assert metrics["read_ops_per_sec"] > 0
    assert metrics["events_processed"] > SMOKE["fill_ops"]
    assert metrics["kernel_events_per_sec"] > 0
    assert metrics["peak_map_bytes"] > 0
    assert metrics["peak_chunk_bytes"] > 0
    path = tmp_path / "BENCH_perf.json"
    entry = append_trajectory(SMOKE["name"], metrics, str(path))
    # Every new entry is keyed by the measured commit.
    assert entry.get("sha")
    entries = load_trajectory(str(path))
    assert entries[-1]["name"] == SMOKE["name"]
    assert entries[-1]["metrics"]["ops_per_sec"] == metrics["ops_per_sec"]
    # A fresh identical run must never trip the regression gate against
    # itself by construction noise alone.
    assert check_regression(SMOKE["name"],
                            {"ops_per_sec":
                             metrics["ops_per_sec"]}, str(path)) is None


def test_regression_gate(tmp_path):
    """Relative gate, absolute floor, and legacy-row (no sha) tolerance."""
    import json

    path = tmp_path / "BENCH_perf.json"
    legacy = {"name": "perf_macro", "date": "2026-01-01",
              "metrics": {"ops_per_sec": 30_000.0}}
    path.write_text(json.dumps([legacy]))
    # Healthy run: above the floor, within 30% of the legacy baseline.
    assert check_regression("perf_macro", {"ops_per_sec": 25_000.0},
                            str(path)) is None
    # >30% drop vs the (sha-less) baseline entry.
    assert "regressed" in check_regression(
        "perf_macro", {"ops_per_sec": 15_000.0}, str(path))
    # Below the absolute floor fails even with no baseline at all.
    assert "floor" in check_regression(
        "perf_macro", {"ops_per_sec": ABSOLUTE_FLOORS["perf_macro"] - 1},
        str(tmp_path / "absent.json"))
    # Unknown names have no floor and no baseline: gate passes.
    assert check_regression("perf_other", {"ops_per_sec": 1.0},
                            str(tmp_path / "absent.json")) is None


if __name__ == "__main__":
    sys.exit(main())
