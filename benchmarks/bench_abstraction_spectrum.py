"""The Figure 1 abstraction spectrum, measured on one data system.

The paper's core argument: for a given data system, the choice of FTL
abstraction — generic block device (pblk/SPDK/OX-Block), ZNS, or
application-specific (LightLSM) — determines how much of the
Open-Channel SSD's potential reaches the application.  This bench runs
the *same* RocksDB-lite workload over all three:

* **block-device**: RocksDB-lite on an extent allocator over OX-Block —
  every SSTable block pays the generic FTL's page-mapping + WAL tax, and
  deletion leaves garbage for device-side GC to copy;
* **ZNS**: RocksDB-lite on zones over OX-ZNS — append-only tables, reset
  reclamation, ws_min hidden by the FTL, but a MANIFEST still required;
* **app-specific**: LightLSM — SSTables placed straight onto chunks,
  deletion is chunk erases, the media is self-describing.

Expected ordering (the paper's position): app-specific >= ZNS >>
generic block device for the write path; device-level write
amplification highest for the block device.
"""

import pytest

from repro.benchhelpers import format_kops, report
from repro.stack import StackSpec, build_stack
from repro.units import KIB, MIB

FILL_OPS = 12_000
CLIENTS = 2

# One LSM engine, three FTL abstractions — only the `ftl` stanza moves.
SPECTRUM = {
    "block-device": dict(
        ftl="oxblock", host="db", table_chunks=32,
        ftl_config={"wal_chunk_count": 16, "gc_low_watermark": 16,
                    "gc_high_watermark": 48}),
    "zns": dict(
        ftl="zns",
        ftl_config={"chunks_per_zone": 4, "max_open_zones": 32}),
    "app-specific": dict(ftl="lightlsm"),
}


def run_env(kind: str):
    stack = build_stack(StackSpec(
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": 160, "pages_per_block": 6},
        db={"block_size": 96 * KIB, "write_buffer_bytes": 4 * MIB},
        **SPECTRUM[kind]))
    dev = stack.device
    bench = stack.dbbench()

    user_bytes_before = dev.controller.stats.sectors_written
    fill = bench.fill_sequential(clients=CLIENTS, ops_per_client=FILL_OPS)
    bench.quiesce()
    dev.sim.run()
    device_sectors = dev.controller.stats.sectors_written \
        - user_bytes_before
    readrand = bench.read_random(clients=CLIENTS, ops_per_client=300)

    # Unique logical data = FILL_OPS keys x ~1 KB values; every flush and
    # compaction rewrite counts toward amplification.
    logical_sectors = FILL_OPS * 1040 // dev.report_geometry().sector_size
    return {
        "fill": fill.ops_per_sec,
        "readrand": readrand.ops_per_sec,
        "write_amp": device_sectors / max(1, logical_sectors),
        "stall": fill.stall_seconds,
    }


def run_spectrum():
    return {kind: run_env(kind)
            for kind in ("block-device", "zns", "app-specific")}


@pytest.mark.benchmark(group="spectrum")
def test_abstraction_spectrum(benchmark):
    results = benchmark.pedantic(run_spectrum, rounds=1, iterations=1)

    lines = ["FTL abstraction spectrum: one LSM engine, three FTLs",
             f"(fill-seq {CLIENTS} clients x {FILL_OPS} ops, 1 KB values; "
             "write amp = device sectors / unique logical sectors)", "",
             f"{'abstraction':>14s} {'fill kops/s':>12s} "
             f"{'readrand':>9s} {'write amp':>10s} {'stalls':>7s}"]
    for kind in ("block-device", "zns", "app-specific"):
        r = results[kind]
        lines.append(f"{kind:>14s} {format_kops(r['fill']):>12s} "
                     f"{format_kops(r['readrand']):>9s} "
                     f"{r['write_amp']:>9.1f}x {r['stall']:>6.2f}s")
    lines.append("")
    speedup = results["app-specific"]["fill"] / results["block-device"]["fill"]
    lines.append(f"app-specific vs generic block device (fill): "
                 f"{speedup:.1f}x — 'the optimizations [Open-Channel SSDs] "
                 "enable ... is best leveraged in the context of "
                 "application-specific FTLs' (§3.2)")
    report("abstraction_spectrum", lines)

    assert results["app-specific"]["fill"] > results["block-device"]["fill"]
    assert results["zns"]["fill"] > results["block-device"]["fill"]
    # The generic FTL writes strictly more device sectors per logical
    # sector (WAL + padding overheads on every block write).
    assert results["block-device"]["write_amp"] \
        > results["app-specific"]["write_amp"] * 0.99
