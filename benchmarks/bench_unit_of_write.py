"""The §2.1 / §2.2 unit-of-write arithmetic and the Figure 4 geometry.

Regenerates the in-text numbers: 256 KB write unit on 4-plane QLC, 96 KB
(24 logical blocks) on dual-plane TLC, 24 MB chunks, 768 MB SSTables.
"""

from repro.benchhelpers import report
from repro.nand import (
    CellType,
    FlashGeometry,
    unit_of_write_bytes,
    unit_of_write_sectors,
)
from repro.ocssd import DeviceGeometry
from repro.units import KIB, MIB, fmt_bytes


def compute_table():
    rows = []
    for cell in CellType:
        for planes in (1, 2, 4):
            sectors = unit_of_write_sectors(cell, planes, sectors_per_page=4)
            size = unit_of_write_bytes(cell, planes, 4, 4 * KIB)
            rows.append((cell.name, planes, sectors, size))
    return rows


def test_unit_of_write_table(benchmark):
    rows = benchmark(compute_table)
    lines = ["Unit of write by cell type and plane count "
             "(4 KB sectors, 4 sectors/page):", "",
             f"{'cell':>5s} {'planes':>7s} {'sectors':>8s} {'size':>10s}"]
    for cell, planes, sectors, size in rows:
        lines.append(f"{cell:>5s} {planes:>7d} {sectors:>8d} "
                     f"{fmt_bytes(size):>10s}")
    lines.append("")

    # The paper's two worked examples, verified exactly.
    qlc = unit_of_write_bytes(CellType.QLC, 4, 4, 4 * KIB)
    tlc = unit_of_write_sectors(CellType.TLC, 2, 4)
    lines.append(f"paper check: QLC x4 planes = {fmt_bytes(qlc)} "
                 f"(expected 256 KiB) -> {'OK' if qlc == 256 * KIB else 'FAIL'}")
    lines.append(f"paper check: dual-plane TLC = {tlc} logical blocks "
                 f"(expected 24) -> {'OK' if tlc == 24 else 'FAIL'}")

    # Figure 4 geometry at full scale.
    full = DeviceGeometry(num_groups=8, pus_per_group=4,
                          flash=FlashGeometry(pages_per_block=768,
                                              blocks_per_plane=1474))
    sstable = full.total_pus * full.chunk_size
    lines.append(f"Figure 4 drive: chunk = {fmt_bytes(full.chunk_size)} "
                 f"(expected 24 MiB), 1474 chunks/PU, "
                 f"SSTable = 32 x chunk = {fmt_bytes(sstable)} "
                 f"(expected 768 MiB)")
    report("unit_of_write", lines)

    assert qlc == 256 * KIB
    assert tlc == 24
    assert full.chunk_size == 24 * MIB
    assert sstable == 768 * MIB
    assert full.sectors_per_chunk == 6144
