"""Figure 5: RocksDB db_bench throughput by workload, placement, clients.

Regenerates the paper's main table: average operations/second for
fill-sequential, read-sequential and read-random under horizontal vs
vertical SSTable placement, with 1/2/4/8 client threads.  16 B keys,
1 KB values, no compression, no block cache.

Scale: the paper filled 3 GB per thread onto 24 MB chunks / 768 MB
SSTables; we fill 24 MB per thread onto 192 KB chunks / ~6 MB SSTables
(a uniform 1:128 scale).  Expected shapes (paper):

* fill-seq >> read-seq >> read-random;
* fill-seq: horizontal ahead at 1-2 clients (4x at 1 in the paper),
  vertical scales gracefully and catches up at 4-8 clients;
* reads: horizontal dominates vertical, more so with more clients;
* read-seq h/v at 1c: 13.1/10.3 kops; read-random h/v at 8c: 5.7/3.1.
"""

import pytest

from repro.benchhelpers import format_kops, lightlsm_db, report
from repro.lsm import DbBench, HorizontalPlacement, VerticalPlacement

CLIENTS = (1, 2, 4, 8)
FILL_OPS = 24_000          # 24 MB per client at 1 KB values
READSEQ_OPS = 6_000
READRAND_OPS = 400


def run_cell(placement_cls, clients):
    device, env, db = lightlsm_db(placement_cls())
    bench = DbBench(db)
    fill = bench.fill_sequential(clients=clients, ops_per_client=FILL_OPS)
    bench.quiesce()
    readseq = bench.read_sequential(clients=clients,
                                    ops_per_client=READSEQ_OPS)
    readrand = bench.read_random(clients=clients,
                                 ops_per_client=READRAND_OPS)
    return {
        "fill": fill.ops_per_sec,
        "readseq": readseq.ops_per_sec,
        "readrand": readrand.ops_per_sec,
        "levels": db.level_sizes(),
        "stall": fill.stall_seconds,
        "compactions": fill.compactions,
        "slowdown_puts": fill.slowdown_puts,
        "residency": fill.backpressure_residency,
    }


def run_grid():
    grid = {}
    for placement_cls in (HorizontalPlacement, VerticalPlacement):
        for clients in CLIENTS:
            grid[(placement_cls.name, clients)] = run_cell(placement_cls,
                                                           clients)
    return grid


@pytest.mark.benchmark(group="fig5")
def test_fig5_dbbench_throughput(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    lines = ["Figure 5: db_bench average throughput (kops/s)",
             "(16 B keys, 1 KB values, no compression/caching; "
             "24 MB per client, 1:128 scale)", ""]
    header = (f"{'workload':>16s} {'placement':>11s} | "
              + " | ".join(f"{c:>2d} cl" for c in CLIENTS))
    lines.append(header)
    lines.append("-" * len(header))
    for workload in ("fill", "readseq", "readrand"):
        for placement in ("horizontal", "vertical"):
            row = " | ".join(
                format_kops(grid[(placement, c)][workload])
                for c in CLIENTS)
            lines.append(f"{workload:>16s} {placement:>11s} | {row}")
    lines.append("")
    lines.append("write-controller pressure during the fill "
                 "(slowed puts; seconds in slowdown/stop):")
    for placement in ("horizontal", "vertical"):
        row = " | ".join(
            f"{grid[(placement, c)]['slowdown_puts']:4d} "
            f"{grid[(placement, c)]['residency'].get('slowdown', 0.0):5.2f}s/"
            f"{grid[(placement, c)]['residency'].get('stop', 0.0):5.2f}s"
            for c in CLIENTS)
        lines.append(f"{'fill':>16s} {placement:>11s} | {row}")
    lines.append("")
    sample = grid[("horizontal", 8)]
    lines.append(f"levels after fill (horizontal, 8 clients): "
                 f"{sample['levels']} — the paper reports 3 populated "
                 "levels (L0, L1, L2)")
    report("fig5_dbbench", lines)

    h = {c: grid[("horizontal", c)] for c in CLIENTS}
    v = {c: grid[("vertical", c)] for c in CLIENTS}
    for c in CLIENTS:
        # Ordering within each cell: fill >> readseq > readrand.
        assert h[c]["fill"] > h[c]["readrand"]
        assert h[c]["readseq"] > h[c]["readrand"]
    # Horizontal wins the 1-client fill; vertical scales with clients.
    assert h[1]["fill"] > 1.2 * v[1]["fill"]
    assert v[8]["fill"] > 1.5 * v[1]["fill"]
    # Horizontal dominates vertical for reads at high client counts.
    assert h[8]["readseq"] >= v[8]["readseq"]
    assert h[8]["readrand"] >= v[8]["readrand"]


# -- worker-count sweep (the PR-10 concurrency axes) --------------------------

#: Per-block dispatch CPU for the sweep.  The paper's LightLSM runs a
#: single dispatch thread; the bottleneck only binds when submissions
#: cost CPU comparable to a block program and several writers compete.
SWEEP_DISPATCH_CPU = 2e-3
SWEEP_OPS = 6_000
#: (flush workers, compaction workers, dispatch workers).
SWEEP_CONFIGS = ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2), (2, 2, 4))


def run_worker_sweep():
    rows = []
    for fw, cw, dw in SWEEP_CONFIGS:
        device, env, db = lightlsm_db(
            HorizontalPlacement(), flush_workers=fw, compaction_workers=cw,
            dispatch_workers=dw, dispatch_cpu=SWEEP_DISPATCH_CPU)
        bench = DbBench(db)
        fill = bench.fill_sequential(clients=4, ops_per_client=SWEEP_OPS)
        bench.quiesce()
        rows.append(((fw, cw, dw), fill))
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_worker_sweep(benchmark):
    """Single vs multi dispatch on the write-heavy phase: scaling the
    flush, compaction and dispatch worker counts one axis at a time,
    with a non-zero dispatch CPU so the single dispatch thread is an
    actual bottleneck (§4.2's hypothesized limit)."""
    rows = benchmark.pedantic(run_worker_sweep, rounds=1, iterations=1)

    lines = ["Figure 5 (extension): fill-sequential vs worker counts",
             f"(4 clients, {SWEEP_OPS} ops/client, dispatch CPU "
             f"{SWEEP_DISPATCH_CPU * 1e3:.0f} ms/block, horizontal "
             "placement)", ""]
    header = (f"{'fw,cw,dw':>9s} | {'kops/s':>8s} | {'stall s':>8s} | "
              f"{'slowed':>6s} | backpressure residency")
    lines.append(header)
    lines.append("-" * len(header))
    for (fw, cw, dw), fill in rows:
        residency = " ".join(
            f"{state}={seconds:.2f}s" for state, seconds in
            sorted(fill.backpressure_residency.items()))
        lines.append(f"{fw:>3d},{cw:>2d},{dw:>2d} | "
                     f"{format_kops(fill.ops_per_sec)} | "
                     f"{fill.stall_seconds:8.2f} | "
                     f"{fill.slowdown_puts:6d} | {residency}")
    report("fig5_worker_sweep", lines)

    by_config = {config: fill for config, fill in rows}
    single = by_config[(2, 2, 1)].ops_per_sec
    multi = by_config[(2, 2, 2)].ops_per_sec
    # The acceptance bar: a second dispatch worker recovers >= 1.2x on
    # the write-heavy phase once dispatch CPU binds.
    assert multi >= 1.2 * single
    # Pipelined flushing alone must not be slower than the paper's
    # single-daemon configuration.
    assert by_config[(2, 1, 1)].ops_per_sec >= by_config[(1, 1, 1)].ops_per_sec
