"""Figure 1: the SSD landscape grid (structural reproduction).

Regenerates the taxonomy figure: SSD models organized by FTL placement
and FTL abstraction, with the remaining design-space dimensions
annotated.
"""

from repro.benchhelpers import report
from repro.landscape import SSD_MODELS, figure1_grid, render_figure1


def test_fig1_landscape(benchmark):
    grid = benchmark(figure1_grid)
    lines = ["Figure 1: SSD models by FTL placement x FTL abstraction", ""]
    lines.append(render_figure1())
    lines.append("")
    lines.append("Annotated dimensions per model:")
    for model in SSD_MODELS:
        dims = model.dimensions()
        lines.append(
            f"  {model.name:28s} ({dims['chips']}, {dims['integration']}, "
            f"{dims['transparency']}, {dims['access']})")
    report("fig1_landscape", lines)
    assert sum(len(models) for models in grid.values()) == len(SSD_MODELS)
