"""WAF ablation over the FTL policy lab (repro.policies).

The policy plane exists to answer one question the paper's fixed FTL
cannot: *how much write amplification is policy, not physics?*  This
bench sweeps GC victim-selection policy x overwrite workload x
over-provisioning level on a small OX-Block device and reports, per
cell:

* ``waf`` — flash write amplification, ``(flash sectors programmed +
  GC-relocated sectors) / host sectors written``;
* ``victim_p99_us`` — wall-clock p99 of one victim-selection decision
  (the policy's own CPU cost, measured bench-side by
  :class:`repro.policies.TimedVictimPolicy` so the obs registry stays
  deterministic);
* ``gc_stall_s`` — total simulated time user writes spent blocked on
  foreground space reclamation (the ``ftl.gc.stall_s`` histogram);
* ``relocated`` / ``recycled`` — raw GC effort.

Two extra rows run the WLFC-style write-less cache host
(``host="wlfc"``) over the greedy collector: the RAM stage absorbs
re-writes before they reach flash, so its WAF undercuts every bare
policy on skewed workloads — the "measurably lower WAF than greedy"
acceptance row.

The device is deliberately small (4 groups x 2 PUs) and filled past the
GC watermark, so every overwrite pays for space reclamation and policy
differences are visible in minutes-of-CPU, not hours.

Run directly::

    PYTHONPATH=src python benchmarks/bench_policy_ablation.py
    PYTHONPATH=src python benchmarks/bench_policy_ablation.py --smoke
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Optional

from repro.benchhelpers import append_trajectory, git_sha, report
from repro.policies import TimedVictimPolicy
from repro.stack import StackSpec, build_stack
from repro.workloads import ZipfianKeyChooser

GC_POLICIES = ("greedy", "cost_benefit", "age_partitioned")
WORKLOADS = ("uniform", "zipf")
#: Fill fractions of the data region -> over-provisioning levels
#: (0.60 leaves 40 % spare; 0.80 leaves 20 %).
FILL_FRACTIONS = (0.60, 0.80)

#: 4 groups x 2 PUs x 8 chunks; 6 chunks of group 0 go to metadata.
GEOMETRY = dict(num_groups=4, pus_per_group=2, chunks_per_pu=8,
                pages_per_block=6)
#: Eager background collection: the daemon reclaims toward 14 free
#: chunks so sustained overwrites at 80 % utilization never corner the
#: foreground reclaim path (whose zero-gain tolerance is two rounds).
FTL_CONFIG = dict(gc_low_watermark=8, gc_high_watermark=14)

FULL = dict(name="policy_ablation", overwrite_ops=1_500)
SMOKE = dict(name="policy_ablation_smoke", overwrite_ops=300)


def _spec(gc_policy: str, fill: float, *, host: str = "none",
          wlfc_sectors: int = 0, seed: int = 0) -> StackSpec:
    wlfc = {"cache_sectors": wlfc_sectors} if host == "wlfc" else {}
    return StackSpec(
        name=f"ablate_{gc_policy}_{fill}",
        seed=seed,
        geometry=dict(GEOMETRY),
        ftl="oxblock",
        ftl_config=dict(FTL_CONFIG),
        gc_policy=gc_policy,
        host=host,
        wlfc=wlfc,
        obs=True)


def run_cell(gc_policy: str, workload: str, fill: float,
             overwrite_ops: int, *, host: str = "none",
             seed: int = 0) -> Dict[str, object]:
    """One sweep cell: fill to *fill*, overwrite with *workload*, and
    account for every flash write the combination caused."""
    cache = 0
    if host == "wlfc":
        # A small stage: ~10 % of the overwritten span, so absorption
        # is earned by locality, not by caching the whole device.
        cache = 256
    stack = build_stack(_spec(gc_policy, fill, host=host,
                              wlfc_sectors=cache, seed=seed))
    ftl = stack.ftl
    timed = TimedVictimPolicy(ftl.gc.victim_policy)
    ftl.gc.victim_policy = timed
    surface = stack.wlfc if stack.wlfc is not None else ftl

    geometry = stack.device.geometry
    unit = geometry.ws_min
    data_sectors = (ftl.provisioner.free_chunks()
                    * geometry.sectors_per_chunk)
    span_units = int(data_sectors * fill) // unit
    payload = bytes(unit * geometry.sector_size)

    for index in range(span_units):
        surface.write(index * unit, payload)

    if workload == "uniform":
        rng = random.Random(seed + 1)
        choose = lambda: rng.randrange(span_units)
    elif workload == "zipf":
        zipf = ZipfianKeyChooser(span_units, theta=0.99, seed=seed,
                                 stream="policy_ablation")
        choose = zipf.next
    else:   # seq_overwrite: keep re-writing the first quarter of the span
        hot = max(1, span_units // 4)
        cursor = [0]

        def choose() -> int:
            cursor[0] = (cursor[0] + 1) % hot
            return cursor[0]

    for __ in range(overwrite_ops):
        surface.write(choose() * unit, payload)
    surface.flush()
    stack.sim.run()

    flash = ftl.stats.sectors_written
    relocated = ftl.gc.stats.sectors_relocated
    if stack.wlfc is not None:
        host_sectors = stack.wlfc.stats.host_sectors_written
    else:
        host_sectors = flash
    stall = stack.obs.metrics.histogram("ftl.gc.stall_s")
    return {
        "policy": gc_policy if host != "wlfc" else f"wlfc+{gc_policy}",
        "workload": workload,
        "fill": fill,
        "host_sectors": host_sectors,
        "flash_sectors": flash,
        "relocated": relocated,
        "recycled": ftl.gc.stats.chunks_recycled,
        "waf": round((flash + relocated) / host_sectors, 4),
        "victim_p99_us": round(timed.percentile(99) * 1e6, 2),
        "gc_stall_s": round(stall.total(), 6),
        "sim_seconds": round(stack.sim.now, 9),
        "events_processed": stack.sim.events_processed,
    }


def run_sweep(cfg: dict, *, policies=GC_POLICIES, workloads=WORKLOADS,
              fills=FILL_FRACTIONS, wlfc: bool = True,
              seed: int = 0) -> List[Dict[str, object]]:
    rows = []
    for fill in fills:
        for workload in workloads:
            for policy in policies:
                rows.append(run_cell(policy, workload, fill,
                                     cfg["overwrite_ops"], seed=seed))
            if wlfc:
                rows.append(run_cell("greedy", workload, fill,
                                     cfg["overwrite_ops"], host="wlfc",
                                     seed=seed))
    return rows


def format_rows(rows: List[Dict[str, object]]) -> List[str]:
    header = (f"{'policy':>20s} {'workload':>9s} {'fill':>5s} "
              f"{'waf':>7s} {'victim_p99_us':>13s} {'gc_stall_s':>11s} "
              f"{'relocated':>9s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['policy']:>20s} {row['workload']:>9s} "
            f"{row['fill']:>5.2f} {row['waf']:>7.4f} "
            f"{row['victim_p99_us']:>13.2f} {row['gc_stall_s']:>11.6f} "
            f"{row['relocated']:>9d}")
    return lines


def summarize(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Flat metrics for the results JSON / BENCH trajectory: per-cell
    WAF keyed by ``waf.<policy>.<workload>.<fill>``, plus the headline
    best-vs-greedy delta."""
    metrics: Dict[str, object] = {}
    greedy: Dict[tuple, float] = {}
    best_delta = 0.0
    for row in rows:
        key = (f"waf.{row['policy']}.{row['workload']}."
               f"{int(row['fill'] * 100)}")
        metrics[key] = row["waf"]
        if row["policy"] == "greedy":
            greedy[(row["workload"], row["fill"])] = row["waf"]
    for row in rows:
        base = greedy.get((row["workload"], row["fill"]))
        if base and row["policy"] != "greedy":
            best_delta = max(best_delta, base - row["waf"])
    metrics["best_waf_delta_vs_greedy"] = round(best_delta, 4)
    return metrics


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (the policy_guard shape)")
    parser.add_argument("--append", action="store_true",
                        help="append the summary to BENCH_perf.json")
    args = parser.parse_args(argv)
    cfg = SMOKE if args.smoke else FULL

    rows = run_sweep(cfg)
    metrics = summarize(rows)
    lines = [f"FTL policy ablation ({cfg['name']}, "
             f"{cfg['overwrite_ops']} overwrites per cell)"]
    lines.extend(format_rows(rows))
    lines.append("")
    lines.append(f"best WAF improvement vs greedy: "
                 f"{metrics['best_waf_delta_vs_greedy']}")
    report(cfg["name"], lines, metrics=metrics)
    if args.append:
        append_trajectory(cfg["name"], metrics, sha=git_sha())
    return 0


if __name__ == "__main__":
    sys.exit(main())
