"""Figure 3: impact of checkpoint intervals on recovery time.

The paper's experiment: OX-Block absorbs random transactional writes of
up to 1 MB; OX is killed (`kill -9`) at six points in time T1..T6; after
restart, recovery reconstructs metadata and mapping state.  Three
configurations: checkpointing disabled, checkpoint interval Ci, and 3*Ci
(the paper used Ci 10 s and Ci 30 s against a 120 s run; we scale the
run to 3 s of simulated time and the intervals to 0.25 s / 0.75 s —
same ratio of interval to runtime).

Expected shape (paper): without checkpoints recovery grows linearly with
the log and reaches the same order as the runtime; with checkpoints it
oscillates and stays bounded; the two checkpointed intervals do not
differ much.
"""

import pytest

from repro.benchhelpers import report
from repro.ox import OXBlock
from repro.stack import StackSpec, build_stack
from repro.units import MIB, fmt_time
from repro.workloads import RandomWriteWorkload

# T1..T6, simulated seconds (paper: 20..120 s; scale factor 40).
FAIL_POINTS = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
INTERVALS = {"disabled": None, "Ci 0.25s": 0.25, "Ci 0.75s": 0.75}


def run_one(checkpoint_interval, fail_at: float) -> float:
    stack = build_stack(StackSpec(
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 144, "pages_per_block": 24},
        ftl="oxblock",
        ftl_config={"checkpoint_interval": checkpoint_interval,
                    "wal_chunk_count": 140,
                    "ckpt_chunks_per_slot": 2,
                    "wal_pressure_threshold": 0.95,
                    "replay_cpu_per_record": 2e-5}))
    media, ftl = stack.media, stack.ftl
    geometry = stack.device.geometry
    workload = RandomWriteWorkload(
        lba_space=geometry.capacity_bytes // geometry.sector_size // 4,
        max_bytes=1 * MIB, seed=23)
    sim = stack.sim

    def writer():
        for op in workload.operations():
            if sim.now >= fail_at:
                return
            yield from ftl.write_proc(op.lba,
                                      op.payload(geometry.sector_size))

    sim.run_until(sim.spawn(writer()))
    ftl.crash()
    __, recovery = OXBlock.recover(media, ftl.config)
    return recovery.duration


def run_grid():
    results = {}
    for label, interval in INTERVALS.items():
        results[label] = [run_one(interval, t) for t in FAIL_POINTS]
    return results


@pytest.mark.benchmark(group="fig3")
def test_fig3_recovery_time(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    lines = ["Figure 3: recovery time vs failure time, per checkpoint "
             "interval", "(paper runtime 120 s scaled to 3 s; Ci 10/30 s "
             "scaled to 0.25/0.75 s)", "",
             f"{'failure at':>10s} | " + " | ".join(
                 f"{label:>12s}" for label in INTERVALS)]
    for index, fail_at in enumerate(FAIL_POINTS):
        row = " | ".join(f"{fmt_time(results[label][index]):>12s}"
                         for label in INTERVALS)
        lines.append(f"{fail_at:>9.1f}s | {row}")

    disabled = results["disabled"]
    bounded = results["Ci 0.25s"]
    lines.append("")
    lines.append(f"no-checkpoint growth T1->T6: "
                 f"{disabled[-1] / max(disabled[0], 1e-9):.1f}x "
                 f"(paper: linear growth to ~100 s at T6)")
    lines.append(f"checkpointed max/min oscillation: "
                 f"{max(bounded) / max(min(bounded), 1e-9):.1f}x, "
                 f"bounded below the no-checkpoint tail")
    report("fig3_recovery", lines)

    # Shape assertions: monotone growth without checkpoints; the
    # checkpointed configs stay below the no-checkpoint tail.
    assert disabled[-1] > disabled[0] * 2
    assert max(results["Ci 0.25s"]) < disabled[-1]
    assert max(results["Ci 0.75s"]) < disabled[-1]
