"""Cluster scaling bench: sharded fleets vs one big device.

Not a paper figure — the cluster layer extends the paper's "one host,
many device personalities" argument sideways (one router, many device
shards), and this bench measures what that buys:

* **Scale-out series** — total ops/sec as the shard count grows at a
  fixed per-shard workload (weak scaling), all serial, so the series
  isolates routing + merge overhead from process-pool mechanics;
* **Worker series** — wall-clock for a fixed 4-shard fleet as the
  worker-process count grows.  The merged metrics are asserted
  bit-identical across the series (the cluster's reproducibility
  contract); only the wall clock may move.  ``cpu_count`` is stamped
  into the recorded entry because the speedup ceiling is the box, not
  the code: on a single-core container the parallel runs measure pool
  overhead, not parallelism.

The headline ``cluster_macro`` entry (4 shards, serial reference run)
appends to ``BENCH_perf.json`` like the other trajectory entries.

Run directly::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --smoke --no-append
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.benchhelpers import append_trajectory, git_sha, report
from repro.cluster import ClusterSpec, run_cluster

# One shard of the fleet == the perf-smoke drive (2 groups x 2 PUs), so
# the scale-out series reads against a familiar baseline.
SHARD_TEMPLATE = {
    "geometry": {"num_groups": 2, "pus_per_group": 2,
                 "chunks_per_pu": 16, "pages_per_block": 6},
    "ftl": "oxblock",
    "ftl_config": {"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2},
}

MACRO = dict(name="cluster_macro", shard_counts=(1, 2, 4),
             worker_counts=(0, 1, 2, 4), keys_per_shard=40,
             reads_per_shard=300, replication=2)
SMOKE = dict(name="cluster_scaling_smoke", shard_counts=(1, 2),
             worker_counts=(0, 1), keys_per_shard=8,
             reads_per_shard=24, replication=1)


def cluster_spec(cfg: dict, shards: int, workers: int = 0) -> ClusterSpec:
    """A *shards*-wide fleet with the workload scaled per shard."""
    replication = min(cfg["replication"], shards)
    return ClusterSpec(
        name=cfg["name"], seed=0, num_shards=shards,
        replication=replication, router="hash", workers=workers,
        template=dict(SHARD_TEMPLATE),
        workload={"num_keys": cfg["keys_per_shard"] * shards,
                  "read_ops": cfg["reads_per_shard"] * shards,
                  "value_units": 1})


def run_scaling(cfg: dict) -> dict:
    """Run both series; return the metrics dict for the trajectory."""
    metrics: dict = {"cpu_count": os.cpu_count()}

    # -- scale-out: shards grow, workload grows with them (weak scaling)
    for shards in cfg["shard_counts"]:
        started = time.perf_counter()
        result = run_cluster(cluster_spec(cfg, shards), workers=0)
        wall = time.perf_counter() - started
        total_ops = (result.merged["cluster.writes_attempted"]
                     + result.merged["cluster.reads_attempted"])
        metrics[f"serial_ops_per_sec_{shards}shard"] = round(
            total_ops / wall, 1)
        assert result.reads_lost == 0, f"{shards}-shard run lost reads"

    # -- workers: fixed fleet, growing pool; merged metrics must not move
    fleet = max(cfg["shard_counts"])
    reference = None
    for workers in cfg["worker_counts"]:
        result = run_cluster(cluster_spec(cfg, fleet), workers=workers)
        if reference is None:
            reference = result.merged
            metrics["ops_per_sec"] = result.wall["ops_per_sec"]
            metrics["serial_wall_seconds"] = result.wall["wall_seconds"]
        else:
            assert result.merged == reference, (
                f"{workers}-worker merged metrics diverged from serial")
        metrics[f"wall_seconds_{workers}workers"] = (
            result.wall["wall_seconds"])
    serial_wall = metrics["serial_wall_seconds"]
    parallel_walls = [metrics[f"wall_seconds_{w}workers"]
                      for w in cfg["worker_counts"] if w > 0]
    if os.cpu_count() == 1:
        # One core: the worker series measures process-pool overhead,
        # not parallelism.  Recording a "speedup" here would read as a
        # regression (or a fluke win) on every multi-core box that
        # compares against it, so annotate instead of scoring.
        metrics["parallel_overhead_only"] = True
    elif parallel_walls and min(parallel_walls) > 0:
        metrics["best_parallel_speedup"] = round(
            serial_wall / min(parallel_walls), 2)
    metrics["shards"] = fleet
    metrics["keys"] = cfg["keys_per_shard"] * fleet
    metrics["read_ops"] = cfg["reads_per_shard"] * fleet
    return metrics


def format_lines(name: str, metrics: dict) -> list:
    lines = [f"Cluster scaling: {name} "
             f"({metrics['shards']} shards x {SHARD_TEMPLATE['geometry']})"]
    width = max(18, max(len(key) for key in metrics))
    lines.extend(f"  {key:>{width}s} = {metrics[key]}"
                 for key in sorted(metrics))
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fleet / op counts (CI smoke run)")
    parser.add_argument("--no-append", action="store_true",
                        help="do not append this run to BENCH_perf.json")
    args = parser.parse_args(argv)

    cfg = SMOKE if args.smoke else MACRO
    metrics = run_scaling(cfg)
    report(cfg["name"], format_lines(cfg["name"], metrics))
    if not args.no_append:
        append_trajectory(cfg["name"], metrics, sha=git_sha())
    return 0


def test_cluster_scaling_smoke():
    """The smoke series runs end to end with bit-identical merges."""
    metrics = run_scaling(SMOKE)
    assert metrics["ops_per_sec"] > 0
    assert metrics["serial_ops_per_sec_1shard"] > 0
    assert metrics["serial_ops_per_sec_2shard"] > 0
    assert metrics["cpu_count"] >= 1
    if os.cpu_count() == 1:
        # Single-core boxes annotate instead of scoring a bogus speedup.
        assert metrics.get("parallel_overhead_only") is True
        assert "best_parallel_speedup" not in metrics


if __name__ == "__main__":
    sys.exit(main())
