"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's figures (or an in-text
number).  Simulated metrics are printed as the figure's rows/series;
pytest-benchmark additionally records the wall-clock cost of running each
simulation.  Scale factors relative to the paper's testbed are printed by
each bench and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def print_header(title: str, scale_note: str = "") -> None:
    print("\n" + "=" * 74)
    print(title)
    if scale_note:
        print(scale_note)
    print("=" * 74)
