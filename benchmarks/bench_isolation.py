"""Noisy-neighbor isolation bench: victim read tail latency vs placement
and scheduling policy (the repro.qos acceptance experiment).

Two tenants share one drive.  The *victim* issues closed-loop 4 KB random
reads against pre-filled chunks; the *aggressor* runs a sustained
write/erase churn (fill a chunk, move on, erase once durable) that keeps
chips busy with 900 us programs and 3.5 ms erases.  Four scenarios:

* ``solo``            — victim alone, no scheduler (the baseline p99);
* ``shared_fifo``     — both tenants striped over every PU, stock FIFO
  resource acquisition (what PR 1..3 shipped);
* ``shared_drr``      — same striping, QosScheduler attached (DRR +
  read priority; informative — chips still finish in-flight programs);
* ``partitioned_drr`` — ``plan_placement(PARTITIONED)`` gives each
  tenant disjoint groups, scheduler attached.

All p99s come from the per-tenant obs histogram
``qos.tenant.victim.read.latency_s`` recorded in ``device.submit``, so
the number is the same end-to-end latency the traced stack reports.

Acceptance (printed as PASS/FAIL, exit 1 on FAIL):

* partitioned_drr p99 <= 2x solo p99  (isolation holds);
* shared_fifo   p99 >= 4x solo p99  (the problem is real).

Run directly::

    PYTHONPATH=src python benchmarks/bench_isolation.py [--smoke]
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Tuple

from repro.benchhelpers import report
from repro.ocssd import ChunkReset, OpenChannelSSD, Ppa, VectorRead, \
    VectorWrite
from repro.qos import TenantContext
from repro.stack import StackSpec, build_stack
from repro.workloads import derive_stream_seed

SECTOR = 4096

# The drive: 4 groups x 2 PUs of TLC (8 chunks/PU, 48 sectors/chunk).
# Small enough that a four-scenario run is a few wall seconds, large
# enough that partitioning can hand each tenant two whole groups.
FULL = dict(name="bench_isolation", groups=4, pus=2, chunks=8, pages=6,
            victim_reads=400, warmup_s=2e-3, seed=11)
SMOKE = dict(FULL, name="bench_isolation_smoke", victim_reads=120)


def build_scenario(cfg: dict, policy: str, with_scheduler: bool):
    """A raw-device stack with obs + two tenants, scheduler optional."""
    return build_stack(StackSpec(
        name=cfg["name"],
        geometry={"num_groups": cfg["groups"], "pus_per_group": cfg["pus"],
                  "chunks_per_pu": cfg["chunks"],
                  "pages_per_block": cfg["pages"]},
        ftl="none", obs=True,
        tenants=[{"name": "victim", "weight": 3.0},
                 {"name": "aggressor", "weight": 1.0}],
        qos_policy=policy, qos_scheduler=with_scheduler))


def fill_victim_chunks(device: OpenChannelSSD,
                       pus: List[Tuple[int, int]],
                       tenant: TenantContext) -> None:
    """Write chunk 0 of every victim PU full (tenant-tagged), then flush
    so the measured reads hit NAND rather than the write-back cache."""
    g = device.geometry
    unit = g.ws_min
    payload = [bytes(SECTOR)] * unit
    for group, pu in pus:
        for start in range(0, g.sectors_per_chunk, unit):
            ppas = [Ppa(group=group, pu=pu, chunk=0, sector=start + i)
                    for i in range(unit)]
            device.execute(VectorWrite(ppas=ppas, data=list(payload),
                                       tenant=tenant))
    device.flush()


def victim_proc(device: OpenChannelSSD, pus: List[Tuple[int, int]],
                reads: int, seed: int, tenant: TenantContext):
    """Closed-loop single-sector random reads over the filled chunks."""
    g = device.geometry
    rng = random.Random(derive_stream_seed(seed, "victim"))
    for __ in range(reads):
        group, pu = pus[rng.randrange(len(pus))]
        sector = rng.randrange(g.sectors_per_chunk)
        ppa = Ppa(group=group, pu=pu, chunk=0, sector=sector)
        yield from device.submit(VectorRead(ppas=[ppa], tenant=tenant))


def aggressor_proc(device: OpenChannelSSD, group: int, pu: int,
                   tenant: TenantContext):
    """Endless write/erase churn on chunks 1.. of one PU.

    Fills each chunk through the write-back cache (channel-transfer
    pressure), then erases every chunk once its flush is durable (chip
    pressure: one 3.5 ms erase per chunk, back to back)."""
    g = device.geometry
    unit = g.ws_min
    payload = [bytes(SECTOR)] * unit
    while True:
        for chunk in range(1, g.chunks_per_pu):
            for start in range(0, g.sectors_per_chunk, unit):
                ppas = [Ppa(group=group, pu=pu, chunk=chunk,
                            sector=start + i) for i in range(unit)]
                yield from device.submit(VectorWrite(
                    ppas=ppas, data=list(payload), tenant=tenant))
        for chunk in range(1, g.chunks_per_pu):
            probe = Ppa(group=group, pu=pu, chunk=chunk, sector=0)
            while (device.chunk_info(probe).flushed_pointer
                   < g.sectors_per_chunk):
                yield device.sim.timeout(200e-6)
            yield from device.submit(ChunkReset(ppa=probe, tenant=tenant))


def run_scenario(cfg: dict, policy: str, with_scheduler: bool,
                 with_aggressor: bool) -> Dict[str, float]:
    """One fresh device + obs stack; returns victim read stats."""
    stack = build_scenario(cfg, policy, with_scheduler)
    device, sim = stack.device, stack.sim
    victim = stack.tenant("victim")
    aggressor = stack.tenant("aggressor")
    victim_pus = stack.placement_plan[victim]
    fill_victim_chunks(device, victim_pus, victim)

    if with_aggressor:
        for group, pu in stack.placement_plan[aggressor]:
            sim.spawn(aggressor_proc(device, group, pu, aggressor))
        sim.run_until(sim.timeout(cfg["warmup_s"]))

    victim_done = sim.spawn(victim_proc(device, victim_pus,
                                        cfg["victim_reads"], cfg["seed"],
                                        victim))
    sim.run_until(victim_done)

    latency = stack.obs.metrics.histogram(
        "qos.tenant.victim.read.latency_s")
    stats = latency.summary()
    return {"reads": stats["count"], "mean_s": stats["mean"],
            "p50_s": stats["p50"], "p99_s": stats["p99"],
            "max_s": stats["max"]}


def run_all(cfg: dict) -> Dict[str, Dict[str, float]]:
    return {
        "solo": run_scenario(cfg, "shared", with_scheduler=False,
                             with_aggressor=False),
        "shared_fifo": run_scenario(cfg, "shared", with_scheduler=False,
                                    with_aggressor=True),
        "shared_drr": run_scenario(cfg, "shared", with_scheduler=True,
                                   with_aggressor=True),
        "partitioned_drr": run_scenario(cfg, "partitioned",
                                        with_scheduler=True,
                                        with_aggressor=True),
    }


def verdicts(results: Dict[str, Dict[str, float]]) -> List[Tuple[str, bool]]:
    solo = results["solo"]["p99_s"]
    part = results["partitioned_drr"]["p99_s"]
    fifo = results["shared_fifo"]["p99_s"]
    return [
        (f"partitioned_drr p99 <= 2x solo "
         f"({part * 1e6:.0f} us vs {2 * solo * 1e6:.0f} us)",
         part <= 2 * solo),
        (f"shared_fifo p99 >= 4x solo "
         f"({fifo * 1e6:.0f} us vs {4 * solo * 1e6:.0f} us)",
         fifo >= 4 * solo),
    ]


def format_lines(name: str, results: Dict[str, Dict[str, float]]) -> list:
    solo = results["solo"]["p99_s"]
    lines = [f"Isolation: victim 4 KB read latency vs noisy neighbor "
             f"({name})",
             f"  {'scenario':>16s} {'mean':>9s} {'p50':>9s} {'p99':>9s} "
             f"{'p99/solo':>9s}"]
    for scenario, stats in results.items():
        lines.append(
            f"  {scenario:>16s} {stats['mean_s'] * 1e6:7.0f}us "
            f"{stats['p50_s'] * 1e6:7.0f}us {stats['p99_s'] * 1e6:7.0f}us "
            f"{stats['p99_s'] / solo:8.2f}x")
    for label, ok in verdicts(results):
        lines.append(f"  {'PASS' if ok else 'FAIL'}: {label}")
    return lines


def flat_metrics(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    flat = {}
    for scenario, stats in results.items():
        for key, value in stats.items():
            flat[f"{scenario}.{key}"] = value
    solo = results["solo"]["p99_s"]
    flat["degradation_shared_fifo"] = results["shared_fifo"]["p99_s"] / solo
    flat["degradation_partitioned_drr"] = (
        results["partitioned_drr"]["p99_s"] / solo)
    return flat


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer victim reads (CI smoke run)")
    args = parser.parse_args(argv)
    cfg = SMOKE if args.smoke else FULL
    results = run_all(cfg)
    report(cfg["name"], format_lines(cfg["name"], results),
           metrics=flat_metrics(results))
    return 0 if all(ok for __, ok in verdicts(results)) else 1


def test_isolation_smoke():
    """The acceptance bounds hold even at smoke op counts."""
    results = run_all(SMOKE)
    solo = results["solo"]["p99_s"]
    assert results["partitioned_drr"]["p99_s"] <= 2 * solo
    assert results["shared_fifo"]["p99_s"] >= 4 * solo
    assert results["solo"]["reads"] == SMOKE["victim_reads"]


if __name__ == "__main__":
    sys.exit(main())
