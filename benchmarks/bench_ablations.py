"""Ablations over the design choices DESIGN.md calls out.

1. **Write-back vs write-through controller cache** — the mechanism the
   paper credits for write >> read throughput (Figure 5's asymmetry).
2. **Block size** — §4.2: RocksDB forces the unit of read up to the unit
   of write; larger blocks amplify read cost on point lookups.
3. **Checkpoint interval sweep** — the Figure 3 trade-off as a curve:
   checkpoint overhead during the run vs recovery time after a crash.
"""

import pytest

from repro.benchhelpers import format_kops, lightlsm_db, report
from repro.lsm import DBConfig, DbBench, HorizontalPlacement
from repro.ox import OXBlock
from repro.stack import StackSpec, build_stack
from repro.units import KIB, MIB, fmt_time
from repro.workloads import RandomWriteWorkload


# -- ablation 1: write-back vs write-through cache -----------------------------


def fill_throughput(write_back: bool) -> float:
    stack = build_stack(StackSpec(
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": 120, "pages_per_block": 6},
        ftl="lightlsm", write_back=write_back,
        db={"block_size": 96 * KIB, "write_buffer_bytes": 4 * MIB}))
    bench = stack.dbbench()
    result = bench.fill_sequential(clients=2, ops_per_client=12_000)
    return result.ops_per_sec


@pytest.mark.benchmark(group="ablations")
def test_ablation_write_back_cache(benchmark):
    results = benchmark.pedantic(
        lambda: {"write-back": fill_throughput(True),
                 "write-through": fill_throughput(False)},
        rounds=1, iterations=1)
    lines = ["Ablation: controller cache policy (fill-seq, 2 clients)", "",
             f"{'policy':>14s} {'kops/s':>9s}"]
    for policy, value in results.items():
        lines.append(f"{policy:>14s} {format_kops(value)}")
    ratio = results["write-back"] / results["write-through"]
    lines.append("")
    lines.append(f"write-back speedup: {ratio:.2f}x — 'writes complete as "
                 "soon as they hit the storage controller cache' (§4.3)")
    report("ablation_cache", lines)
    assert results["write-back"] > results["write-through"]


# -- ablation 2: block size --------------------------------------------------------


def point_read_latency(block_units: int) -> float:
    stack = build_stack(StackSpec(
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": 120,
                  "pages_per_block": 6 * block_units},
        ftl="lightlsm",
        db={"block_size": block_units * 96 * KIB,
            "write_buffer_bytes": 2 * MIB}))
    bench = stack.dbbench()
    bench.fill_sequential(clients=1, ops_per_client=8_000)
    bench.quiesce()
    result = bench.read_random(clients=1, ops_per_client=300)
    return result.elapsed / result.ops


@pytest.mark.benchmark(group="ablations")
def test_ablation_block_size(benchmark):
    results = benchmark.pedantic(
        lambda: {units: point_read_latency(units) for units in (1, 2, 3)},
        rounds=1, iterations=1)
    lines = ["Ablation: RocksDB block size vs point-read latency",
             "(the §4.2 observation: forcing unit of read = unit of write "
             "makes reads pay for write-unit multiples)", "",
             f"{'block size':>11s} {'read latency':>13s}"]
    for units, latency in results.items():
        lines.append(f"{units * 96:>8d} KB {fmt_time(latency):>13s}")
    report("ablation_block_size", lines)
    assert results[3] > results[1]


# -- ablation 3: iterator readahead ----------------------------------------------------


def scan_throughput(readahead: bool) -> float:
    device, env, db = lightlsm_db(HorizontalPlacement())
    db.config = DBConfig(block_size=96 * KIB, write_buffer_bytes=4 * MIB,
                         readahead=readahead)
    bench = DbBench(db)
    bench.fill_sequential(clients=2, ops_per_client=8_000)
    bench.quiesce()
    result = bench.read_sequential(clients=2, ops_per_client=4_000)
    return result.ops_per_sec


@pytest.mark.benchmark(group="ablations")
def test_ablation_readahead(benchmark):
    results = benchmark.pedantic(
        lambda: {"readahead": scan_throughput(True),
                 "no readahead": scan_throughput(False)},
        rounds=1, iterations=1)
    lines = ["Ablation: iterator block readahead (read-seq, 2 clients)",
             "", f"{'mode':>13s} {'kops/s':>9s}"]
    for mode, value in results.items():
        lines.append(f"{mode:>13s} {format_kops(value)}")
    lines.append("")
    lines.append("Readahead overlaps the next block's media time with "
                 "consumption of the current one; striped (horizontal) "
                 "placement makes the prefetch land on an idle chip.")
    report("ablation_readahead", lines)
    assert results["readahead"] >= results["no readahead"]


# -- ablation 4: checkpoint interval sweep ---------------------------------------------


def checkpoint_tradeoff(interval):
    stack = build_stack(StackSpec(
        geometry={"num_groups": 4, "pus_per_group": 4,
                  "chunks_per_pu": 96, "pages_per_block": 24},
        ftl="oxblock",
        ftl_config={"checkpoint_interval": interval,
                    "wal_chunk_count": 120,
                    "wal_pressure_threshold": 0.95,
                    "replay_cpu_per_record": 2e-5}))
    device, media, ftl = stack.device, stack.media, stack.ftl
    geometry = device.geometry
    workload = RandomWriteWorkload(
        lba_space=geometry.capacity_bytes // geometry.sector_size // 4,
        max_bytes=512 * KIB, seed=5)
    sim = device.sim
    ops = 0

    def writer():
        nonlocal ops
        for op in workload.operations():
            if sim.now >= 1.5:
                return
            yield from ftl.write_proc(op.lba,
                                      op.payload(geometry.sector_size))
            ops += 1

    sim.run_until(sim.spawn(writer()))
    ftl.crash()
    __, recovery = OXBlock.recover(media, ftl.config)
    return ops / 1.5, recovery.duration


@pytest.mark.benchmark(group="ablations")
def test_ablation_checkpoint_interval(benchmark):
    intervals = [None, 0.1, 0.25, 0.5, 1.0]
    results = benchmark.pedantic(
        lambda: {interval: checkpoint_tradeoff(interval)
                 for interval in intervals},
        rounds=1, iterations=1)
    lines = ["Ablation: checkpoint interval — runtime cost vs recovery "
             "time", "",
             f"{'interval':>9s} {'write ops/s':>12s} {'recovery':>10s}"]
    for interval, (rate, recovery) in results.items():
        label = "off" if interval is None else f"{interval:.2f}s"
        lines.append(f"{label:>9s} {rate:>12.0f} {fmt_time(recovery):>10s}")
    lines.append("")
    lines.append("Frequent checkpoints trade a little foreground "
                 "throughput for bounded recovery (Figure 3's knob).")
    report("ablation_checkpoint", lines)
    # Recovery with any checkpointing beats recovery without.
    no_ckpt = results[None][1]
    assert all(results[i][1] < no_ckpt for i in intervals if i is not None)
