"""§4.3 in-text numbers: locality of garbage-collection interference.

"OX-Block marks a group for collection.  Then, background threads recycle
victim chunks within that group.  This guarantees locality of
interferences from garbage collection ... On an SSD with 16 channels,
this percentage is 93.7%.  On an SSD with 8 channels, this percentage is
87.5%."

The bench measures it: fill the device, invalidate data so the marked
group has victims, then read uniformly across all groups *while* GC
recycles chunks in the marked group.  A group counts as interfered with
when its in-GC read latency rises materially above its idle baseline.
The analytic value is (N-1)/N for N groups.
"""

import pytest

from repro.benchhelpers import report
from repro.sim.stats import LatencyRecorder
from repro.stack import StackSpec, build_stack


def build(groups: int):
    stack = build_stack(StackSpec(
        geometry={"num_groups": groups, "pus_per_group": 2,
                  "chunks_per_pu": 10, "pages_per_block": 6},
        ftl="oxblock",
        ftl_config={"gc_enabled": False, "wal_chunk_count": 2,
                    "ckpt_chunks_per_slot": 1}))
    return stack.device, stack.ftl


def measure(groups: int):
    device, ftl = build(groups)
    geometry = device.report_geometry()
    sector = geometry.sector_size
    sim = device.sim

    # Fill, then overwrite, leaving invalid sectors everywhere.
    lba_count = geometry.ws_min * geometry.total_pus * 4
    for round_ in range(3):
        for lba in range(0, lba_count, geometry.ws_min):
            ftl.write(lba, bytes([round_ + 1]) * sector * geometry.ws_min)
    ftl.flush()
    sim.run()

    # Sample LBAs per group (via the mapping table's physical homes).
    samples = {group: [] for group in range(groups)}
    for lba in range(lba_count):
        linear = ftl.page_map.lookup(lba)
        if linear is None:
            continue
        home = geometry.delinearize(linear)
        if len(samples[home.group]) < 8:
            samples[home.group].append(lba)

    def probe(recorders):
        for group in range(groups):
            for lba in samples[group]:
                started = sim.now
                yield from ftl.read_proc(lba, 1)
                recorders[group].record(sim.now - started)

    # Idle baseline.
    baseline = {g: LatencyRecorder() for g in range(groups)}
    sim.run_until(sim.spawn(probe(baseline)))

    # GC in the marked group, concurrent with the probe.
    ftl.gc.marked_group = 0
    during = {g: LatencyRecorder() for g in range(groups)}

    def gc_run():
        grant = ftl._lock.request()
        yield grant
        try:
            recycled = yield from ftl.gc.collect_group_locked_proc(0)
        finally:
            ftl._lock.release()
        return recycled

    gc_proc = sim.spawn(gc_run())

    def repeated_probe():
        while gc_proc.is_alive:
            yield from probe(during)

    sim.run_until(sim.spawn(repeated_probe()))
    recycled = sim.run_until(gc_proc)
    assert recycled > 0, "GC found no victims; workload too small"

    interfered = []
    for group in range(groups):
        idle = baseline[group].mean()
        busy = during[group].mean()
        if busy > idle * 1.25:
            interfered.append(group)
    unaffected = 1.0 - len(interfered) / groups
    return unaffected, interfered, recycled


def run_both():
    return {groups: measure(groups) for groups in (8, 16)}


@pytest.mark.benchmark(group="gc-locality")
def test_gc_interference_locality(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lines = ["GC interference locality (§4.3 in-text numbers)", "",
             f"{'channels':>9s} {'analytic':>9s} {'measured':>9s} "
             f"{'paper':>7s}"]
    paper = {8: 0.875, 16: 0.937}
    for groups, (unaffected, interfered, recycled) in results.items():
        analytic = (groups - 1) / groups
        lines.append(f"{groups:>9d} {analytic:>8.1%} {unaffected:>8.1%} "
                     f"{paper[groups]:>6.1%}  "
                     f"(interfered groups: {interfered}, "
                     f"{recycled} chunks recycled)")
    report("gc_locality", lines)

    for groups, (unaffected, interfered, __) in results.items():
        assert unaffected == pytest.approx((groups - 1) / groups,
                                           abs=1.0 / groups / 2)
        assert interfered == [0]   # only the marked group suffers
