"""Figure 7: impact of data copies on storage-controller utilization.

The paper's experiment: host threads write LSS buffers into OX-ELEOS on
the DFC; every buffer is copied twice inside OX (network stack -> FTL,
FTL -> Open-Channel SSD).  "The storage controller is saturated with 2
host threads, because it cannot keep up with the data copies."

Expected shape: CPU utilization grows roughly linearly with the number of
host threads and saturates at ~2 threads; throughput flattens at the
copy-bandwidth ceiling.
"""

import pytest

from repro.benchhelpers import report
from repro.host import DfcPlatform, HostWriteExperiment
from repro.stack import StackSpec, build_stack
from repro.units import MIB

HOST_THREADS = (1, 2, 3, 4, 6, 8)
BUFFERS_PER_THREAD = 4


def run_point(host_threads: int):
    stack = build_stack(StackSpec(
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": 64, "pages_per_block": 24},
        ftl="eleos", host="none",
        ftl_config={"buffer_bytes": 8 * MIB, "wal_chunk_count": 48}))
    platform = DfcPlatform(stack.sim)
    experiment = HostWriteExperiment(stack.ftl, platform,
                                     buffer_bytes=8 * MIB,
                                     page_bytes=64 * 1024)
    return experiment.run(host_threads,
                          buffers_per_thread=BUFFERS_PER_THREAD)


def run_sweep():
    return {threads: run_point(threads) for threads in HOST_THREADS}


@pytest.mark.benchmark(group="fig7")
def test_fig7_controller_utilization(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lines = ["Figure 7: DFC controller CPU utilization vs host threads",
             "(8 MB LSS buffers, 2 copies per buffer inside OX)", "",
             f"{'threads':>8s} {'cpu util':>9s} {'throughput':>12s}"]
    for threads in HOST_THREADS:
        result = results[threads]
        lines.append(
            f"{threads:>8d} {result.cpu_utilization:>8.0%} "
            f"{result.throughput_bytes_per_sec / MIB:>9.0f} MiB/s")
    util = {t: results[t].cpu_utilization for t in HOST_THREADS}
    lines.append("")
    lines.append(f"saturation: 1->2 threads gains "
                 f"{util[2] - util[1]:+.0%}, 2->8 threads gains "
                 f"{util[8] - util[2]:+.0%} (paper: saturated at 2)")
    report("fig7_copies", lines)

    # Shape: near-linear growth to 2 threads, saturation beyond.
    assert util[2] > 1.6 * util[1]
    assert util[2] > 0.75
    assert util[8] - util[2] < 0.5 * (util[2] - util[1])
    assert util[8] <= 1.0
