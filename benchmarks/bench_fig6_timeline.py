"""Figure 6: fill-sequential throughput as a function of time.

Regenerates the two time-series panels: throughput (ops/s) over the run
for horizontal and vertical placement at 1/2/4/8 clients.  Expected
shapes (paper): horizontal stays high with 1-2 clients and stretches out
at 4-8; vertical shows an early 1-client peak but a lower average, and
becomes steadier (and relatively faster) with more clients; throughput
fluctuates throughout — the write-stall/rate-limiter throttling the
paper hypothesizes.
"""

import pytest

from repro.benchhelpers import lightlsm_db, report
from repro.lsm import DbBench, HorizontalPlacement, VerticalPlacement

CLIENTS = (1, 2, 4, 8)
FILL_OPS = 24_000
WINDOW = 0.05   # seconds per sample


def run_timelines():
    curves = {}
    for placement_cls in (HorizontalPlacement, VerticalPlacement):
        for clients in CLIENTS:
            device, env, db = lightlsm_db(placement_cls())
            bench = DbBench(db, series_window=WINDOW)
            result = bench.fill_sequential(clients=clients,
                                           ops_per_client=FILL_OPS)
            curves[(placement_cls.name, clients)] = result
    return curves


def sparkline(series, buckets=32):
    """Render a series as a coarse ASCII sparkline."""
    if not series:
        return ""
    rates = [rate for __, rate in series]
    peak = max(rates) or 1.0
    glyphs = " .:-=+*#%@"
    step = max(1, len(rates) // buckets)
    sampled = [max(rates[i:i + step]) for i in range(0, len(rates), step)]
    return "".join(glyphs[min(len(glyphs) - 1,
                              int(r / peak * (len(glyphs) - 1)))]
                   for r in sampled)


@pytest.mark.benchmark(group="fig6")
def test_fig6_fill_timeline(benchmark):
    curves = benchmark.pedantic(run_timelines, rounds=1, iterations=1)

    lines = ["Figure 6: fill-sequential throughput over time",
             f"(sampling window {WINDOW * 1e3:.0f} ms; each row: duration, "
             "peak and mean rate, ASCII profile)", ""]
    for placement in ("horizontal", "vertical"):
        lines.append(f"--- {placement} placement ---")
        for clients in CLIENTS:
            result = curves[(placement, clients)]
            rates = [rate for __, rate in result.series]
            peak = max(rates) if rates else 0.0
            lines.append(
                f"{clients} client(s): {result.elapsed:6.2f}s  "
                f"peak {peak / 1e3:7.1f} kops/s  "
                f"mean {result.ops_per_sec / 1e3:7.1f} kops/s  "
                f"stall {result.stall_seconds:5.2f}s")
            lines.append(f"    |{sparkline(result.series)}|")
        lines.append("")
    report("fig6_timeline", lines)

    horizontal = {c: curves[("horizontal", c)] for c in CLIENTS}
    vertical = {c: curves[("vertical", c)] for c in CLIENTS}
    # Completion time stretches with client count (same per-client ops,
    # shared device).
    assert horizontal[8].elapsed > horizontal[1].elapsed
    assert vertical[8].elapsed > vertical[1].elapsed
    # Fluctuation: the throughput profile is not flat (stall throttling).
    rates8 = [rate for __, rate in horizontal[8].series if rate > 0]
    assert max(rates8) > 2 * (sum(rates8) / len(rates8))
    # Vertical's 1-client run shows a peak well above its mean.
    rates_v1 = [rate for __, rate in vertical[1].series if rate > 0]
    assert max(rates_v1) > 1.5 * vertical[1].ops_per_sec


# -- compaction concurrency timeline (PR-10 concurrency plane) ----------------

def concurrency_profile(timeline, buckets=64):
    """Step-sample ``stats.compaction_timeline`` — a list of
    ``(sim_time, in_flight)`` transition points — into a digit string
    (one character per bucket, holding the last value seen)."""
    if not timeline:
        return "", 0
    end = timeline[-1][0] or 1.0
    step = end / buckets
    out, index, level = [], 0, 0
    for bucket in range(buckets):
        edge = (bucket + 1) * step
        while index < len(timeline) and timeline[index][0] <= edge:
            level = timeline[index][1]
            index += 1
        out.append(str(min(level, 9)))
    return "".join(out), max(count for __, count in timeline)


def run_concurrency_timeline():
    curves = {}
    for workers in (1, 2):
        device, env, db = lightlsm_db(
            HorizontalPlacement(), flush_workers=4,
            compaction_workers=workers)
        bench = DbBench(db, series_window=WINDOW)
        bench.fill_sequential(clients=8, ops_per_client=FILL_OPS)
        bench.quiesce()
        curves[workers] = db.stats
    return curves


@pytest.mark.benchmark(group="fig6")
def test_fig6_compaction_concurrency(benchmark):
    """How many compactions actually overlap over the fill: the engine
    records every executor transition, and with 2 workers the timeline
    must show real overlap (L0->L1 running next to a deeper merge)."""
    curves = benchmark.pedantic(run_concurrency_timeline, rounds=1,
                                iterations=1)

    lines = ["Figure 6 (extension): in-flight compactions over the fill",
             "(8 clients, 4 flush workers; each digit is the in-flight "
             "count at that point in the run)", ""]
    for workers, stats in sorted(curves.items()):
        profile, peak = concurrency_profile(stats.compaction_timeline)
        lines.append(f"{workers} compaction worker(s): "
                     f"{stats.compactions} compactions, peak {peak} "
                     f"in flight")
        lines.append(f"    |{profile}|")
    report("fig6_compaction_concurrency", lines)

    peak1 = max(count for __, count in curves[1].compaction_timeline)
    peak2 = max(count for __, count in curves[2].compaction_timeline)
    assert peak1 == 1
    assert peak2 == 2
