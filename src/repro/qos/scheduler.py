"""Controller-side QoS scheduler: the host owns the I/O schedule.

Without a scheduler attached, the device grants channels and chips in
arrival order (FIFO) — one tenant's program/erase burst can sit in front
of another tenant's reads, which is precisely the unpredictability the
paper attributes to black-box SSDs.  :class:`QosScheduler` replaces the
FIFO channel grant with a three-part policy:

1. **Read priority.**  Each channel serves its read class strictly
   before its write/program class; a 75 µs read never queues behind a
   900 µs program train unless the channel is already mid-transfer.
2. **Weighted deficit round robin** within each class, across per-tenant
   queues.  Each visit deposits ``weight × quantum_bytes`` of credit; a
   tenant whose head request exceeds its deficit rotates away, so
   bandwidth converges to the weight ratio for backlogged tenants
   without any per-grant sorting.
3. **Token-bucket throttles** per tenant, applied before a request may
   even contend for the channel (see :mod:`repro.qos.tokenbucket`).

The scheduler follows the repo's zero-cost-when-absent convention: the
controller's hot paths test ``if self.qos is None`` and fall back to the
original FIFO behaviour; with a scheduler attached but only one tenant
active, every acquisition takes the no-wait fast path below (no Event is
created), so an idle scheduler adds one attribute test per command.

Two DRR refinements keep pathological weights safe:

* **Fast-forward** — when a full sweep of a class grants nothing (every
  deficit is below its head cost), all active flows receive ``k`` rounds
  of quantum at once, where ``k`` is the smallest round count that makes
  some flow affordable.  A weight-1e-9 tenant costs O(1) work, not
  millions of rotations.
* **Aging** — a flow visited ``starvation_rounds`` times without service
  is served regardless of deficit.  Combined with fast-forward this
  bounds any tenant's wait to ``starvation_rounds`` grants, whatever the
  weights.

Background work (GC, compaction) consults :meth:`backlog` through
:meth:`background_gate_proc` and yields while foreground reads are
queued, implementing the issue's "background work yields under load".
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.qos.tenant import SYSTEM_TENANT, TenantContext
from repro.qos.tokenbucket import TokenBucket
from repro.sidecar import QOS_SLOT, Sidecar
from repro.sim.core import Event, Simulator


@dataclass(frozen=True)
class QosConfig:
    """Tunables for the scheduler; defaults match the isolation bench."""

    #: DRR credit per visit is ``weight * quantum_bytes`` — sized to one
    #: write unit (24 sectors × 4 KB) so a weight-1 tenant earns a full
    #: program transfer per round.
    quantum_bytes: int = 96 * 1024
    #: Chip-lock priorities used by the controller when a scheduler is
    #: attached (lower wins; the sim Resource serves priority-then-FIFO).
    read_priority: int = -1
    program_priority: int = 0
    erase_priority: int = 1
    #: Serve a flow regardless of deficit after this many unserved visits.
    starvation_rounds: int = 64
    #: One DRR sweep approves up to this many grants at once; later
    #: releases hand the channel over in O(1) from the approved backlog
    #: instead of re-running deficit/aging bookkeeping per command.  The
    #: grant *order* is the order repeated single-grant sweeps would
    #: produce; only arrivals newer than the sweep wait for the next
    #: burst (reads still preempt any approved write backlog).
    burst_grants: int = 8
    #: Background work yields while ``backlog() >= bg_backlog_threshold``...
    bg_backlog_threshold: int = 1
    #: ...sleeping this long per yield...
    bg_pause_s: float = 200e-6
    #: ...but never deferring one background step longer than this, so
    #: GC can always make forward progress (no livelock under a
    #: permanently saturated foreground).
    bg_max_wait_s: float = 5e-3


class _Pending:
    """One queued channel request."""

    __slots__ = ("event", "cost", "enqueued_at", "cancelled")

    def __init__(self, event: Event, cost: int, enqueued_at: float):
        self.event = event
        self.cost = cost
        self.enqueued_at = enqueued_at
        self.cancelled = False


class _Flow:
    """Per-tenant DRR state inside one class queue."""

    __slots__ = ("tenant", "quantum", "queue", "deficit", "visited",
                 "unserved", "active")

    def __init__(self, tenant: TenantContext, quantum_bytes: int):
        self.tenant = tenant
        self.quantum = tenant.weight * quantum_bytes
        self.queue: deque[_Pending] = deque()
        self.deficit = 0.0
        self.visited = False     # quantum already deposited this visit
        self.unserved = 0        # visits since last service (aging)
        self.active = False      # present in the class round-robin order

    def _deactivate(self) -> None:
        self.active = False
        self.deficit = 0.0
        self.visited = False
        self.unserved = 0


class _ClassQueue:
    """One service class (reads, or writes/programs) of one channel."""

    __slots__ = ("order", "flows", "waiting")

    def __init__(self):
        self.order: deque[_Flow] = deque()
        self.flows: Dict[TenantContext, _Flow] = {}
        self.waiting = 0


class _Gate:
    """Admission state of one channel: at most one holder at a time.

    ``approved_read``/``approved_write`` hold requests a DRR sweep has
    already ordered for service; they count as waiting (for backlog and
    the fast-path test) until the grant actually fires.
    """

    __slots__ = ("busy", "read", "write", "approved_read", "approved_write")

    def __init__(self):
        self.busy = False
        self.read = _ClassQueue()
        self.write = _ClassQueue()
        self.approved_read: deque = deque()
        self.approved_write: deque = deque()


class QosScheduler(Sidecar):
    """Weighted-DRR channel scheduler with read priority and throttles.

    Attach to a device with :meth:`attach`; thereafter the controller
    routes every channel acquisition through
    :meth:`channel_acquire_proc` / :meth:`channel_release`.
    """

    slot = QOS_SLOT

    def __init__(self, sim: Simulator, config: Optional[QosConfig] = None):
        super().__init__()
        self.sim = sim
        self.config = config or QosConfig()
        self._gates: Dict[int, _Gate] = {}
        self._buckets: Dict[TenantContext, TokenBucket] = {}
        self._waiting_total = 0
        self._reads_blocked = 0
        # Plain counters, always on (cheap ints); mirrored into obs
        # metrics when a hub is attached.
        self.grants = 0
        self.fast_grants = 0
        self.throttle_delays = 0

    # -- wiring (Sidecar protocol) -------------------------------------------

    def sidecar_targets(self, device):
        # No chip slot: qos acts at the channel gates and chip-lock
        # priorities, both of which live in the controller.  The simulator
        # carries the slot so layers built later (the LSM engine's
        # background gate) inherit the scheduler from ``sim.qos``.
        return (device, device.controller, device.sim)

    def _sidecar_validate(self, device) -> None:
        if device.sim is not self.sim:
            raise ValueError("scheduler and device belong to different "
                             "simulators")

    def register_tenant(self, tenant: TenantContext) -> TenantContext:
        """Create the tenant's ingress throttle (a no-op bucket when the
        tenant has no rate).  Flows are created lazily on first I/O."""
        if tenant not in self._buckets:
            self._buckets[tenant] = TokenBucket(
                self.sim, tenant.rate_bytes_per_sec, tenant.burst_bytes)
        return tenant

    # -- channel admission --------------------------------------------------

    def try_channel_acquire(self, tenant: Optional[TenantContext],
                            group: int) -> bool:
        """Non-blocking twin of :meth:`channel_acquire_proc`'s fast path.

        Grants the gate synchronously when the tenant is unthrottled and
        the channel is idle with empty queues (the uncontended common
        case), sparing the caller a generator round-trip.  Returns False
        with no side effects when the full path must run instead.
        """
        if tenant is None:
            tenant = SYSTEM_TENANT
        bucket = self._buckets.get(tenant)
        if bucket is not None and bucket.rate is not None:
            return False
        gate = self._gates.get(group)
        if gate is None:
            gate = self._gates[group] = _Gate()
        if (not gate.busy and not gate.read.waiting
                and not gate.write.waiting):
            gate.busy = True
            self.fast_grants += 1
            return True
        return False

    def channel_acquire_proc(self, tenant: Optional[TenantContext],
                             kind: str, group: int, num_bytes: int):
        """Process generator: throttle, then win the channel gate.

        ``kind`` is ``"read"`` for host reads (served with strict
        priority); everything else lands in the write/program class.
        The caller owns the channel until :meth:`channel_release`.
        """
        if tenant is None:
            tenant = SYSTEM_TENANT
        bucket = self._buckets.get(tenant)
        if bucket is not None and bucket.rate is not None:
            before = self.sim.now
            yield from bucket.acquire_proc(num_bytes)
            waited = self.sim.now - before
            if waited > 0:
                self.throttle_delays += 1
                obs = self.sim.obs
                if obs is not None:
                    obs.metrics.counter("qos.throttle.delays").increment()
                    obs.metrics.histogram(
                        f"qos.throttle.{tenant.name}.wait_s").record(waited)

        gate = self._gates.get(group)
        if gate is None:
            gate = self._gates[group] = _Gate()
        if (not gate.busy and not gate.read.waiting
                and not gate.write.waiting):
            # Fast path: idle channel, empty queues — grant synchronously.
            # The single-tenant case always lands here, so an attached
            # but uncontended scheduler adds no events and no latency.
            gate.busy = True
            self.fast_grants += 1
            return

        cq = gate.read if kind == "read" else gate.write
        flow = cq.flows.get(tenant)
        if flow is None:
            flow = cq.flows[tenant] = _Flow(tenant, self.config.quantum_bytes)
        grant = self.sim.event()
        pending = _Pending(grant, num_bytes, self.sim.now)
        grant.abandon_callback = (
            lambda event, g=group, p=pending: self._abandon(g, p, event))
        flow.queue.append(pending)
        if not flow.active:
            flow.active = True
            cq.order.append(flow)
        cq.waiting += 1
        self._waiting_total += 1
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.gauge("qos.sched.queue_depth").set(
                self._waiting_total)
        yield grant
        # The dispatcher marked the gate busy on our behalf before
        # succeeding the event; record how long we queued.
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.histogram("qos.sched.wait_s").record(
                self.sim.now - pending.enqueued_at)
            obs.metrics.histogram(
                f"qos.tenant.{tenant.name}.sched_wait_s").record(
                self.sim.now - pending.enqueued_at)

    def channel_release(self, group: int) -> None:
        """Hand the channel back; dispatch the next queued request."""
        gate = self._gates.get(group)
        if gate is None or not gate.busy:
            return
        pending = self._next_grant(gate)
        if pending is None:
            gate.busy = False
            return
        # Gate stays busy for the new holder.
        self._waiting_total -= 1
        self.grants += 1
        obs = self.sim.obs
        if obs is not None:
            obs.metrics.counter("qos.sched.grants").increment()
            obs.metrics.gauge("qos.sched.queue_depth").set(
                self._waiting_total)
        pending.event.succeed()

    def _next_grant(self, gate: _Gate) -> Optional[_Pending]:
        """The next request to own the channel, or None if all queues are
        idle.  Reads first: an approved write backlog never outranks a
        queued read, so strict read priority survives batching."""
        for cq, approved in ((gate.read, gate.approved_read),
                             (gate.write, gate.approved_write)):
            while True:
                while approved:
                    head = approved.popleft()
                    if not head.cancelled:
                        cq.waiting -= 1
                        return head
                if cq.waiting and cq.order:
                    self._drr_burst(cq, approved)
                    if approved:
                        continue
                break
        return None

    def _abandon(self, group: int, pending: _Pending, event: Event) -> None:
        """An interrupted waiter hands its (possibly granted) slot back."""
        if event.triggered:
            self.channel_release(group)
        elif not pending.cancelled:
            pending.cancelled = True
            gate = self._gates[group]
            for cq, approved in ((gate.read, gate.approved_read),
                                 (gate.write, gate.approved_write)):
                if pending in approved:
                    cq.waiting -= 1
                    self._waiting_total -= 1
                    return
                for flow in cq.flows.values():
                    if pending in flow.queue:
                        cq.waiting -= 1
                        self._waiting_total -= 1
                        return

    # -- deficit round robin ------------------------------------------------

    def _drr_burst(self, cq: _ClassQueue, approved: deque) -> None:
        """One DRR sweep approving up to ``burst_grants`` requests.

        Emits grants into *approved* in exactly the order repeated
        single-grant sweeps would serve them — a flow burst-serves its
        head requests while its deficit lasts, then rotates — but pays
        the visited/deficit/aging bookkeeping once per sweep instead of
        once per grant.
        """
        order = cq.order
        burst = self.config.burst_grants
        starvation_rounds = self.config.starvation_rounds
        rotations = 0
        while order and len(approved) < burst:
            flow = order[0]
            queue = flow.queue
            while queue and queue[0].cancelled:
                queue.popleft()
            if not queue:
                order.popleft()
                flow._deactivate()
                rotations = 0   # membership changed; restart sweep count
                continue
            if not flow.visited:
                flow.visited = True
                flow.deficit += flow.quantum
                flow.unserved += 1
            served = False
            starved = flow.unserved > starvation_rounds
            while queue and len(approved) < burst:
                head = queue[0]
                if head.cancelled:
                    queue.popleft()
                    continue
                if flow.deficit >= head.cost or starved:
                    flow.deficit = (0.0 if starved
                                    else flow.deficit - head.cost)
                    starved = False
                    flow.unserved = 0
                    queue.popleft()
                    approved.append(head)
                    served = True
                else:
                    break
            if not queue:
                order.popleft()
                flow._deactivate()
                rotations = 0
                continue
            if len(approved) >= burst:
                # Quota reached: entering this iteration requires a free
                # slot, so something was served.  If the head is still
                # affordable, stay there with the visit open — the next
                # sweep resumes exactly where repeated single grants
                # would; otherwise rotate as a spent flow.
                if flow.deficit < queue[0].cost:
                    flow.visited = False
                    order.rotate(-1)
                return
            if served:
                rotations = 0
            else:
                rotations += 1
            flow.visited = False
            order.rotate(-1)
            if rotations and rotations >= len(order):
                # Full sweep, nothing affordable: jump everyone forward
                # by the smallest round count that unblocks some flow.
                self._fast_forward(cq)
                rotations = 0

    def _fast_forward(self, cq: _ClassQueue) -> None:
        rounds_needed = None
        for flow in list(cq.order):
            queue = flow.queue
            while queue and queue[0].cancelled:
                queue.popleft()
            if not queue:
                cq.order.remove(flow)
                flow._deactivate()
                continue
            need = math.ceil((queue[0].cost - flow.deficit) / flow.quantum)
            if rounds_needed is None or need < rounds_needed:
                rounds_needed = need
        if rounds_needed is None:
            return
        rounds_needed = max(1, rounds_needed)
        for flow in cq.order:
            flow.deficit += rounds_needed * flow.quantum
            flow.unserved += rounds_needed

    # -- foreground backlog / background backpressure -----------------------

    def note_read_blocked(self, delta: int) -> None:
        """Controller bookkeeping: a host read started (+1) or stopped
        (-1) waiting on a chip lock."""
        self._reads_blocked += delta

    def backlog(self) -> int:
        """Foreground read pressure: reads blocked on chips plus reads
        queued at channel gates."""
        total = self._reads_blocked
        for gate in self._gates.values():
            total += gate.read.waiting
        return total

    def queue_depth(self) -> int:
        """Requests currently queued at all channel gates."""
        return self._waiting_total

    def background_gate_proc(self):
        """Process generator: pause background work while foreground
        reads are backlogged, for at most ``bg_max_wait_s``."""
        config = self.config
        waited = 0.0
        yields = 0
        while (self.backlog() >= config.bg_backlog_threshold
               and waited < config.bg_max_wait_s):
            yield self.sim.timeout(config.bg_pause_s)
            waited += config.bg_pause_s
            yields += 1
        if yields:
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("qos.bg.yields").increment(yields)
                obs.metrics.histogram("qos.bg.wait_s").record(waited)
