"""Tenant identity: who an I/O belongs to.

The paper's isolation argument (§3, Figure 4) is that host-controlled
placement and scheduling make cross-tenant interference a *policy*
decision instead of a device accident.  That requires every command to
carry its originator: a :class:`TenantContext` is threaded from the
workload/LSM/LLAMA host through the FTLs into the device controller,
where the QoS scheduler and the per-tenant metrics read it.

A ``TenantContext`` is immutable and hashable so it can tag commands,
key scheduler queues and name metrics without lifecycle concerns.  This
module is dependency-free on purpose: the command layer imports it (for
typing only) and the scheduler imports it, so it must sit below both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional


@dataclass(frozen=True)
class TenantContext:
    """One tenant's identity and QoS parameters.

    * ``weight`` sets the tenant's deficit-round-robin share of contended
      channels (relative to the other tenants' weights);
    * ``rate_bytes_per_sec``/``burst_bytes`` configure an optional
      token-bucket throttle applied before the tenant's commands reach
      the scheduler (``None`` = unthrottled).
    """

    tenant_id: int
    name: str
    weight: float = 1.0
    rate_bytes_per_sec: Optional[float] = None
    burst_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be > 0, "
                f"got {self.weight}")
        if (self.rate_bytes_per_sec is not None
                and self.rate_bytes_per_sec <= 0):
            raise ValueError(
                f"tenant {self.name!r}: rate must be positive or None, "
                f"got {self.rate_bytes_per_sec}")


#: The implicit owner of untagged I/O (FTL metadata, WAL, checkpoints,
#: recovery scans).  It participates in scheduling with weight 1 and no
#: throttle, so infrastructure traffic is never starved by tenant policy.
SYSTEM_TENANT = TenantContext(tenant_id=0, name="system")


class TenantRegistry:
    """Assigns tenant ids and keeps the tenant set of one run.

    Registration order is the scheduler's round-robin order, so runs are
    deterministic for a fixed registration sequence.
    """

    def __init__(self):
        self._by_name: Dict[str, TenantContext] = {}
        self._next_id = 1   # 0 is SYSTEM_TENANT

    def register(self, name: str, weight: float = 1.0,
                 rate_bytes_per_sec: Optional[float] = None,
                 burst_bytes: Optional[float] = None) -> TenantContext:
        if name in self._by_name or name == SYSTEM_TENANT.name:
            raise ValueError(f"tenant {name!r} is already registered")
        tenant = TenantContext(
            tenant_id=self._next_id, name=name, weight=weight,
            rate_bytes_per_sec=rate_bytes_per_sec, burst_bytes=burst_bytes)
        self._next_id += 1
        self._by_name[name] = tenant
        return tenant

    def lookup(self, name: str) -> TenantContext:
        if name == SYSTEM_TENANT.name:
            return SYSTEM_TENANT
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[TenantContext]:
        return iter(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name or name == SYSTEM_TENANT.name
