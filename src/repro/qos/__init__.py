"""repro.qos — multi-tenant I/O scheduling, isolation and tail control.

The subsystem the paper's predictability argument calls for: tenant
identity on every command (:mod:`repro.qos.tenant`), a controller-side
weighted-DRR scheduler with read priority and per-tenant token-bucket
throttles (:mod:`repro.qos.scheduler`), tenant-to-channel placement
policies (:mod:`repro.qos.placement`) and the repo's single token
bucket (:mod:`repro.qos.tokenbucket`).

Zero-cost when absent: nothing here is imported by the device model's
hot paths; the controller tests ``self.qos is None`` exactly the way it
tests ``self.obs`` and ``self.faults``.
"""

from repro.qos.placement import (
    PARTITIONED,
    POLICIES,
    SHARED,
    plan_placement,
)
from repro.qos.scheduler import QosConfig, QosScheduler
from repro.qos.tenant import SYSTEM_TENANT, TenantContext, TenantRegistry
from repro.qos.tokenbucket import TokenBucket

__all__ = [
    "PARTITIONED",
    "POLICIES",
    "SHARED",
    "plan_placement",
    "QosConfig",
    "QosScheduler",
    "SYSTEM_TENANT",
    "TenantContext",
    "TenantRegistry",
    "TokenBucket",
]
