"""The repo's one token-bucket rate limiter.

Two consumers share this implementation: the LSM background throttle
(``repro.lsm.db`` imports it directly — RocksDB calls the same device a
``RateLimiter``) and the QoS scheduler's per-tenant ingress
throttles.  The paper frames both as the same mechanism — bounding a
traffic class's bytes/second so it cannot monopolize the device — so the
repo keeps a single implementation.

Implementation: virtual-time reservations.  Each acquisition books
``bytes / rate`` seconds on a shared virtual clock; a caller waits until
its reservation's end.  Idle periods accumulate at most ``burst`` bytes
of credit.  Reservations serialize correctly under concurrent acquirers
(unlike a naive check-then-subtract token count).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Simulator


class TokenBucket:
    """Token bucket over simulated time.

    ``rate_bytes_per_sec = None`` disables limiting (acquire returns
    immediately), mirroring RocksDB's default.
    """

    def __init__(self, sim: Simulator,
                 rate_bytes_per_sec: Optional[float] = None,
                 burst_bytes: Optional[float] = None):
        if rate_bytes_per_sec is not None and rate_bytes_per_sec <= 0:
            raise ValueError(
                f"rate must be positive or None, got {rate_bytes_per_sec}")
        self.sim = sim
        self.rate = rate_bytes_per_sec
        self.burst = float(burst_bytes if burst_bytes is not None
                           else (rate_bytes_per_sec or 0))
        # Virtual time up to which granted bytes have been "produced";
        # starting one burst in the past grants the initial burst credit.
        self._reserved_until = sim.now
        if self.rate is not None:
            self._reserved_until -= self.burst / self.rate
        self.total_acquired = 0
        self.total_wait = 0.0

    def acquire_proc(self, num_bytes: int):
        """Process generator: block until *num_bytes* tokens are granted."""
        if num_bytes < 0:
            raise ValueError(f"negative acquire: {num_bytes}")
        self.total_acquired += num_bytes
        if self.rate is None:
            return
        now = self.sim.now
        credit_horizon = now - self.burst / self.rate
        self._reserved_until = max(self._reserved_until, credit_horizon)
        self._reserved_until += num_bytes / self.rate
        wait = self._reserved_until - now
        if wait > 0:
            self.total_wait += wait
            yield self.sim.timeout(wait)
