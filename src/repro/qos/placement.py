"""Tenant-to-parallel-unit placement: partitioned vs. shared striping.

The paper's isolation mechanism is physical: give each tenant its own
channels/LUNs and their traffic never meets inside the device.  The
alternative — stripe every tenant across all units for peak bandwidth —
is what a conventional SSD's FTL does implicitly, and is where
noisy-neighbor tail latency comes from.  This module computes the
tenant → parallel-unit assignment for either policy; the FTL layers
consume it as a plain list of ``(group, pu)`` pairs (no device-layer
imports here, so ``repro.qos`` stays below ``repro.ocssd``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.qos.tenant import TenantContext

PuAddress = Tuple[int, int]

#: Tenants get disjoint channel (group) sets; no shared buses or chips.
PARTITIONED = "partitioned"
#: Every tenant stripes over every parallel unit (conventional-SSD-like).
SHARED = "shared"

POLICIES = (PARTITIONED, SHARED)


def plan_placement(num_groups: int, pus_per_group: int,
                   tenants: Sequence[TenantContext],
                   policy: str = PARTITIONED,
                   ) -> Dict[TenantContext, List[PuAddress]]:
    """Assign parallel units to *tenants* under *policy*.

    ``partitioned`` deals whole groups (channels) round-robin, weight-
    agnostic: isolation comes from disjoint hardware, not shares.  The
    channel is the contended bus, so splitting at group granularity
    removes both chip and bus interference.  Requires
    ``len(tenants) <= num_groups``.

    ``shared`` gives every tenant every unit; isolation (if any) is then
    the scheduler's job.
    """
    if not tenants:
        raise ValueError("plan_placement needs at least one tenant")
    if len(set(tenants)) != len(tenants):
        raise ValueError("duplicate tenant in placement request")
    if policy == SHARED:
        every = [(group, pu) for group in range(num_groups)
                 for pu in range(pus_per_group)]
        return {tenant: list(every) for tenant in tenants}
    if policy != PARTITIONED:
        raise ValueError(f"unknown placement policy {policy!r}; "
                         f"expected one of {POLICIES}")
    if len(tenants) > num_groups:
        raise ValueError(
            f"partitioned placement needs >= 1 group per tenant: "
            f"{len(tenants)} tenants > {num_groups} groups")
    plan: Dict[TenantContext, List[PuAddress]] = {t: [] for t in tenants}
    for group in range(num_groups):
        tenant = tenants[group % len(tenants)]
        plan[tenant].extend((group, pu) for pu in range(pus_per_group))
    return plan
