"""Physical page addresses (PPA) in the OCSSD 2.0 hierarchy.

An address names a sector as ``(group, pu, chunk, sector)``:

* ``group`` — unit of I/O isolation (one channel per group here),
* ``pu`` — parallel unit (a chip) within the group,
* ``chunk`` — sequential-write unit within the PU,
* ``sector`` — logical block (4 KB by default) within the chunk.

``Ppa`` is a ``NamedTuple``: device models construct one per addressed
sector on every I/O, and tuple allocation is several times cheaper than a
frozen dataclass while keeping the same field access, ordering, equality
and immutability.
"""

from __future__ import annotations

from typing import NamedTuple


class Ppa(NamedTuple):
    """A physical sector address on the Open-Channel SSD."""

    group: int
    pu: int
    chunk: int
    sector: int

    def chunk_address(self) -> "Ppa":
        """The address of the containing chunk (sector zeroed)."""
        return Ppa(self.group, self.pu, self.chunk, 0)

    def chunk_key(self) -> tuple:
        """Hashable identity of the containing chunk."""
        return self[:3]

    def with_sector(self, sector: int) -> "Ppa":
        return Ppa(self.group, self.pu, self.chunk, sector)

    def __str__(self) -> str:
        return (f"ppa(g{self.group} pu{self.pu} "
                f"chk{self.chunk} sec{self.sector})")
