"""Controller write-back cache accounting.

The evaluation drive "implements a write-back policy where writes complete
as soon as they hit the storage controller cache" (§4.3) — this is why
fill-sequential throughput dwarfs read throughput in Figure 5.  The cache
here is an admission-credit scheme: a write must reserve one credit per
sector before it can complete; credits return when the background flusher
programs the sectors to NAND.  A full cache therefore back-pressures
writers at NAND program speed, bounding the volatile window.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class WriteBackCache:
    """Counting semaphore over cache sectors with FIFO reservations."""

    def __init__(self, sim: Simulator, capacity_sectors: int):
        if capacity_sectors < 1:
            raise SimulationError(
                f"cache capacity must be >= 1 sector, got {capacity_sectors}")
        self.sim = sim
        self.capacity = capacity_sectors
        self._free = capacity_sectors
        self._waiters: deque[tuple[int, Event]] = deque()

    @property
    def free_sectors(self) -> int:
        return self._free

    @property
    def used_sectors(self) -> int:
        return self.capacity - self._free

    def reserve(self, sectors: int) -> Event:
        """Return an event that succeeds once *sectors* credits are held.

        Requests larger than the whole cache are granted in one piece once
        the cache fully drains (they could never succeed otherwise); FIFO
        order prevents starvation of large reservations by small ones.
        """
        if sectors <= 0:
            raise SimulationError(f"reserve of {sectors} sectors")
        grant = self.sim.event()
        capped = min(sectors, self.capacity)
        if not self._waiters and self._free >= capped:
            self._free -= capped
            grant.succeed(capped)
        else:
            self._waiters.append((capped, grant))
        return grant

    def try_reserve(self, sectors: int):
        """Synchronously take credits if the grant would be immediate.

        Returns the number of credits held (the capped amount), or None
        when the reservation would have to queue.  Mirrors
        ``Resource.try_acquire``: an uncontended reservation succeeds at
        the current instant either way, so skipping the event round-trip
        changes neither timing nor FIFO fairness.
        """
        if sectors <= 0:
            raise SimulationError(f"reserve of {sectors} sectors")
        capped = min(sectors, self.capacity)
        if not self._waiters and self._free >= capped:
            self._free -= capped
            return capped
        return None

    def release(self, sectors: int) -> None:
        """Return credits; wakes FIFO waiters whose requests now fit."""
        if sectors < 0:
            raise SimulationError(f"release of {sectors} sectors")
        self._free += sectors
        if self._free > self.capacity:
            raise SimulationError("cache credits over-released")
        while self._waiters and self._free >= self._waiters[0][0]:
            amount, grant = self._waiters.popleft()
            self._free -= amount
            grant.succeed(amount)

    def drop_all(self) -> None:
        """Crash semantics: forget contents and cancel waiting reservations."""
        self._free = self.capacity
        self._waiters.clear()
