"""The device controller: command scheduling, timing and interference.

The parallelism rules of §2.1 are enforced structurally:

* one channel :class:`~repro.sim.Resource` per *group* — no interference
  across groups, contention within one;
* one resource per *chip* (PU) — operations are sequential within a chip;
* NAND latencies come from the chip's :class:`~repro.nand.NandTiming`.

With the write-back cache enabled (the default, matching the evaluation
drive), a write completes once its data is transferred into controller
DRAM and cache credits are held; a per-PU flusher process programs the
data to NAND in admission order.  Program failures discovered during the
background flush are reported through the asynchronous notification log,
exactly the §2.2 "asynchronous error reporting" contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MediaError
from repro.nand.chip import BlockState, FlashChip
from repro.ocssd.address import Ppa
from repro.ocssd.cache import WriteBackCache
from repro.ocssd.chunk import Chunk, ChunkState
from repro.ocssd.geometry import DeviceGeometry
from repro.sidecar import OBS_SLOT, QOS_SLOT, init_sidecar_slots
from repro.sim.core import Simulator
from repro.sim.resources import Resource, Store

ChunkKey = Tuple[int, int, int]
PuKey = Tuple[int, int]


@dataclass
class _FlushJob:
    epoch: int
    chunk: Chunk
    chip: FlashChip
    first_sector: int
    sectors: int
    granted: int  # cache credits to release once programmed
    queued_at: float = 0.0  # admission time, for obs flush-queue-wait


@dataclass
class ControllerStats:
    sectors_written: int = 0
    sectors_read: int = 0
    sectors_read_from_cache: int = 0
    chunk_resets: int = 0
    program_failures: int = 0
    read_failures: int = 0


class Controller:
    """Schedules chunk-granular operations onto channels and chips."""

    def __init__(self, sim: Simulator, geometry: DeviceGeometry,
                 chips: Dict[PuKey, FlashChip],
                 chunks: Dict[ChunkKey, Chunk],
                 notify: Callable[[Ppa, str, str], None],
                 write_back: bool = True,
                 cache_sectors: Optional[int] = None):
        self.sim = sim
        self.geometry = geometry
        self.chips = chips
        self.chunks = chunks
        self.notify = notify
        self.write_back = write_back
        # Default cache: 64 write units per PU, a controller-DRAM-sized
        # staging area (tunable; ablation bench sweeps it).
        if cache_sectors is None:
            cache_sectors = 64 * geometry.ws_min * geometry.total_pus
        self.cache = WriteBackCache(sim, cache_sectors) if write_back else None
        self.channels = [Resource(sim, name=f"channel{g}")
                         for g in range(geometry.num_groups)]
        self.chip_locks: Dict[PuKey, Resource] = {
            key: Resource(sim, name=f"chip{key}") for key in chips}
        # Per-chunk dispatch context.  Every run resolves chunk -> chip /
        # chip lock / channel; one identity-keyed lookup replaces the
        # attribute chain and three dict/list probes on the hot path.
        self._ctx: Dict[Chunk, Tuple[FlashChip, Resource, Resource, PuKey]] = {}
        for (group, pu, __), chunk in chunks.items():
            pu_key = (group, pu)
            self._ctx[chunk] = (chips[pu_key], self.chip_locks[pu_key],
                                self.channels[group], pu_key)
        self.stats = ControllerStats()
        # Sidecars (repro.sidecar): None unless attached.  With an obs hub
        # every instrumented path below records spans; with a qos scheduler
        # channel grants route through its gate (weighted DRR + read
        # priority) instead of the Resources' FIFO order, and chip-lock
        # priorities favor reads over erases.
        init_sidecar_slots(self, OBS_SLOT, QOS_SLOT)
        self._epoch = 0
        self._pending_flush = 0
        self._idle_waiters: List[object] = []
        self._flush_queues: Dict[PuKey, Store] = {}
        if write_back:
            for key in chips:
                queue = Store(sim, name=f"flushq{key}")
                self._flush_queues[key] = queue
                sim.spawn(self._flusher(key, queue), name=f"flusher{key}")

    # -- epochs / crash ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def crash_volatile(self) -> None:
        """Drop cache contents and orphan all in-flight work (power loss /
        controller kill).  Chunks roll back to their flushed pointers."""
        self._epoch += 1
        if self.cache is not None:
            self.cache.drop_all()
        self._pending_flush = 0
        self._wake_idle_waiters()
        for chunk in self.chunks.values():
            chunk.rollback_unflushed()
            # A chip advances its block's append point when the program is
            # *issued*, before the media time elapses; a cut mid-program
            # therefore leaves the block ahead of the rolled-back chunk.
            # Resync, or post-recovery programs at the chunk write pointer
            # would overflow the phantom sectors.
            if chunk.state is ChunkState.OFFLINE:
                continue
            chip = self._ctx[chunk][0]
            block = chip.blocks[chunk.address.chunk]
            if block.state is BlockState.BAD:
                continue
            wp = chunk.write_pointer
            block.sectors_programmed = wp
            block.state = (BlockState.FREE if wp == 0
                           else BlockState.FULL if wp == chunk.capacity
                           else BlockState.OPEN)

    # -- write path ---------------------------------------------------------------

    def write_run(self, chunk: Chunk, first_sector: int, sectors: int,
                  fua: bool = False, span=None, tenant=None):
        """Process generator: timing for a chunk-sequential write already
        admitted into *chunk* (data and write pointer updated by the device
        before this runs).  ``fua`` forces write-through.  *span* is the
        obs parent (the device command span) when tracing is attached;
        *tenant* is the originating :class:`~repro.qos.TenantContext` (or
        None for infrastructure I/O)."""
        epoch = self._epoch
        chip, __, channel, key = self._ctx[chunk]
        num_bytes = sectors * self.geometry.sector_size
        obs = self.obs
        qos = self.qos

        if qos is not None and not qos.try_channel_acquire(tenant, key[0]):
            # Throttle + scheduler gate; once this returns, the gate
            # guarantees the channel Resource below is free.
            yield from qos.channel_acquire_proc(tenant, "write", key[0],
                                                num_bytes)
        if not channel.try_acquire():
            if obs is not None:
                wait = obs.begin("ocssd", "channel.wait", span)
                started = self.sim.now
                yield channel.request()
                obs.end(wait)
                obs.metrics.histogram("ocssd.channel.wait_s").record(
                    self.sim.now - started)
            else:
                yield channel.request()
        try:
            if obs is not None:
                xfer = obs.begin("ocssd", "xfer", span)
                yield self.sim.timeout(chip.timing.transfer_time(num_bytes))
                obs.end(xfer, bytes=num_bytes)
            else:
                yield self.sim.timeout(chip.timing.transfer_time(num_bytes))
        finally:
            channel.release()
            if qos is not None:
                qos.channel_release(key[0])
        if epoch != self._epoch:
            return False

        if self.cache is not None and not fua:
            granted = self.cache.try_reserve(sectors)
            if granted is None:
                if obs is not None:
                    wait = obs.begin("ocssd", "cache.wait", span)
                    started = self.sim.now
                    reservation = self.cache.reserve(sectors)
                    yield reservation
                    obs.end(wait)
                    obs.metrics.histogram("ocssd.cache.wait_s").record(
                        self.sim.now - started)
                else:
                    reservation = self.cache.reserve(sectors)
                    yield reservation
                if epoch != self._epoch:
                    return False
                granted = reservation.value
            self._pending_flush += 1
            self._flush_queues[key].put(_FlushJob(
                epoch=epoch, chunk=chunk, chip=chip,
                first_sector=first_sector, sectors=sectors,
                granted=granted, queued_at=self.sim.now))
            # Write-back: the command completes here; the flusher programs
            # the data and reports failures asynchronously (§2.2).
            self.stats.sectors_written += sectors
            if obs is not None:
                obs.metrics.counter("ocssd.write.sectors").increment(sectors)
            return True

        # Write-through (no cache, or FUA).  A FUA write behind cached
        # writes to the same chunk must not program out of order: wait for
        # the earlier sectors to flush first.
        while chunk.flushed_pointer < first_sector:
            yield from self.drain()
            if epoch != self._epoch:
                return False
        ok = yield from self._program(chunk, chip, first_sector, sectors,
                                      epoch, priority=-1 if fua else 0,
                                      span=span)
        if ok:
            self.stats.sectors_written += sectors
            if obs is not None:
                obs.metrics.counter("ocssd.write.sectors").increment(sectors)
        return ok

    def _flusher(self, key: PuKey, queue: Store):
        """Background process draining one PU's flush queue in FIFO order."""
        while True:
            job: _FlushJob = yield queue.get()
            if job.epoch != self._epoch:
                continue
            obs = self.obs
            if obs is not None:
                # The originating write completed at cache admission, so the
                # background program is a *detached* root span; the queue
                # wait is a metric, not a span (no parent to nest under).
                obs.metrics.histogram("ocssd.flushq.wait_s").record(
                    self.sim.now - job.queued_at)
                root = obs.begin("ocssd", "flush.program")
                yield from self._program(job.chunk, job.chip,
                                         job.first_sector, job.sectors,
                                         job.epoch, span=root)
                obs.end(root, sectors=job.sectors)
            else:
                yield from self._program(job.chunk, job.chip,
                                         job.first_sector, job.sectors,
                                         job.epoch)
            if job.epoch == self._epoch:
                self.cache.release(job.granted)
                self._pending_flush -= 1
                if self._pending_flush == 0:
                    self._wake_idle_waiters()

    def _program(self, chunk: Chunk, chip: FlashChip, first_sector: int,
                 sectors: int, epoch: int, priority: int = 0, span=None):
        """Program one sequential run, write unit by write unit.

        The chip lock is released between units: flash programs one
        (multi-plane, paired-page) group at a time, so other operations on
        the chip — reads, a FUA metadata write — interleave at write-unit
        granularity instead of stalling for a whole multi-megabyte run.
        Returns success.
        """
        lock = self._ctx[chunk][1]
        ws_min = self.geometry.ws_min
        obs = self.obs
        done = 0
        while done < sectors:
            unit = min(ws_min, sectors - done)
            if not lock.try_acquire():
                if obs is not None:
                    wait = obs.begin("ocssd", "chip.wait", span)
                    started = self.sim.now
                    yield lock.request(priority)
                    obs.end(wait)
                    obs.metrics.histogram("ocssd.chip.wait_s").record(
                        self.sim.now - started)
                else:
                    yield lock.request(priority)
            try:
                if epoch != self._epoch:
                    return False
                media = (obs.begin("nand", "program", span)
                         if obs is not None else None)
                try:
                    elapsed = chip.program(chunk.address.chunk, unit)
                except MediaError as exc:
                    if obs is not None:
                        obs.end(media, error=str(exc))
                        obs.error("ocssd", "program-failed", str(exc))
                    self.stats.program_failures += 1
                    chunk.retire()
                    self.notify(chunk.address, "write-failed", str(exc))
                    return False
                yield self.sim.timeout(elapsed)
                if media is not None:
                    obs.end(media, sectors=unit)
                done += unit
                if epoch == self._epoch:
                    chunk.mark_flushed(first_sector + done)
            finally:
                lock.release()
        return True

    # -- read path -----------------------------------------------------------------

    def read_run(self, chunk: Chunk, first_sector: int, sectors: int,
                 span=None, tenant=None):
        """Process generator: timing for a chunk-contiguous read.

        Sectors above the chunk's flushed pointer are served from controller
        DRAM (no chip access); the rest require a media sense followed by a
        channel transfer.  Returns the payload list, or raises
        :class:`MediaError` on an uncorrectable read.
        """
        epoch = self._epoch
        chip, lock, channel, key = self._ctx[chunk]
        payloads = chunk.read(first_sector, sectors)
        obs = self.obs
        qos = self.qos

        media_sectors = max(0, min(chunk.flushed_pointer,
                                   first_sector + sectors) - first_sector)
        cached_sectors = sectors - media_sectors
        self.stats.sectors_read += sectors
        self.stats.sectors_read_from_cache += cached_sectors
        if obs is not None:
            obs.metrics.counter("ocssd.read.sectors").increment(sectors)
            obs.metrics.counter("ocssd.read.sectors_from_cache").increment(
                cached_sectors)

        if media_sectors > 0:
            if not lock.try_acquire():
                # Under qos, host reads jump the chip queue (ahead of
                # programs and erases) and count toward the foreground
                # backlog that throttles background GC/compaction.
                priority = 0 if qos is None else qos.config.read_priority
                if qos is not None:
                    qos.note_read_blocked(1)
                try:
                    if obs is not None:
                        wait = obs.begin("ocssd", "chip.wait", span)
                        started = self.sim.now
                        yield lock.request(priority)
                        obs.end(wait)
                        obs.metrics.histogram("ocssd.chip.wait_s").record(
                            self.sim.now - started)
                    else:
                        yield lock.request(priority)
                finally:
                    if qos is not None:
                        qos.note_read_blocked(-1)
            try:
                if epoch != self._epoch:
                    return payloads
                media = (obs.begin("nand", "read", span)
                         if obs is not None else None)
                try:
                    elapsed = chip.read(chunk.address.chunk, first_sector,
                                        media_sectors)
                except MediaError as exc:
                    if obs is not None:
                        obs.end(media, error=str(exc))
                        obs.error("ocssd", "read-error", str(exc))
                    self.stats.read_failures += 1
                    self.notify(chunk.address, "read-error", str(exc))
                    raise
                yield self.sim.timeout(elapsed)
                if media is not None:
                    obs.end(media, sectors=media_sectors)
            finally:
                lock.release()

        num_bytes = sectors * self.geometry.sector_size
        if qos is not None and not qos.try_channel_acquire(tenant, key[0]):
            yield from qos.channel_acquire_proc(tenant, "read", key[0],
                                                num_bytes)
        if not channel.try_acquire():
            if obs is not None:
                wait = obs.begin("ocssd", "channel.wait", span)
                started = self.sim.now
                yield channel.request()
                obs.end(wait)
                obs.metrics.histogram("ocssd.channel.wait_s").record(
                    self.sim.now - started)
            else:
                yield channel.request()
        try:
            if obs is not None:
                xfer = obs.begin("ocssd", "xfer", span)
                yield self.sim.timeout(chip.timing.transfer_time(num_bytes))
                obs.end(xfer, bytes=num_bytes)
            else:
                yield self.sim.timeout(chip.timing.transfer_time(num_bytes))
        finally:
            channel.release()
            if qos is not None:
                qos.channel_release(key[0])
        return payloads

    # -- reset path -----------------------------------------------------------------

    def reset_chunk(self, chunk: Chunk, span=None, tenant=None):
        """Process generator: erase the chunk's block set.

        Returns True on success; on an erase failure the chunk is retired,
        a notification is logged, and False is returned.
        """
        epoch = self._epoch
        chip, lock, __, __ = self._ctx[chunk]
        obs = self.obs
        qos = self.qos
        if not lock.try_acquire():
            # A 3.5 ms erase is the worst thing a read can queue behind;
            # under qos it waits at the lowest chip priority.
            priority = 0 if qos is None else qos.config.erase_priority
            if obs is not None:
                wait = obs.begin("ocssd", "chip.wait", span)
                started = self.sim.now
                yield lock.request(priority)
                obs.end(wait)
                obs.metrics.histogram("ocssd.chip.wait_s").record(
                    self.sim.now - started)
            else:
                yield lock.request(priority)
        try:
            if epoch != self._epoch:
                return False
            media = (obs.begin("nand", "erase", span)
                     if obs is not None else None)
            try:
                elapsed = chip.erase(chunk.address.chunk)
            except MediaError as exc:
                if obs is not None:
                    obs.end(media, error=str(exc))
                    obs.error("ocssd", "reset-failed", str(exc))
                chunk.retire()
                self.notify(chunk.address, "reset-failed", str(exc))
                return False
            yield self.sim.timeout(elapsed)
            if media is not None:
                obs.end(media)
            if epoch == self._epoch:
                chunk.reset()
            self.stats.chunk_resets += 1
            return True
        finally:
            lock.release()

    # -- flush barrier ----------------------------------------------------------------

    def drain(self):
        """Process generator: wait until every cached write has reached NAND
        (the device-level flush / sync barrier)."""
        while self._pending_flush > 0:
            waiter = self.sim.event()
            self._idle_waiters.append(waiter)
            yield waiter
        return True

    def _wake_idle_waiters(self) -> None:
        waiters, self._idle_waiters = self._idle_waiters, []
        for waiter in waiters:
            waiter.succeed()
