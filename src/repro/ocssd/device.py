"""The Open-Channel SSD facade: what the host (or OX media manager) talks to.

Two ways to drive the device:

* **Inside the simulation** — ``yield from device.submit(cmd)`` from a
  process; returns a :class:`Completion` with timing.
* **Synchronously** — ``device.execute(cmd)`` (or the ``write``/``read``/
  ``reset``/``copy`` helpers) runs the simulator until the command
  completes.  Convenient for functional code and tests; each call advances
  the shared simulated clock.

Crash semantics: :meth:`crash_volatile` models a power/controller failure —
the write-back cache is lost, chunks roll back to their flushed pointers,
and in-flight commands are orphaned.  :meth:`flush` is the durability
barrier that bounds what a crash can lose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GeometryError, MediaError, ReproError
from repro.nand.chip import FlashChip
from repro.nand.errors import WearModel
from repro.nand.timing import NandTiming, timing_for
from repro.ocssd.address import Ppa
from repro.ocssd.chunk import Chunk, ChunkState
from repro.ocssd.commands import (
    ChunkReset,
    Completion,
    CommandStatus,
    VectorCopy,
    VectorRead,
    VectorWrite,
)
from repro.ocssd.controller import Controller
from repro.ocssd.geometry import DeviceGeometry
from repro.sidecar import (
    FAULTS_SLOT, OBS_SLOT, QOS_SLOT, TRACE_SLOT, init_sidecar_slots)
from repro.sim.core import Simulator


@dataclass(frozen=True)
class ChunkNotification:
    """Asynchronous error/advisory report from the device (§2.2)."""

    ppa: Ppa
    kind: str       # "write-failed" | "read-error" | "reset-failed" | "wear-high"
    detail: str
    time: float


@dataclass(frozen=True)
class ChunkDescriptor:
    """Chunk metadata as returned by the chunk-information admin command."""

    ppa: Ppa
    state: ChunkState
    write_pointer: int
    capacity: int
    wear_index: int
    #: Sectors durably on NAND; the [flushed_pointer, write_pointer)
    #: window is admitted but still volatile (write-back cache).
    flushed_pointer: int = 0


_Run = Tuple[Chunk, int, int, int]  # (chunk, first_sector, count, offset)

# Completion statuses bound once: one is attached per submitted command.
_OK = CommandStatus.OK
# Root-span / latency-histogram names per command type (repro.obs).
_COMMAND_KIND = {VectorRead: "read", VectorWrite: "write",
                 ChunkReset: "reset", VectorCopy: "copy"}
_WRITE_FAILED = CommandStatus.WRITE_FAILED
_READ_FAILED = CommandStatus.READ_FAILED
_RESET_FAILED = CommandStatus.RESET_FAILED
_INVALID = CommandStatus.INVALID
_POWER_FAIL = CommandStatus.POWER_FAIL


class OpenChannelSSD:
    """A simulated Open-Channel SSD exposing the OCSSD 2.0 command set."""

    def __init__(self, sim: Optional[Simulator] = None,
                 geometry: Optional[DeviceGeometry] = None,
                 timing: Optional[NandTiming] = None,
                 write_back: bool = True,
                 cache_sectors: Optional[int] = None,
                 wear_seed: int = 0,
                 grown_fail_prob: float = 0.0,
                 factory_bad: Optional[Dict[Tuple[int, int], List[int]]] = None):
        self.sim = sim or Simulator()
        self.geometry = geometry or DeviceGeometry()
        flash = self.geometry.flash
        timing = timing or timing_for(flash.cell)
        factory_bad = factory_bad or {}

        self.chips: Dict[Tuple[int, int], FlashChip] = {}
        self.chunks: Dict[Tuple[int, int, int], Chunk] = {}
        for index, (group, pu) in enumerate(self.geometry.iter_pus()):
            wear = WearModel(cell=flash.cell, seed=wear_seed + index,
                             grown_fail_prob=grown_fail_prob)
            chip = FlashChip(geometry=flash, timing=timing, wear=wear,
                             factory_bad=factory_bad.get((group, pu)))
            self.chips[(group, pu)] = chip
            for chunk_index in range(self.geometry.chunks_per_pu):
                ppa = Ppa(group, pu, chunk_index, 0)
                chunk = Chunk(ppa, capacity=self.geometry.sectors_per_chunk,
                              ws_min=self.geometry.ws_min,
                              sector_size=self.geometry.sector_size)
                if chunk_index in (factory_bad.get((group, pu)) or []):
                    chunk.retire()
                self.chunks[(group, pu, chunk_index)] = chunk

        self.notifications: List[ChunkNotification] = []
        # Sidecars (repro.sidecar): every slot is None unless the matching
        # subsystem attached, so each disabled check costs one attribute
        # load.  faults gates submit(); obs opens one root span per
        # command; qos carries tenant identity into the scheduler; trace
        # records workload-boundary ops (its hooks live in the host
        # layers and read sim.trace at call time).
        init_sidecar_slots(self, FAULTS_SLOT, OBS_SLOT, QOS_SLOT,
                           TRACE_SLOT)
        self.controller = Controller(
            self.sim, self.geometry, self.chips, self.chunks,
            notify=self._notify, write_back=write_back,
            cache_sectors=cache_sectors)

    # -- admin commands -----------------------------------------------------------

    def report_geometry(self) -> DeviceGeometry:
        """The geometry-discovery admin command."""
        return self.geometry

    def chunk_info(self, ppa: Ppa) -> ChunkDescriptor:
        """Chunk metadata for the chunk containing *ppa*."""
        chunk = self._chunk(ppa)
        return ChunkDescriptor(ppa=chunk.address, state=chunk.state,
                               write_pointer=chunk.write_pointer,
                               capacity=chunk.capacity,
                               wear_index=chunk.wear_index,
                               flushed_pointer=chunk.flushed_pointer)

    def iter_chunk_info(self) -> Iterator[ChunkDescriptor]:
        """Walk every chunk descriptor in address order (recovery scans).

        Iterates the chunk table directly — it is built in address order —
        instead of re-deriving and re-validating one Ppa per chunk.
        """
        for chunk in self.chunks.values():
            yield ChunkDescriptor(ppa=chunk.address, state=chunk.state,
                                  write_pointer=chunk.write_pointer,
                                  capacity=chunk.capacity,
                                  wear_index=chunk.wear_index,
                                  flushed_pointer=chunk.flushed_pointer)

    def pop_notifications(self) -> List[ChunkNotification]:
        """Drain the asynchronous notification log."""
        drained, self.notifications = self.notifications, []
        return drained

    # -- command submission (in-simulation generator API) -----------------------------

    def submit(self, command, parent=None):
        """Process generator executing *command*; returns a Completion.

        *parent* is the obs span of the caller (an FTL operation, say) so
        the device span nests under it when tracing is attached."""
        submitted = self.sim.now
        faults = self.faults
        if faults is not None and not faults.powered:
            completion = Completion(status=_POWER_FAIL,
                                    error="device is powered off")
            completion.submitted_at = submitted
            completion.completed_at = self.sim.now
            return completion
        obs = self.obs
        span = None
        if obs is not None:
            kind = _COMMAND_KIND.get(type(command), "invalid")
            span = obs.begin("ocssd", kind, parent)
        try:
            # Reads outnumber every other command; test them first.
            if isinstance(command, VectorRead):
                completion = yield from self._do_read(command, span)
            elif isinstance(command, VectorWrite):
                completion = yield from self._do_write(command, span)
            elif isinstance(command, ChunkReset):
                completion = yield from self._do_reset(command, span)
            elif isinstance(command, VectorCopy):
                completion = yield from self._do_copy(command, span)
            else:
                raise ReproError(f"unknown command {command!r}")
        except ReproError as exc:
            completion = Completion(status=_INVALID,
                                    error=str(exc))
            if obs is not None:
                obs.error("ocssd", "invalid-command", str(exc))
        if obs is not None:
            obs.end(span, status=completion.status.name)
            latency = self.sim.now - submitted
            obs.metrics.histogram(f"ocssd.{kind}.latency_s").record(latency)
            tenant = getattr(command, "tenant", None)
            if tenant is not None:
                # Per-tenant end-to-end latency, recorded whether or not a
                # scheduler is attached — the shared-FIFO baseline in the
                # isolation bench reads its p99 from this histogram too.
                obs.metrics.histogram(
                    f"qos.tenant.{tenant.name}.{kind}.latency_s").record(
                    latency)
        completion.submitted_at = submitted
        completion.completed_at = self.sim.now
        return completion

    # -- synchronous convenience API ---------------------------------------------------

    def execute(self, command) -> Completion:
        """Run *command* to completion, advancing the simulated clock."""
        return self.sim.run_until(self.sim.spawn(self.submit(command)))

    def write(self, ppas: List[Ppa], data: List[Optional[bytes]],
              oob: Optional[List[object]] = None,
              fua: bool = False) -> Completion:
        return self.execute(VectorWrite(ppas=ppas, data=data, oob=oob,
                                        fua=fua))

    def read(self, ppas: List[Ppa]) -> Completion:
        return self.execute(VectorRead(ppas=ppas))

    def reset(self, ppa: Ppa) -> Completion:
        return self.execute(ChunkReset(ppa=ppa))

    def copy(self, src: List[Ppa], dst: List[Ppa],
             dst_oob: Optional[List[object]] = None) -> Completion:
        return self.execute(VectorCopy(src=src, dst=dst, dst_oob=dst_oob))

    def flush(self) -> None:
        """Synchronously drain the write-back cache to NAND."""
        self.sim.run_until(self.sim.spawn(self.flush_proc()))

    def flush_proc(self):
        """Process generator: the durability barrier."""
        yield from self.controller.drain()

    def crash_volatile(self) -> None:
        """Power-fail / controller-kill: lose everything volatile."""
        self.controller.crash_volatile()

    def attach_faults(self, injector) -> None:
        """Wire a :class:`repro.faults.FaultInjector` into this device and
        its chips (the reverse of leaving ``faults`` as ``None``)."""
        injector.attach(self)

    # -- internals ------------------------------------------------------------------

    def _notify(self, ppa: Ppa, kind: str, detail: str) -> None:
        self.notifications.append(ChunkNotification(
            ppa=ppa, kind=kind, detail=detail, time=self.sim.now))

    def _chunk(self, ppa: Ppa) -> Chunk:
        self.geometry.check(ppa)
        return self.chunks[ppa.chunk_key()]

    def _split_runs(self, ppas: List[Ppa]) -> List[_Run]:
        """Group addresses into maximal chunk-contiguous runs, remembering
        each run's offset into the original vector."""
        runs: List[_Run] = []
        check = self.geometry.check
        chunks = self.chunks
        total = len(ppas)
        start = 0
        while start < total:
            first = ppas[start]
            check(first)
            key = first[:3]
            chunk = chunks[key]
            sector = first[3]
            end = start + 1
            while end < total:
                nxt = ppas[end]
                if nxt[3] != sector + (end - start) or nxt[:3] != key:
                    break
                end += 1
            runs.append((chunk, sector, end - start, start))
            start = end
        return runs

    def _do_write(self, command: VectorWrite, span=None):
        ppas = command.ppas
        whole = command.whole
        first = ppas[0]
        last = ppas[-1]
        if (whole is not None and first[:3] == last[:3]
                and last[3] - first[3] == len(ppas) - 1):
            # A staged whole-unit write is one chunk-contiguous run by
            # construction; skip the splitter's per-address scan.
            self.geometry.check(first)
            runs = [(self.chunks[first[:3]], first[3], len(ppas), 0)]
        else:
            runs = self._split_runs(ppas)
            whole = whole if len(runs) == 1 else None
        # Admission is synchronous and in vector order: write pointers
        # advance and payloads become readable before the timed transfer —
        # the semantics of a controller that buffers on arrival.  A
        # validation error mid-vector leaves earlier runs admitted: the
        # paper is explicit that vector writes are *not* atomic (§4.3).
        for chunk, first_sector, count, offset in runs:
            payloads = command.data[offset:offset + count]
            oobs = (command.oob[offset:offset + count]
                    if command.oob is not None else None)
            chunk.admit_write(first_sector, payloads, oobs, whole=whole)
        tenant = command.tenant
        if len(runs) == 1:
            # Single-run vectors dominate; drive the controller inline
            # instead of paying a process spawn + join for no parallelism.
            chunk, first_sector, count, __ = runs[0]
            results = [(yield from self.controller.write_run(
                chunk, first_sector, count, fua=command.fua, span=span,
                tenant=tenant))]
        else:
            procs = [self.sim.spawn(
                         self.controller.write_run(chunk, first_sector, count,
                                                   fua=command.fua, span=span,
                                                   tenant=tenant),
                         name=f"write{chunk.address.chunk_key()}")
                     for chunk, first_sector, count, __ in runs]
            results = yield self.sim.all_of(procs)
        if all(results):
            return Completion(status=_OK)
        return Completion(status=_WRITE_FAILED,
                          error="program failure (see notifications)")

    def read_single_proc(self, ppa: Ppa, tenant=None):
        """Process generator: the one-sector read fast lane.

        Semantically ``submit(VectorRead(ppas=[ppa], tenant=...))`` for a
        powered device, minus the command/Completion objects and the
        dispatch frames — random point reads dominate every read-heavy
        workload, so the FTL drives this lane when no tracing is
        attached.  Returns the one-element payload list, or ``None`` on
        any failure (power loss, uncorrectable read) — callers retry or
        surface the error exactly as they would a failed Completion.
        """
        faults = self.faults
        if faults is not None and not faults.powered:
            return None
        self.geometry.check(ppa)
        try:
            return (yield from self.controller.read_run(
                self.chunks[ppa[:3]], ppa[3], 1, tenant=tenant))
        except MediaError:
            return None

    def _do_read(self, command: VectorRead, span=None):
        ppas = command.ppas
        if len(ppas) == 1:
            # Point reads dominate random workloads: skip the run
            # splitter and the result-scatter lists entirely.
            ppa = ppas[0]
            self.geometry.check(ppa)
            chunk = self.chunks[ppa[:3]]
            sector = ppa[3]
            try:
                payloads = yield from self.controller.read_run(
                    chunk, sector, 1, span=span, tenant=command.tenant)
            except MediaError as exc:
                return Completion(status=_READ_FAILED, data=[None],
                                  oob=[None], error=str(exc))
            return Completion(status=_OK, data=payloads,
                              oob=chunk.read_oob(sector, 1))
        runs = self._split_runs(ppas)
        data: List[Optional[bytes]] = [None] * len(command.ppas)
        oob: List[Optional[object]] = [None] * len(command.ppas)
        failures: List[str] = []

        def one_run(chunk: Chunk, first_sector: int, count: int, offset: int):
            try:
                payloads = yield from self.controller.read_run(
                    chunk, first_sector, count, span=span,
                    tenant=command.tenant)
            except MediaError as exc:
                failures.append(str(exc))
                return
            data[offset:offset + count] = payloads
            oob[offset:offset + count] = chunk.read_oob(first_sector, count)

        if len(runs) == 1:
            # Single-run vectors dominate; no parallelism to gain from a
            # process spawn + join, so run the timing inline.
            yield from one_run(*runs[0])
        else:
            procs = [self.sim.spawn(one_run(*run), name="read-run")
                     for run in runs]
            yield self.sim.all_of(procs)
        if failures:
            return Completion(status=_READ_FAILED, data=data,
                              oob=oob, error="; ".join(failures))
        return Completion(status=_OK, data=data, oob=oob)

    def _do_reset(self, command: ChunkReset, span=None):
        chunk = self._chunk(command.ppa)
        ok = yield from self.controller.reset_chunk(chunk, span=span,
                                                    tenant=command.tenant)
        if ok:
            return Completion(status=_OK)
        return Completion(status=_RESET_FAILED,
                          error=f"reset failed for {chunk.address}")

    def _do_copy(self, command: VectorCopy, span=None):
        """Device-internal copy: data never crosses the host interface.

        Payloads move synchronously (chunk state to chunk state); the timed
        part is the source reads plus the destination programs.
        """
        src_runs = self._split_runs(command.src)
        payloads: List[Optional[bytes]] = [None] * len(command.src)
        oobs: List[Optional[object]] = [None] * len(command.src)
        for chunk, first_sector, count, offset in src_runs:
            payloads[offset:offset + count] = chunk.read(first_sector, count)
            oobs[offset:offset + count] = chunk.read_oob(first_sector, count)
        if command.dst_oob is not None:
            oobs = list(command.dst_oob)

        dst_runs = self._split_runs(command.dst)
        for chunk, first_sector, count, offset in dst_runs:
            chunk.admit_write(first_sector,
                              payloads[offset:offset + count],
                              oobs[offset:offset + count])

        def read_timing(chunk: Chunk, first_sector: int, count: int,
                        offset: int):
            try:
                yield from self.controller.read_run(chunk, first_sector,
                                                    count, span=span,
                                                    tenant=command.tenant)
            except MediaError:
                # Data already staged; a source read error during copy is
                # surfaced through the notification log only.
                return

        procs = [self.sim.spawn(read_timing(*run), name="copy-read")
                 for run in src_runs]
        procs += [self.sim.spawn(
                      self.controller.write_run(chunk, first_sector, count,
                                                span=span,
                                                tenant=command.tenant),
                      name="copy-write")
                  for chunk, first_sector, count, __ in dst_runs]
        yield self.sim.all_of(procs)
        return Completion(status=_OK)
