"""The chunk state machine and per-chunk data store.

A chunk is the OCSSD unit of sequential write (§2.2): logical blocks are
written strictly at the write pointer, and the chunk must be reset before
it can be rewritten.  States follow the OCSSD 2.0 chunk descriptor:

* ``FREE``    — reset, write pointer at 0;
* ``OPEN``    — partially written;
* ``CLOSED``  — fully written;
* ``OFFLINE`` — retired after a media failure.

The chunk additionally distinguishes the *admitted* write pointer (sectors
accepted by the controller, possibly still in the write-back cache) from
the *flushed* write pointer (sectors actually programmed to NAND).  A
power/controller crash rolls the chunk back to its flushed pointer, which
is what makes the FTL's write-ahead-log durability guarantees testable.

Payloads live in one lazily-allocated ``bytearray`` per chunk; writes
copy into it once and reads hand out :class:`memoryview` slices instead
of allocating a bytes object per sector.  A validity bytearray tells a
never-written (``None``) sector apart from written data, and a per-sector
length array preserves exact short-payload round-trips (the simulated
sector keeps its trailing undefined bytes out of sight, like a real
drive whose host only DMAs the transferred length).  Sequential-write
discipline makes the aliasing safe: a sector below the write pointer is
never overwritten, and ``reset`` drops the buffer rather than zeroing
it, so outstanding views keep reading the data that existed when they
were created.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Union

from repro.errors import ChunkStateError, WritePointerError, WriteUnitError
from repro.ocssd.address import Ppa

import enum

Payload = Union[bytes, bytearray, memoryview, None]


def pad_sector(payload: Payload, sector_size: int) -> Union[bytes,
                                                            memoryview]:
    """Pad one read payload (bytes, memoryview or None) to *sector_size*.

    The full-sector case — the overwhelmingly common one — returns the
    payload untouched, so a chunk-store memoryview flows zero-copy into
    the caller's ``b"".join``.
    """
    if payload is None:
        return bytes(sector_size)
    if len(payload) == sector_size:
        return payload
    return bytes(payload).ljust(sector_size, b"\x00")


class ChunkState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"
    OFFLINE = "offline"


# Enum member access goes through a descriptor on every lookup; the chunk
# state checks sit on the per-sector read/write paths, so bind them once.
_FREE = ChunkState.FREE
_OPEN = ChunkState.OPEN
_CLOSED = ChunkState.CLOSED
_OFFLINE = ChunkState.OFFLINE


class Chunk:
    """State, write pointers and sector payloads of one chunk."""

    __slots__ = ("address", "capacity", "ws_min", "sector_size", "state",
                 "write_pointer", "flushed_pointer", "wear_index",
                 "_buffer", "_lengths", "_valid", "_oob")

    def __init__(self, address: Ppa, capacity: int, ws_min: int,
                 sector_size: int = 4096):
        self.address = address.chunk_address()
        self.capacity = capacity
        self.ws_min = ws_min
        self.sector_size = sector_size
        self.state = _FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index = 0          # erase cycles seen by this chunk
        # Payload buffer and out-of-band metadata are allocated on first
        # write so a large device with mostly-untouched chunks stays cheap.
        # OOB mirrors real flash: per-sector metadata FTL recovery scans
        # read.
        self._buffer: Optional[bytearray] = None
        self._lengths: Optional[array] = None
        self._valid: Optional[bytearray] = None
        self._oob: Optional[List[Optional[object]]] = None

    # -- write path -----------------------------------------------------------

    def admit_write(self, sector: int, payloads: Sequence[Payload],
                    oobs: Optional[List[object]] = None) -> None:
        """Accept a sequential write of ``len(payloads)`` sectors at *sector*.

        Enforces the three §2.2 write rules: chunk must be writable, the
        write must land exactly on the write pointer, and its size must be a
        whole number of ``ws_min`` units.
        """
        count = len(payloads)
        if self.state is _OFFLINE:
            raise ChunkStateError(f"write to offline chunk {self.address}")
        if self.state is _CLOSED:
            raise ChunkStateError(f"write to closed chunk {self.address}")
        if sector != self.write_pointer:
            raise WritePointerError(
                f"write at sector {sector} of {self.address}, "
                f"write pointer is {self.write_pointer}")
        if count <= 0 or count % self.ws_min:
            raise WriteUnitError(
                f"write of {count} sectors violates ws_min={self.ws_min}")
        if self.write_pointer + count > self.capacity:
            raise WritePointerError(
                f"write of {count} sectors overflows chunk {self.address} "
                f"(wp={self.write_pointer}, capacity={self.capacity})")
        if oobs is not None and len(oobs) != count:
            raise WriteUnitError(
                f"write of {count} sectors with {len(oobs)} OOB entries")
        sector_size = self.sector_size
        for payload in payloads:
            if payload is not None and len(payload) > sector_size:
                raise WriteUnitError(
                    f"payload of {len(payload)} bytes exceeds the "
                    f"{sector_size}-byte sector of {self.address}")
        self._ensure_storage()
        buffer = self._buffer
        lengths = self._lengths
        valid = self._valid
        offset = sector * sector_size
        for index, payload in enumerate(payloads):
            if payload is not None:
                length = len(payload)
                at = offset + index * sector_size
                buffer[at:at + length] = payload
                lengths[sector + index] = length
                valid[sector + index] = 1
        if oobs is not None:
            self._oob[sector:sector + count] = oobs
        self.write_pointer += count
        self.state = (_CLOSED
                      if self.write_pointer == self.capacity
                      else _OPEN)

    def mark_flushed(self, up_to: int) -> None:
        """Record that sectors below *up_to* have reached NAND."""
        if up_to < self.flushed_pointer or up_to > self.write_pointer:
            raise WritePointerError(
                f"flush pointer {up_to} outside "
                f"[{self.flushed_pointer}, {self.write_pointer}] "
                f"of {self.address}")
        self.flushed_pointer = up_to

    def _ensure_storage(self) -> None:
        if self._buffer is None:
            self._buffer = bytearray(self.capacity * self.sector_size)
            self._lengths = array("H", bytes(2 * self.capacity))
            self._valid = bytearray(self.capacity)
            self._oob = [None] * self.capacity

    # -- read path -------------------------------------------------------------

    def read(self, sector: int, count: int = 1) -> List[Payload]:
        """Return the payloads of *count* sectors starting at *sector*.

        Payloads come back as memoryviews into the chunk buffer (``None``
        for sectors written without data); callers that need sector-sized
        blobs pad them with :func:`pad_sector`.

        Reading at or above the write pointer is an error (undefined data on
        real flash).
        """
        if self.state is _OFFLINE:
            raise ChunkStateError(f"read from offline chunk {self.address}")
        if count <= 0:
            raise WritePointerError(f"read of {count} sectors")
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"read of sectors [{sector}, {sector + count}) above write "
                f"pointer {self.write_pointer} in {self.address}")
        view = memoryview(self._buffer)
        valid = self._valid
        lengths = self._lengths
        sector_size = self.sector_size
        result: List[Payload] = []
        for index in range(sector, sector + count):
            if valid[index]:
                at = index * sector_size
                result.append(view[at:at + lengths[index]])
            else:
                result.append(None)
        return result

    def read_oob(self, sector: int, count: int = 1) -> List[Optional[object]]:
        """Return the out-of-band metadata of *count* sectors at *sector*."""
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"OOB read of sectors [{sector}, {sector + count}) above "
                f"write pointer {self.write_pointer} in {self.address}")
        return self._oob[sector:sector + count]

    # -- reset / failure --------------------------------------------------------

    def reset(self) -> None:
        """Erase the chunk: back to ``FREE`` with the pointer at 0."""
        if self.state is _OFFLINE:
            raise ChunkStateError(f"reset of offline chunk {self.address}")
        self.state = _FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index += 1
        self._buffer = None
        self._lengths = None
        self._valid = None
        self._oob = None

    def retire(self) -> None:
        """Take the chunk offline after an unrecoverable media failure."""
        self.state = _OFFLINE

    def rollback_unflushed(self) -> None:
        """Drop sectors admitted but never programmed (crash semantics)."""
        if self.state is _OFFLINE:
            return
        if self._valid is not None:
            for sector in range(self.flushed_pointer, self.write_pointer):
                self._valid[sector] = 0
                self._lengths[sector] = 0
                self._oob[sector] = None
        self.write_pointer = self.flushed_pointer
        if self.write_pointer == 0:
            self.state = _FREE
        elif self.write_pointer < self.capacity:
            self.state = _OPEN

    # -- inspection ---------------------------------------------------------------

    @property
    def is_writable(self) -> bool:
        return self.state in (_FREE, _OPEN)

    @property
    def sectors_free(self) -> int:
        return self.capacity - self.write_pointer

    def memory_bytes(self) -> int:
        """Approximate resident size of the payload store (perf metric)."""
        import sys
        if self._buffer is None:
            return 0
        return (sys.getsizeof(self._buffer) + sys.getsizeof(self._lengths) +
                sys.getsizeof(self._valid) + sys.getsizeof(self._oob))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Chunk {self.address} {self.state.value} "
                f"wp={self.write_pointer}/{self.capacity}>")
