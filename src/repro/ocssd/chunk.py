"""The chunk state machine and per-chunk data store.

A chunk is the OCSSD unit of sequential write (§2.2): logical blocks are
written strictly at the write pointer, and the chunk must be reset before
it can be rewritten.  States follow the OCSSD 2.0 chunk descriptor:

* ``FREE``    — reset, write pointer at 0;
* ``OPEN``    — partially written;
* ``CLOSED``  — fully written;
* ``OFFLINE`` — retired after a media failure.

The chunk additionally distinguishes the *admitted* write pointer (sectors
accepted by the controller, possibly still in the write-back cache) from
the *flushed* write pointer (sectors actually programmed to NAND).  A
power/controller crash rolls the chunk back to its flushed pointer, which
is what makes the FTL's write-ahead-log durability guarantees testable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ChunkStateError, WritePointerError, WriteUnitError
from repro.ocssd.address import Ppa

import enum


class ChunkState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"
    OFFLINE = "offline"


class Chunk:
    """State, write pointers and sector payloads of one chunk."""

    __slots__ = ("address", "capacity", "ws_min", "state", "write_pointer",
                 "flushed_pointer", "wear_index", "_data", "_oob")

    def __init__(self, address: Ppa, capacity: int, ws_min: int):
        self.address = address.chunk_address()
        self.capacity = capacity
        self.ws_min = ws_min
        self.state = ChunkState.FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index = 0          # erase cycles seen by this chunk
        # Payloads and out-of-band metadata are allocated on first write so
        # a large device with mostly-untouched chunks stays cheap.  OOB
        # mirrors real flash: per-sector metadata FTL recovery scans read.
        self._data: Optional[List[Optional[bytes]]] = None
        self._oob: Optional[List[Optional[object]]] = None

    # -- write path -----------------------------------------------------------

    def admit_write(self, sector: int, payloads: List[Optional[bytes]],
                    oobs: Optional[List[object]] = None) -> None:
        """Accept a sequential write of ``len(payloads)`` sectors at *sector*.

        Enforces the three §2.2 write rules: chunk must be writable, the
        write must land exactly on the write pointer, and its size must be a
        whole number of ``ws_min`` units.
        """
        count = len(payloads)
        if self.state is ChunkState.OFFLINE:
            raise ChunkStateError(f"write to offline chunk {self.address}")
        if self.state is ChunkState.CLOSED:
            raise ChunkStateError(f"write to closed chunk {self.address}")
        if sector != self.write_pointer:
            raise WritePointerError(
                f"write at sector {sector} of {self.address}, "
                f"write pointer is {self.write_pointer}")
        if count <= 0 or count % self.ws_min:
            raise WriteUnitError(
                f"write of {count} sectors violates ws_min={self.ws_min}")
        if self.write_pointer + count > self.capacity:
            raise WritePointerError(
                f"write of {count} sectors overflows chunk {self.address} "
                f"(wp={self.write_pointer}, capacity={self.capacity})")
        if oobs is not None and len(oobs) != count:
            raise WriteUnitError(
                f"write of {count} sectors with {len(oobs)} OOB entries")
        self._ensure_storage()
        self._data[sector:sector + count] = payloads
        if oobs is not None:
            self._oob[sector:sector + count] = oobs
        self.write_pointer += count
        self.state = (ChunkState.CLOSED
                      if self.write_pointer == self.capacity
                      else ChunkState.OPEN)

    def mark_flushed(self, up_to: int) -> None:
        """Record that sectors below *up_to* have reached NAND."""
        if up_to < self.flushed_pointer or up_to > self.write_pointer:
            raise WritePointerError(
                f"flush pointer {up_to} outside "
                f"[{self.flushed_pointer}, {self.write_pointer}] "
                f"of {self.address}")
        self.flushed_pointer = up_to

    def _ensure_storage(self) -> None:
        if self._data is None:
            self._data = [None] * self.capacity
            self._oob = [None] * self.capacity

    # -- read path -------------------------------------------------------------

    def read(self, sector: int, count: int = 1) -> List[Optional[bytes]]:
        """Return the payloads of *count* sectors starting at *sector*.

        Reading at or above the write pointer is an error (undefined data on
        real flash).
        """
        if self.state is ChunkState.OFFLINE:
            raise ChunkStateError(f"read from offline chunk {self.address}")
        if count <= 0:
            raise WritePointerError(f"read of {count} sectors")
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"read of sectors [{sector}, {sector + count}) above write "
                f"pointer {self.write_pointer} in {self.address}")
        return self._data[sector:sector + count]

    def read_oob(self, sector: int, count: int = 1) -> List[Optional[object]]:
        """Return the out-of-band metadata of *count* sectors at *sector*."""
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"OOB read of sectors [{sector}, {sector + count}) above "
                f"write pointer {self.write_pointer} in {self.address}")
        return self._oob[sector:sector + count]

    # -- reset / failure --------------------------------------------------------

    def reset(self) -> None:
        """Erase the chunk: back to ``FREE`` with the pointer at 0."""
        if self.state is ChunkState.OFFLINE:
            raise ChunkStateError(f"reset of offline chunk {self.address}")
        self.state = ChunkState.FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index += 1
        self._data = None
        self._oob = None

    def retire(self) -> None:
        """Take the chunk offline after an unrecoverable media failure."""
        self.state = ChunkState.OFFLINE

    def rollback_unflushed(self) -> None:
        """Drop sectors admitted but never programmed (crash semantics)."""
        if self.state is ChunkState.OFFLINE:
            return
        if self._data is not None:
            for sector in range(self.flushed_pointer, self.write_pointer):
                self._data[sector] = None
                self._oob[sector] = None
        self.write_pointer = self.flushed_pointer
        if self.write_pointer == 0:
            self.state = ChunkState.FREE
        elif self.write_pointer < self.capacity:
            self.state = ChunkState.OPEN

    # -- inspection ---------------------------------------------------------------

    @property
    def is_writable(self) -> bool:
        return self.state in (ChunkState.FREE, ChunkState.OPEN)

    @property
    def sectors_free(self) -> int:
        return self.capacity - self.write_pointer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Chunk {self.address} {self.state.value} "
                f"wp={self.write_pointer}/{self.capacity}>")
