"""The chunk state machine and per-chunk data store.

A chunk is the OCSSD unit of sequential write (§2.2): logical blocks are
written strictly at the write pointer, and the chunk must be reset before
it can be rewritten.  States follow the OCSSD 2.0 chunk descriptor:

* ``FREE``    — reset, write pointer at 0;
* ``OPEN``    — partially written;
* ``CLOSED``  — fully written;
* ``OFFLINE`` — retired after a media failure.

The chunk additionally distinguishes the *admitted* write pointer (sectors
accepted by the controller, possibly still in the write-back cache) from
the *flushed* write pointer (sectors actually programmed to NAND).  A
power/controller crash rolls the chunk back to its flushed pointer, which
is what makes the FTL's write-ahead-log durability guarantees testable.

Payloads live in write-once *slabs*: one immutable ``bytes`` object per
``ws_min`` write unit, built with a single ``b"".join`` when the unit is
admitted.  Nothing is pre-zeroed — the old design's full-capacity
``bytearray`` wrote every chunk's memory twice (zero-fill, then payload
copy) and stalled first-write latency with multi-hundred-KB allocations.
Reads hand out :class:`memoryview` slices into the slabs instead of
allocating a bytes object per sector.  A validity bytearray tells a
never-written (``None``) sector apart from written data, and a per-sector
length array preserves exact short-payload round-trips (the simulated
sector keeps its trailing undefined bytes out of sight, like a real
drive whose host only DMAs the transferred length).  Sequential-write
discipline makes the aliasing safe: a sector below the write pointer is
never overwritten, and ``reset`` drops the slabs rather than zeroing
them, so outstanding views keep reading the data that existed when they
were created.  The one writer that can land *inside* a slab — a write
resumed at a torn write pointer after a power cut — falls back to a
mutable ``bytearray`` slab for exactly the units it touches.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Union

from repro.errors import ChunkStateError, WritePointerError, WriteUnitError
from repro.ocssd.address import Ppa

import enum

Payload = Union[bytes, bytearray, memoryview, None]

# Shared zero-filled sectors for padding: the bytes are always *copied*
# into a slab (or joined into a caller's buffer), so sharing is safe.
_ZERO_CACHE: dict = {}
# b"\x01" runs for bulk validity marking, keyed by run length.
_ONES_CACHE: dict = {}
# array("H", [sector_size] * count) templates for bulk length marking.
_LENGTH_CACHE: dict = {}


def _zeros(size: int) -> bytes:
    blob = _ZERO_CACHE.get(size)
    if blob is None:
        blob = _ZERO_CACHE[size] = bytes(size)
    return blob


def _ones(count: int) -> bytes:
    blob = _ONES_CACHE.get(count)
    if blob is None:
        blob = _ONES_CACHE[count] = b"\x01" * count
    return blob


def _full_lengths(sector_size: int, count: int) -> array:
    key = (sector_size, count)
    template = _LENGTH_CACHE.get(key)
    if template is None:
        template = _LENGTH_CACHE[key] = array(
            "H", [sector_size]) * count
    return template


def pad_sector(payload: Payload, sector_size: int) -> Union[bytes,
                                                            memoryview]:
    """Pad one read payload (bytes, memoryview or None) to *sector_size*.

    The full-sector case — the overwhelmingly common one — returns the
    payload untouched, so a chunk-store memoryview flows zero-copy into
    the caller's ``b"".join``.
    """
    if payload is None:
        return _zeros(sector_size)
    if len(payload) == sector_size:
        return payload
    return bytes(payload).ljust(sector_size, b"\x00")


class ChunkState(enum.Enum):
    FREE = "free"
    OPEN = "open"
    CLOSED = "closed"
    OFFLINE = "offline"


# Enum member access goes through a descriptor on every lookup; the chunk
# state checks sit on the per-sector read/write paths, so bind them once.
_FREE = ChunkState.FREE
_OPEN = ChunkState.OPEN
_CLOSED = ChunkState.CLOSED
_OFFLINE = ChunkState.OFFLINE


class Chunk:
    """State, write pointers and sector payloads of one chunk."""

    __slots__ = ("address", "capacity", "ws_min", "sector_size", "state",
                 "write_pointer", "flushed_pointer", "wear_index",
                 "_slabs", "_lengths", "_valid", "_oob")

    def __init__(self, address: Ppa, capacity: int, ws_min: int,
                 sector_size: int = 4096):
        self.address = address.chunk_address()
        self.capacity = capacity
        self.ws_min = ws_min
        self.sector_size = sector_size
        self.state = _FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index = 0          # erase cycles seen by this chunk
        # Payload slabs and out-of-band metadata are allocated on first
        # write so a large device with mostly-untouched chunks stays cheap.
        # OOB mirrors real flash: per-sector metadata FTL recovery scans
        # read.
        self._slabs: Optional[List[Union[bytes, bytearray, None]]] = None
        self._lengths: Optional[array] = None
        self._valid: Optional[bytearray] = None
        self._oob: Optional[List[Optional[object]]] = None

    # -- write path -----------------------------------------------------------

    def admit_write(self, sector: int, payloads: Sequence[Payload],
                    oobs: Optional[List[object]] = None,
                    whole: Optional[memoryview] = None) -> None:
        """Accept a sequential write of ``len(payloads)`` sectors at *sector*.

        Enforces the three §2.2 write rules: chunk must be writable, the
        write must land exactly on the write pointer, and its size must be a
        whole number of ``ws_min`` units.

        *whole*, when given, is one contiguous buffer holding exactly the
        same bytes as *payloads* over an immutable backing object; the
        store then admits it as the unit's slab directly instead of
        joining the per-sector pieces (zero-copy).
        """
        count = len(payloads)
        if self.state is _OFFLINE:
            raise ChunkStateError(f"write to offline chunk {self.address}")
        if self.state is _CLOSED:
            raise ChunkStateError(f"write to closed chunk {self.address}")
        if sector != self.write_pointer:
            raise WritePointerError(
                f"write at sector {sector} of {self.address}, "
                f"write pointer is {self.write_pointer}")
        if count <= 0 or count % self.ws_min:
            raise WriteUnitError(
                f"write of {count} sectors violates ws_min={self.ws_min}")
        if self.write_pointer + count > self.capacity:
            raise WritePointerError(
                f"write of {count} sectors overflows chunk {self.address} "
                f"(wp={self.write_pointer}, capacity={self.capacity})")
        if oobs is not None and len(oobs) != count:
            raise WriteUnitError(
                f"write of {count} sectors with {len(oobs)} OOB entries")
        sector_size = self.sector_size
        for payload in payloads:
            if payload is not None and len(payload) > sector_size:
                raise WriteUnitError(
                    f"payload of {len(payload)} bytes exceeds the "
                    f"{sector_size}-byte sector of {self.address}")
        self._ensure_storage()
        slabs = self._slabs
        lengths = self._lengths
        valid = self._valid
        ws_min = self.ws_min
        if sector % ws_min == 0:
            # Aligned write (the only kind outside crash recovery): one
            # immutable slab per ws_min unit, a single join, no zero-fill.
            all_full = True
            for payload in payloads:
                if payload is None or len(payload) != sector_size:
                    all_full = False
                    break
            if all_full:
                if (whole is not None and count == ws_min
                        and len(whole) == count * sector_size):
                    slabs.append(whole)
                else:
                    for base in range(0, count, ws_min):
                        slabs.append(b"".join(payloads[base:base + ws_min]))
                valid[sector:sector + count] = _ones(count)
                lengths[sector:sector + count] = _full_lengths(
                    sector_size, count)
            else:
                for base in range(0, count, ws_min):
                    slabs.append(b"".join(
                        [pad_sector(payload, sector_size)
                         for payload in payloads[base:base + ws_min]]))
                for index, payload in enumerate(payloads):
                    if payload is not None:
                        lengths[sector + index] = len(payload)
                        valid[sector + index] = 1
        else:
            # A write resumed at a torn (mid-unit) write pointer — only
            # reachable after a power cut sheared a program — lands inside
            # an existing slab.  Fall back to mutable bytearray slabs for
            # exactly the units this write touches.  Trailing bytes of a
            # short payload are never exposed: reads are bounded by the
            # recorded per-sector length.
            last_unit = (sector + count - 1) // ws_min
            while len(slabs) <= last_unit:
                slabs.append(None)
            for index, payload in enumerate(payloads):
                if payload is None:
                    continue
                at = sector + index
                unit = at // ws_min
                slab = slabs[unit]
                if slab is None:
                    slab = slabs[unit] = bytearray(ws_min * sector_size)
                elif not isinstance(slab, bytearray):
                    # Immutable slab (bytes, or a zero-copy admitted view):
                    # materialize a private mutable copy before patching.
                    slab = slabs[unit] = bytearray(slab)
                offset = (at % ws_min) * sector_size
                length = len(payload)
                slab[offset:offset + length] = payload
                lengths[at] = length
                valid[at] = 1
        if oobs is not None:
            self._oob[sector:sector + count] = oobs
        self.write_pointer += count
        self.state = (_CLOSED
                      if self.write_pointer == self.capacity
                      else _OPEN)

    def mark_flushed(self, up_to: int) -> None:
        """Record that sectors below *up_to* have reached NAND."""
        if up_to < self.flushed_pointer or up_to > self.write_pointer:
            raise WritePointerError(
                f"flush pointer {up_to} outside "
                f"[{self.flushed_pointer}, {self.write_pointer}] "
                f"of {self.address}")
        self.flushed_pointer = up_to

    def _ensure_storage(self) -> None:
        if self._slabs is None:
            self._slabs = []
            self._lengths = array("H", bytes(2 * self.capacity))
            self._valid = bytearray(self.capacity)
            self._oob = [None] * self.capacity

    # -- read path -------------------------------------------------------------

    def read(self, sector: int, count: int = 1) -> List[Payload]:
        """Return the payloads of *count* sectors starting at *sector*.

        Payloads come back as memoryviews into the chunk's slab store
        (``None`` for sectors written without data); callers that need
        sector-sized blobs pad them with :func:`pad_sector`.

        Reading at or above the write pointer is an error (undefined data on
        real flash).
        """
        if self.state is _OFFLINE:
            raise ChunkStateError(f"read from offline chunk {self.address}")
        if count <= 0:
            raise WritePointerError(f"read of {count} sectors")
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"read of sectors [{sector}, {sector + count}) above write "
                f"pointer {self.write_pointer} in {self.address}")
        valid = self._valid
        if count == 1:
            # Single-sector fast path: device reads overwhelmingly ask for
            # one sector at a time.
            if not valid[sector]:
                return [None]
            at = (sector % self.ws_min) * self.sector_size
            return [memoryview(self._slabs[sector // self.ws_min])
                    [at:at + self._lengths[sector]]]
        slabs = self._slabs
        lengths = self._lengths
        sector_size = self.sector_size
        ws_min = self.ws_min
        result: List[Payload] = []
        for index in range(sector, sector + count):
            if valid[index]:
                at = (index % ws_min) * sector_size
                result.append(memoryview(slabs[index // ws_min])
                              [at:at + lengths[index]])
            else:
                result.append(None)
        return result

    def read_oob(self, sector: int, count: int = 1) -> List[Optional[object]]:
        """Return the out-of-band metadata of *count* sectors at *sector*."""
        if sector < 0 or sector + count > self.write_pointer:
            raise WritePointerError(
                f"OOB read of sectors [{sector}, {sector + count}) above "
                f"write pointer {self.write_pointer} in {self.address}")
        return self._oob[sector:sector + count]

    # -- reset / failure --------------------------------------------------------

    def reset(self) -> None:
        """Erase the chunk: back to ``FREE`` with the pointer at 0."""
        if self.state is _OFFLINE:
            raise ChunkStateError(f"reset of offline chunk {self.address}")
        self.state = _FREE
        self.write_pointer = 0
        self.flushed_pointer = 0
        self.wear_index += 1
        self._slabs = None
        self._lengths = None
        self._valid = None
        self._oob = None

    def retire(self) -> None:
        """Take the chunk offline after an unrecoverable media failure."""
        self.state = _OFFLINE

    def rollback_unflushed(self) -> None:
        """Drop sectors admitted but never programmed (crash semantics)."""
        if self.state is _OFFLINE:
            return
        if self._valid is not None:
            flushed = self.flushed_pointer
            dropped = self.write_pointer - flushed
            if dropped > 0:
                self._valid[flushed:flushed + dropped] = bytes(dropped)
                self._lengths[flushed:flushed + dropped] = array(
                    "H", bytes(2 * dropped))
                self._oob[flushed:flushed + dropped] = [None] * dropped
            # Free whole slabs above the flushed pointer; a slab torn
            # mid-unit stays (its rolled-back sectors are already marked
            # invalid above).
            keep_units = -(-flushed // self.ws_min)
            del self._slabs[keep_units:]
        self.write_pointer = self.flushed_pointer
        if self.write_pointer == 0:
            self.state = _FREE
        elif self.write_pointer < self.capacity:
            self.state = _OPEN

    # -- inspection ---------------------------------------------------------------

    @property
    def is_writable(self) -> bool:
        return self.state in (_FREE, _OPEN)

    @property
    def sectors_free(self) -> int:
        return self.capacity - self.write_pointer

    def memory_bytes(self) -> int:
        """Approximate resident size of the payload store (perf metric)."""
        import sys
        if self._slabs is None:
            return 0
        total = (sys.getsizeof(self._slabs) + sys.getsizeof(self._lengths) +
                 sys.getsizeof(self._valid) + sys.getsizeof(self._oob))
        for slab in self._slabs:
            if slab is not None:
                total += sys.getsizeof(slab)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Chunk {self.address} {self.state.value} "
                f"wp={self.write_pointer}/{self.capacity}>")
