"""Device-level geometry: groups x parallel units x chunks x sectors.

This is what the OCSSD geometry-report admin command returns to the host.
The per-chip dimensions come from :class:`repro.nand.FlashGeometry`; the
device dimensions (groups, PUs per group) are set by the manufacturer
(§2.1: "SSD manufacturers define the number of channels in an SSD, and the
number of storage chips per channel").

The default mirrors the evaluation drive of Figure 4: 8 groups x 4 PUs,
dual-plane TLC, 4 KB sectors, ``ws_min`` = 24 sectors = 96 KB — but with
chunks scaled down from 24 MB so pure-Python experiments stay tractable
(the scale factor is reported by :meth:`describe`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import GeometryError
from repro.nand.geometry import FlashGeometry
from repro.ocssd.address import Ppa


@dataclass(frozen=True)
class DeviceGeometry:
    """Geometry exposed by the device's geometry-report command."""

    num_groups: int = 8
    pus_per_group: int = 4
    flash: FlashGeometry = field(default_factory=FlashGeometry)

    def __post_init__(self) -> None:
        if self.num_groups < 1:
            raise GeometryError(f"num_groups must be >= 1, got {self.num_groups}")
        if self.pus_per_group < 1:
            raise GeometryError(
                f"pus_per_group must be >= 1, got {self.pus_per_group}")
        # Address translation runs once per sector on every I/O; cache the
        # dimension chain (each hop is a property call) on the instance.
        object.__setattr__(self, "_dims",
                           (self.pus_per_group, self.flash.chunks_per_chip,
                            self.flash.sectors_per_chunk, self.num_groups))

    # -- derived dimensions ---------------------------------------------------

    @property
    def sector_size(self) -> int:
        return self.flash.sector_size

    @property
    def chunks_per_pu(self) -> int:
        return self.flash.chunks_per_chip

    @property
    def sectors_per_chunk(self) -> int:
        return self.flash.sectors_per_chunk

    @property
    def chunk_size(self) -> int:
        return self.flash.chunk_size

    @property
    def ws_min(self) -> int:
        """Minimum write size in sectors (the §2.1 unit-of-write)."""
        return self.flash.write_unit_sectors

    @property
    def ws_opt(self) -> int:
        """Optimal write size in sectors (== ``ws_min`` in this model)."""
        return self.ws_min

    @property
    def total_pus(self) -> int:
        return self.num_groups * self.pus_per_group

    @property
    def total_chunks(self) -> int:
        return self.total_pus * self.chunks_per_pu

    @property
    def capacity_bytes(self) -> int:
        return self.total_chunks * self.chunk_size

    # -- address handling -------------------------------------------------------

    def check(self, ppa: Ppa) -> None:
        """Raise :class:`GeometryError` unless *ppa* is on the device."""
        pus, chunks, sectors, groups = self._dims
        group, pu, chunk, sector = ppa
        if not (0 <= group < groups and 0 <= pu < pus
                and 0 <= chunk < chunks and 0 <= sector < sectors):
            raise GeometryError(f"{ppa} outside geometry {self.describe()}")

    def linearize(self, ppa: Ppa) -> int:
        """Map *ppa* to a dense integer (used for compact map encodings)."""
        pus, chunks, sectors, groups = self._dims
        group, pu, chunk, sector = ppa
        if not (0 <= group < groups and 0 <= pu < pus
                and 0 <= chunk < chunks and 0 <= sector < sectors):
            raise GeometryError(f"{ppa} outside geometry {self.describe()}")
        return ((group * pus + pu) * chunks + chunk) * sectors + sector

    def delinearize(self, index: int) -> Ppa:
        """Inverse of :meth:`linearize`."""
        pus, chunks, sectors, groups = self._dims
        if not 0 <= index < groups * pus * chunks * sectors:
            raise GeometryError(f"linear index {index} out of range")
        index, sector = divmod(index, sectors)
        index, chunk = divmod(index, chunks)
        group, pu = divmod(index, pus)
        return Ppa(group, pu, chunk, sector)

    def iter_pus(self) -> Iterator[tuple[int, int]]:
        """All ``(group, pu)`` pairs in address order."""
        for group in range(self.num_groups):
            for pu in range(self.pus_per_group):
                yield (group, pu)

    def describe(self) -> str:
        return (f"{self.num_groups}g x {self.pus_per_group}pu x "
                f"{self.chunks_per_pu}chk x {self.sectors_per_chunk}sec "
                f"({self.flash.cell.name}, {self.flash.planes} planes, "
                f"ws_min={self.ws_min})")
