"""Vector data commands and completions (OCSSD 2.0 command set, §2.2).

The interface supports scatter-gather reads and writes of logical blocks,
chunk reset, and device-internal copy of logical blocks ("without host
involvement") — the latter is what group-local garbage collection uses to
relocate valid data cheaply.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.ocssd.address import Ppa

if TYPE_CHECKING:   # typing only: repro.qos must stay un-imported at runtime
    from repro.qos.tenant import TenantContext


class CommandStatus(enum.Enum):
    OK = "ok"
    WRITE_FAILED = "write-failed"
    READ_FAILED = "read-failed"
    RESET_FAILED = "reset-failed"
    INVALID = "invalid"
    POWER_FAIL = "power-fail"


@dataclass(slots=True)
class VectorWrite:
    """Write ``data[i]`` to ``ppas[i]``; addresses must be chunk-sequential
    runs aligned on the write pointer and sized in ``ws_min`` units.

    ``oob`` optionally carries per-sector out-of-band metadata (e.g. the
    owning LBA) that FTL recovery scans can read back.

    ``fua`` (force unit access, as in NVMe) bypasses the controller's
    write-back cache: the command completes only once the data is on NAND.
    FTL write-ahead logs use it for commit durability.
    """

    ppas: List[Ppa]
    data: List[Optional[bytes]]
    oob: Optional[List[object]] = None
    fua: bool = False
    #: Originating tenant (repro.qos); None for infrastructure I/O.
    tenant: Optional["TenantContext"] = None
    #: Optional contiguous view over the same bytes as ``data`` (one
    #: whole write unit on an immutable buffer): lets the chunk store
    #: admit the unit zero-copy.  Purely an optimization hint.
    whole: Optional[memoryview] = None

    def __post_init__(self) -> None:
        if len(self.ppas) != len(self.data):
            raise ValueError(
                f"vector write with {len(self.ppas)} addresses but "
                f"{len(self.data)} payloads")
        if self.oob is not None and len(self.oob) != len(self.ppas):
            raise ValueError(
                f"vector write with {len(self.ppas)} addresses but "
                f"{len(self.oob)} OOB entries")


@dataclass(slots=True)
class VectorRead:
    """Read the sectors named by *ppas* (any scatter pattern)."""

    ppas: List[Ppa]
    #: Originating tenant (repro.qos); None for infrastructure I/O.
    tenant: Optional["TenantContext"] = None


@dataclass(slots=True)
class ChunkReset:
    """Reset (erase) the chunk containing *ppa*."""

    ppa: Ppa
    #: Originating tenant (repro.qos); None for infrastructure I/O.
    tenant: Optional["TenantContext"] = None


@dataclass(slots=True)
class VectorCopy:
    """Device-internal copy: move sectors ``src[i]`` to ``dst[i]`` without
    transferring data to the host.  Destinations obey the same sequential
    write rules as :class:`VectorWrite`.

    ``dst_oob``, when given, replaces the source OOB for each destination
    sector; GC uses it to mark relocation padding as unowned instead of
    letting a pad inherit the live LBA of the sector it re-copies.
    """

    src: List[Ppa]
    dst: List[Ppa]
    dst_oob: Optional[List[object]] = None
    #: Originating tenant (repro.qos); None for infrastructure I/O.
    tenant: Optional["TenantContext"] = None

    def __post_init__(self) -> None:
        if len(self.src) != len(self.dst):
            raise ValueError(
                f"vector copy with {len(self.src)} sources but "
                f"{len(self.dst)} destinations")
        if self.dst_oob is not None and len(self.dst_oob) != len(self.dst):
            raise ValueError(
                f"vector copy with {len(self.dst)} destinations but "
                f"{len(self.dst_oob)} OOB overrides")


@dataclass(slots=True)
class Completion:
    """Result of a command: status, payloads for reads, and timing."""

    status: CommandStatus
    data: List[Optional[bytes]] = field(default_factory=list)
    oob: List[Optional[object]] = field(default_factory=list)
    submitted_at: float = 0.0
    completed_at: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is CommandStatus.OK

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at
