"""Open-Channel SSD device model (OCSSD 2.0-style interface, §2.2).

The device exposes its physical address space as *groups* (no interference
across groups) of *parallel units* (chips; operations sequential within a
chip) of *chunks* (sequential-write units that must be reset before
rewrite).  Vector read/write/copy commands, chunk reset, geometry discovery,
chunk metadata and asynchronous error notifications follow the Open-Channel
2.0 specification's shape.

Timing and interference come from the discrete-event simulation: one
channel resource per group, one resource per chip, NAND latencies from
:mod:`repro.nand`, plus an optional controller write-back cache.
"""

from repro.ocssd.address import Ppa
from repro.ocssd.geometry import DeviceGeometry
from repro.ocssd.chunk import Chunk, ChunkState, pad_sector
from repro.ocssd.commands import (
    ChunkReset,
    Completion,
    CommandStatus,
    VectorCopy,
    VectorRead,
    VectorWrite,
)
from repro.ocssd.device import ChunkNotification, OpenChannelSSD

__all__ = [
    "Ppa",
    "DeviceGeometry",
    "Chunk",
    "ChunkState",
    "ChunkReset",
    "Completion",
    "CommandStatus",
    "VectorCopy",
    "VectorRead",
    "VectorWrite",
    "ChunkNotification",
    "OpenChannelSSD",
]
