"""Deterministic workload generators.

* :class:`KeyValueGenerator` — db_bench-style keys/values.
* :class:`RandomWriteWorkload` — the Figure 3 driver: "random writes of up
  to 1 MB in size; each of these writes is a transaction".
* :class:`RandomReadWorkload` — its read twin (the isolation bench's
  victim traffic).
* :class:`ZipfianKeyChooser` — skewed key popularity for ablations.

Multi-tenant determinism: every generator takes a ``stream`` label in
addition to its ``seed``.  :func:`derive_stream_seed` mixes the two
through BLAKE2s, so each tenant's op sequence (a) is independent of every
other tenant's — tenants sharing a base seed do not mirror each other's
accesses — and (b) is independently reseedable: re-running one tenant's
stream alone reproduces exactly the ops it issued in the full run.
Deriving with ``stream=""`` returns the base seed unchanged, so
single-stream workloads built before this existed replay byte-identically.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import ReproError
from repro.units import KIB, MIB


def derive_stream_seed(base_seed: int, stream: str) -> int:
    """A stable, collision-resistant per-stream seed.

    ``stream`` is typically a tenant name.  The empty stream maps to the
    base seed itself (backwards compatibility); distinct streams map to
    seeds that are independent for practical purposes even when base
    seeds are small consecutive integers.
    """
    if not stream:
        return base_seed
    digest = hashlib.blake2s(
        f"{base_seed}:{stream}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class KeyValueGenerator:
    """Fixed-size keys and values, deterministic per index."""

    def __init__(self, key_size: int = 16, value_size: int = 1024):
        if key_size < 4:
            raise ReproError(
                f"KeyValueGenerator: key_size must be >= 4, got {key_size}")
        if value_size < 1:
            raise ReproError(
                f"KeyValueGenerator: value_size must be >= 1, "
                f"got {value_size}")
        self.key_size = key_size
        self.value_size = value_size

    def key(self, index: int) -> bytes:
        return str(index).zfill(self.key_size).encode()

    def value(self, index: int) -> bytes:
        return bytes([33 + (index * 31) % 90]) * self.value_size


@dataclass(frozen=True)
class WriteOp:
    """One transactional random write."""

    lba: int
    num_sectors: int
    fill: int

    def payload(self, sector_size: int) -> bytes:
        return bytes([self.fill]) * (self.num_sectors * sector_size)


@dataclass(frozen=True)
class ReadOp:
    """One random read."""

    lba: int
    num_sectors: int


class RandomWriteWorkload:
    """Random writes up to ``max_bytes`` over an LBA space (Figure 3).

    *stream* names this workload's independent random stream (e.g. the
    tenant issuing it); see :func:`derive_stream_seed`.
    """

    def __init__(self, lba_space: int, sector_size: int = 4096,
                 min_bytes: int = 4 * KIB, max_bytes: int = 1 * MIB,
                 seed: int = 0, stream: str = ""):
        if lba_space < max_bytes // sector_size:
            raise ReproError(
                f"RandomWriteWorkload: lba_space ({lba_space} sectors) is "
                f"smaller than the largest write "
                f"({max_bytes // sector_size} sectors)")
        self.lba_space = lba_space
        self.sector_size = sector_size
        self.min_sectors = max(1, min_bytes // sector_size)
        self.max_sectors = max(self.min_sectors, max_bytes // sector_size)
        self.stream = stream
        self.seed = derive_stream_seed(seed, stream)

    def operations(self, count: int = 0) -> Iterator[WriteOp]:
        """Yield *count* operations (infinite when count == 0)."""
        rng = random.Random(self.seed)
        produced = 0
        while not count or produced < count:
            num_sectors = rng.randint(self.min_sectors, self.max_sectors)
            lba = rng.randrange(0, self.lba_space - num_sectors + 1)
            yield WriteOp(lba=lba, num_sectors=num_sectors,
                          fill=rng.randrange(1, 251))
            produced += 1


class RandomReadWorkload:
    """Uniform random reads over an LBA space.

    The victim side of the noisy-neighbor experiment: small reads whose
    tail latency the scheduler must defend.  Same stream-seed contract
    as :class:`RandomWriteWorkload`.
    """

    def __init__(self, lba_space: int, sector_size: int = 4096,
                 min_bytes: int = 4 * KIB, max_bytes: int = 4 * KIB,
                 seed: int = 0, stream: str = ""):
        if lba_space < max_bytes // sector_size:
            raise ReproError(
                f"RandomReadWorkload: lba_space ({lba_space} sectors) is "
                f"smaller than the largest read "
                f"({max_bytes // sector_size} sectors)")
        self.lba_space = lba_space
        self.sector_size = sector_size
        self.min_sectors = max(1, min_bytes // sector_size)
        self.max_sectors = max(self.min_sectors, max_bytes // sector_size)
        self.stream = stream
        self.seed = derive_stream_seed(seed, stream)

    def operations(self, count: int = 0) -> Iterator[ReadOp]:
        """Yield *count* operations (infinite when count == 0)."""
        rng = random.Random(self.seed)
        produced = 0
        while not count or produced < count:
            num_sectors = rng.randint(self.min_sectors, self.max_sectors)
            lba = rng.randrange(0, self.lba_space - num_sectors + 1)
            yield ReadOp(lba=lba, num_sectors=num_sectors)
            produced += 1


class ZipfianKeyChooser:
    """Zipf-distributed key indexes (precomputed CDF, deterministic)."""

    def __init__(self, key_space: int, theta: float = 0.99, seed: int = 0,
                 stream: str = ""):
        if key_space < 1:
            raise ReproError(
                f"ZipfianKeyChooser: key_space must be >= 1, "
                f"got {key_space}")
        if not 0 < theta < 2:
            raise ReproError(
                f"ZipfianKeyChooser: theta must be in (0, 2), got {theta}")
        self.key_space = key_space
        self._rng = random.Random(derive_stream_seed(seed, stream))
        weights = [1.0 / (rank ** theta)
                   for rank in range(1, key_space + 1)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def next(self) -> int:
        import bisect
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def sample(self, count: int) -> List[int]:
        return [self.next() for __ in range(count)]
