"""Deterministic workload generators.

* :class:`KeyValueGenerator` — db_bench-style keys/values.
* :class:`RandomWriteWorkload` — the Figure 3 driver: "random writes of up
  to 1 MB in size; each of these writes is a transaction".
* :class:`ZipfianKeyChooser` — skewed key popularity for ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.units import KIB, MIB


class KeyValueGenerator:
    """Fixed-size keys and values, deterministic per index."""

    def __init__(self, key_size: int = 16, value_size: int = 1024):
        if key_size < 4:
            raise ValueError(f"key_size must be >= 4, got {key_size}")
        self.key_size = key_size
        self.value_size = value_size

    def key(self, index: int) -> bytes:
        return str(index).zfill(self.key_size).encode()

    def value(self, index: int) -> bytes:
        return bytes([33 + (index * 31) % 90]) * self.value_size


@dataclass(frozen=True)
class WriteOp:
    """One transactional random write."""

    lba: int
    num_sectors: int
    fill: int

    def payload(self, sector_size: int) -> bytes:
        return bytes([self.fill]) * (self.num_sectors * sector_size)


class RandomWriteWorkload:
    """Random writes up to ``max_bytes`` over an LBA space (Figure 3)."""

    def __init__(self, lba_space: int, sector_size: int = 4096,
                 min_bytes: int = 4 * KIB, max_bytes: int = 1 * MIB,
                 seed: int = 0):
        if lba_space < max_bytes // sector_size:
            raise ValueError("LBA space smaller than the largest write")
        self.lba_space = lba_space
        self.sector_size = sector_size
        self.min_sectors = max(1, min_bytes // sector_size)
        self.max_sectors = max(self.min_sectors, max_bytes // sector_size)
        self.seed = seed

    def operations(self, count: int = 0) -> Iterator[WriteOp]:
        """Yield *count* operations (infinite when count == 0)."""
        rng = random.Random(self.seed)
        produced = 0
        while not count or produced < count:
            num_sectors = rng.randint(self.min_sectors, self.max_sectors)
            lba = rng.randrange(0, self.lba_space - num_sectors + 1)
            yield WriteOp(lba=lba, num_sectors=num_sectors,
                          fill=rng.randrange(1, 251))
            produced += 1


class ZipfianKeyChooser:
    """Zipf-distributed key indexes (precomputed CDF, deterministic)."""

    def __init__(self, key_space: int, theta: float = 0.99, seed: int = 0):
        if key_space < 1:
            raise ValueError(f"key_space must be >= 1, got {key_space}")
        if not 0 < theta < 2:
            raise ValueError(f"theta must be in (0, 2), got {theta}")
        self.key_space = key_space
        self._rng = random.Random(seed)
        weights = [1.0 / (rank ** theta)
                   for rank in range(1, key_space + 1)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)

    def next(self) -> int:
        import bisect
        point = self._rng.random()
        return bisect.bisect_left(self._cdf, point)

    def sample(self, count: int) -> List[int]:
        return [self.next() for __ in range(count)]
