"""Workload generators for the benchmarks."""

from repro.workloads.generators import (
    KeyValueGenerator,
    RandomWriteWorkload,
    ZipfianKeyChooser,
)

__all__ = [
    "KeyValueGenerator",
    "RandomWriteWorkload",
    "ZipfianKeyChooser",
]
