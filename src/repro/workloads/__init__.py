"""Workload generators for the benchmarks."""

from repro.workloads.generators import (
    KeyValueGenerator,
    RandomReadWorkload,
    RandomWriteWorkload,
    ReadOp,
    WriteOp,
    ZipfianKeyChooser,
    derive_stream_seed,
)

__all__ = [
    "KeyValueGenerator",
    "RandomReadWorkload",
    "RandomWriteWorkload",
    "ReadOp",
    "WriteOp",
    "ZipfianKeyChooser",
    "derive_stream_seed",
]
