"""repro: a reproduction of "Open-Channel SSD (What is it Good For)".

The package rebuilds, in simulation, every system the CIDR 2020 paper by
Picoli, Hedam, Bonnet and Tözün describes: the Open-Channel SSD itself,
the OX framework's media manager and modular FTL, the three OX-based
FTLs (OX-Block, OX-ELEOS, LightLSM), the data systems above them
(LLAMA-lite, RocksDB-lite), the OX-ZNS target, and the evaluation
harness that regenerates the paper's figures.

Most applications start from three objects::

    from repro.ocssd import DeviceGeometry, OpenChannelSSD
    from repro.ox import MediaManager, OXBlock, BlockConfig

    device = OpenChannelSSD(geometry=DeviceGeometry())
    media = MediaManager(device)
    ftl = OXBlock.format(media, BlockConfig())

Subpackages
-----------
``repro.sim``
    The deterministic discrete-event simulation kernel everything runs on.
``repro.nand``
    Flash chips: cell types, paired pages, planes, timing, wear.
``repro.ocssd``
    The Open-Channel SSD device model (OCSSD 2.0-style interface).
``repro.ox``
    The OX framework: media manager, modular FTL, OX-Block, OX-ELEOS.
``repro.llama``
    LLAMA-lite, the log-structured page store driving OX-ELEOS.
``repro.lsm``
    RocksDB-lite and its storage environments, including LightLSM.
``repro.zns``
    OX-ZNS: Zoned Namespaces as an FTL over the Open-Channel SSD.
``repro.host``
    The DFC controller platform and data-copy cost model.
``repro.landscape``
    The paper's Figure 1 design-space taxonomy.
``repro.contract``
    Performance contracts for FTL/device co-design.
``repro.workloads``
    Deterministic workload generators for the benchmarks.
"""

__version__ = "0.1.0"
__paper__ = ("Picoli, Hedam, Bonnet, Tözün. "
             "Open-Channel SSD (What is it Good For). CIDR 2020.")
