"""The Figure 7 experiment: host threads writing to OX-ELEOS through the
controller's copy path.

Each host thread streams LSS buffers at the controller.  Per buffer, the
controller performs two copies — network stack -> FTL, FTL -> Open-Channel
SSD — before the (write-back) device admission.  The measured quantity is
controller CPU utilization as a function of the number of host threads:
it grows roughly linearly and saturates once the copy cores are fully
busy, which with the default :class:`~repro.host.platform.DfcSpec`
happens at 2 threads, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.host.platform import DfcPlatform
from repro.ox.eleos import OXEleos


@dataclass
class CopyExperimentResult:
    host_threads: int
    buffers_written: int
    elapsed: float
    cpu_utilization: float
    throughput_bytes_per_sec: float


class HostWriteExperiment:
    """Drive OX-ELEOS from N host threads and measure controller CPU."""

    def __init__(self, ftl: OXEleos, platform: DfcPlatform,
                 buffer_bytes: Optional[int] = None,
                 page_bytes: int = 32 * 1024):
        self.ftl = ftl
        self.platform = platform
        self.sim = ftl.sim
        self.buffer_bytes = buffer_bytes or ftl.config.buffer_bytes
        self.page_bytes = page_bytes

    def _make_buffer(self, thread: int, index: int) -> List[Tuple[int, bytes]]:
        pages_per_buffer = max(1, self.buffer_bytes // self.page_bytes)
        base_pid = (thread << 40) | (index * pages_per_buffer)
        payload = bytes([thread % 251]) * self.page_bytes
        return [(base_pid + i, payload) for i in range(pages_per_buffer)]

    def _writer(self, thread: int, buffers: int):
        for index in range(buffers):
            batch = self._make_buffer(thread, index)
            num_bytes = sum(len(payload) for __, payload in batch)
            # Copy 1: network stack -> FTL staging.
            yield from self.platform.copy_proc(num_bytes)
            # Copy 2: FTL staging -> Open-Channel SSD submission.
            yield from self.platform.copy_proc(num_bytes)
            yield from self.ftl.append_buffer_proc(batch)

    def run(self, host_threads: int,
            buffers_per_thread: int = 8) -> CopyExperimentResult:
        """Run the workload to completion; returns the measurements."""
        sim = self.sim
        started = sim.now
        self.platform.cpu.reset()
        writers = [sim.spawn(self._writer(thread, buffers_per_thread),
                             name=f"host-writer-{thread}")
                   for thread in range(host_threads)]
        sim.run_until(sim.all_of(writers))
        elapsed = sim.now - started
        total = host_threads * buffers_per_thread
        total_bytes = total * self.buffer_bytes
        return CopyExperimentResult(
            host_threads=host_threads,
            buffers_written=total,
            elapsed=elapsed,
            cpu_utilization=self.platform.utilization(),
            throughput_bytes_per_sec=(total_bytes / elapsed
                                      if elapsed else 0.0))
