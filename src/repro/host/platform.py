"""The DFC storage-controller platform model.

The DFC card carries an ARMv8 SoC; OX runs on it and spends its cycles
moving data.  The model reduces the SoC to the resource that matters for
Figure 7: *cores able to perform data copies*, each with a finite memcpy
bandwidth.  "The efficiency of data copies depend on the RAM modules
accessed by the storage controller" (§4.4) — hence bandwidth, not core
count alone, is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import UtilizationTracker
from repro.units import MIB


@dataclass(frozen=True)
class DfcSpec:
    """Hardware parameters of the controller.

    The memcpy figure is deliberately modest: on the DFC's ARMv8 SoC the
    copy path shares DDR bandwidth with the NIC and the flash controller,
    and the paper's whole point is that copies, not the media, saturate
    the controller.
    """

    copy_cores: int = 2                  # cores available for data copies
    memcpy_bandwidth: float = 200 * MIB  # bytes/second per core


class DfcPlatform:
    """Schedulable copy capacity plus a CPU-utilization meter."""

    def __init__(self, sim: Simulator, spec: DfcSpec = DfcSpec()):
        self.sim = sim
        self.spec = spec
        self.cores = Resource(sim, capacity=spec.copy_cores, name="dfc-cores")
        self.cpu = UtilizationTracker(sim, capacity=spec.copy_cores,
                                      name="dfc-cpu")

    def copy_time(self, num_bytes: int) -> float:
        """Core-seconds to memcpy *num_bytes* once."""
        if num_bytes < 0:
            raise ValueError(f"negative copy size: {num_bytes}")
        return num_bytes / self.spec.memcpy_bandwidth

    def copy_proc(self, num_bytes: int):
        """Process generator: perform one data copy on some core."""
        grant = self.cores.request()
        yield grant
        try:
            elapsed = self.copy_time(num_bytes)
            self.cpu.add_busy(elapsed)
            yield self.sim.timeout(elapsed)
        finally:
            self.cores.release()

    def utilization(self) -> float:
        """Fraction of total core capacity spent copying so far."""
        return self.cpu.utilization()
