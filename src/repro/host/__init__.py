"""Host/controller platform model: the DFC card and its data-copy costs.

Figure 7 of the paper shows the DFC storage controller's CPU saturating
with only 2 host writer threads "because it cannot keep up with the data
copies within OX: from the network stack to the FTL, and from the FTL to
the Open-Channel SSD".  This package models exactly that mechanism: a
fixed pool of copy-capable cores with finite memcpy bandwidth, two copies
per LSS buffer on the write path.
"""

from repro.host.platform import DfcPlatform
from repro.host.copymodel import CopyExperimentResult, HostWriteExperiment

__all__ = ["DfcPlatform", "CopyExperimentResult", "HostWriteExperiment"]
