"""Performance contracts (§5: "Require a performance contract, not a
warranty")."""

from repro.contract.perf_contract import (
    ContractReport,
    ContractTerm,
    PerformanceContract,
    characterize_device,
)

__all__ = [
    "ContractReport",
    "ContractTerm",
    "PerformanceContract",
    "characterize_device",
]
