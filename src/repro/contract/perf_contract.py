"""Performance contracts between a data system and an Open-Channel SSD.

§5: "When designing an application-specific FTL, it is essential to
either (a) precisely characterize the performance of the chosen
underlying Open-Channel SSD or (b) evaluate which Open-Channel SSD
actually complies with the performance requirements."  This module does
both: :func:`characterize_device` measures a device's latency envelope,
and :class:`PerformanceContract` declares requirements and checks a
measured device against them — including the wear dimension the paper
proposes ("performance contracts taking wear into account").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ContractViolation
from repro.obs.metrics import MetricsRegistry
from repro.ocssd.address import Ppa
from repro.ocssd.device import OpenChannelSSD


@dataclass(frozen=True)
class ContractTerm:
    """One clause: a named metric must respect a bound.

    ``kind`` is "max" (latency budgets: measured value must not exceed
    the bound) or "min" (endurance/throughput floors: measured value must
    reach the bound).
    """

    metric: str                 # e.g. "read_p99", "write_unit_mean"
    bound: float                # seconds, cycles, bytes/s ... per metric
    description: str = ""
    kind: str = "max"

    def __post_init__(self) -> None:
        if self.kind not in ("max", "min"):
            raise ValueError(f"kind must be 'max' or 'min', got {self.kind}")

    def violated_by(self, value: float) -> bool:
        if self.kind == "max":
            return value > self.bound
        return value < self.bound


@dataclass
class ContractReport:
    """Outcome of checking a contract against measurements."""

    passed: bool
    measurements: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    def require(self) -> "ContractReport":
        if not self.passed:
            raise ContractViolation("; ".join(self.violations))
        return self


class PerformanceContract:
    """A set of terms agreed between FTL and device teams."""

    def __init__(self, terms: List[ContractTerm]):
        if not terms:
            raise ValueError("a contract needs at least one term")
        names = [term.metric for term in terms]
        if len(names) != len(set(names)):
            raise ValueError("duplicate contract terms")
        self.terms = list(terms)

    def check(self, measurements: Dict[str, float]) -> ContractReport:
        """Evaluate every term; metrics missing from *measurements* are
        violations (an unmeasured clause is an unverified assumption —
        exactly the co-design risk §5 warns about)."""
        report = ContractReport(passed=True, measurements=dict(measurements))
        for term in self.terms:
            value = measurements.get(term.metric)
            if value is None:
                report.passed = False
                report.violations.append(
                    f"{term.metric}: not measured (bound {term.bound:g})")
            elif term.violated_by(value):
                report.passed = False
                comparison = "exceeds" if term.kind == "max" else "is below"
                report.violations.append(
                    f"{term.metric}: measured {value:g} {comparison} bound "
                    f"{term.bound:g} {term.description}")
        return report


def characterize_device(device: OpenChannelSSD, samples: int = 32,
                        wear_cycles: int = 0,
                        registry: Optional[MetricsRegistry] = None
                        ) -> Dict[str, float]:
    """Measure a device's latency envelope on a scratch chunk.

    Returns metrics suitable for :meth:`PerformanceContract.check`:
    ``write_unit_mean``, ``write_unit_p99``, ``read_sector_mean``,
    ``read_sector_p99``, ``reset_mean`` and ``endurance`` (the declared
    per-chunk erase budget).  ``wear_cycles`` pre-ages the scratch chunk
    so contracts can be evaluated at a given wear level.

    The raw latency samples land in a :class:`MetricsRegistry` (pass one
    in to keep them — ``contract.{write_unit,read_sector,reset}.latency_s``
    histograms); the returned dict is derived from those instruments.
    """
    geometry = device.report_geometry()
    scratch = Ppa(geometry.num_groups - 1, geometry.pus_per_group - 1,
                  geometry.chunks_per_pu - 1, 0)
    registry = registry if registry is not None else MetricsRegistry()
    writes = registry.histogram("contract.write_unit.latency_s")
    reads = registry.histogram("contract.read_sector.latency_s")
    resets = registry.histogram("contract.reset.latency_s")
    ws_min = geometry.ws_min
    payload = [b"\xA5" * geometry.sector_size] * ws_min

    chip = device.chips[(scratch.group, scratch.pu)]
    for __ in range(wear_cycles):
        chip.blocks[scratch.chunk].erase_count += 1

    units_per_chunk = geometry.sectors_per_chunk // ws_min
    written_units = 0
    for __ in range(samples):
        if written_units == units_per_chunk:
            device.flush()
            completion = device.reset(scratch)
            resets.record(completion.latency)
            written_units = 0
        ppas = [scratch.with_sector(written_units * ws_min + i)
                for i in range(ws_min)]
        completion = device.write(ppas, payload)
        if completion.ok:
            writes.record(completion.latency)
        written_units += 1
        device.flush()   # measure media reads, not controller-cache hits
        read = device.read([ppas[0]])
        if read.ok:
            reads.record(read.latency)
    device.flush()
    if written_units:
        completion = device.reset(scratch)
        resets.record(completion.latency)

    wear = chip.wear
    return {
        "write_unit_mean": writes.mean(),
        "write_unit_p99": writes.percentile(99),
        "read_sector_mean": reads.mean(),
        "read_sector_p99": reads.percentile(99),
        "reset_mean": resets.mean(),
        "endurance": float(wear.endurance),
    }
