"""Size and time units used throughout the library.

Simulated time is measured in **seconds** (floats).  NAND latencies in the
literature are quoted in microseconds; use the ``US``/``MS`` constants to
convert at the point of declaration so that magic numbers never appear in
timing code.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

US = 1e-6
MS = 1e-3
SEC = 1.0


def fmt_bytes(n: int) -> str:
    """Render a byte count with a binary-unit suffix (e.g. ``96.0 KiB``)."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration using the most natural unit (us/ms/s)."""
    if seconds < 1e-3:
        return f"{seconds / US:.1f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.2f} ms"
    return f"{seconds:.3f} s"
