"""Crash-consistency checking: randomized power cuts vs. a shadow model.

One :func:`run_crash_check` call builds an OX-Block stack, attaches a
seeded :class:`~repro.faults.FaultInjector`, runs a randomized
write/trim/flush workload until the planned power cut fires, recovers,
and then checks four invariant families against a shadow model of what
the FTL acknowledged:

* **A — structural**: the recovered mapping, chunk table and provisioner
  agree with each other and with a physical chunk scan.
* **B — durability**: every LBA reads back a version the shadow model
  allows — at least the durable floor (the newest acked version covered
  by a flush or checkpoint), never an older one, and never a torn or
  misdirected sector.
* **C — atomicity**: a multi-sector transaction is applied entirely or
  not at all; no LBA shows a transaction that its siblings lack (unless
  something newer superseded them).
* **D — functional**: the recovered FTL still round-trips a write
  through a second crash.

The shadow model mirrors the stack's documented contract: every
acknowledged operation's *mapping* is WAL-durable, but its *data* may sit
in the write buffer or device cache until a flush or checkpoint — so the
durable floor only advances at those barriers (and on acked trims, which
carry no data).  Data destroyed with an offline chunk is excused via the
FTL's ``lost_lbas`` ledger.  The operation in flight when power failed may
land either way ("maybe" versions).  Any observation outside the allowed
set raises :class:`~repro.errors.InvariantViolation` with the seed, so a
failure is a one-line repro.
"""

from __future__ import annotations

import argparse
import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvariantViolation, OutOfSpaceError, ReproError
from repro.faults.model import FaultInjector, FaultPlan
from repro.ocssd.chunk import ChunkState
from repro.ox import MediaManager, OXBlock
from repro.ox.ftl.metadata import FtlChunkState
from repro.stack import StackSpec, build_stack

_STAMP = struct.Struct("<II")   # (version, lba) tiled across the sector


@dataclass(frozen=True)
class CheckConfig:
    """One crash-consistency run: seed + fault profile + workload shape."""

    seed: int
    #: Add probabilistic program/erase faults (group 0 — the metadata
    #: region — stays protected, as a deployment would pin it to SLC).
    media_faults: bool = False
    #: Cut at a simulated time instead of a media-op count.
    time_cut: bool = False
    ops: int = 320
    lba_space: int = 96
    flush_prob: float = 0.12
    trim_prob: float = 0.06


@dataclass
class CheckResult:
    """What one run exercised — tests assert aggregate coverage on these."""

    seed: int
    cut_fired_during_workload: bool = False
    ops_run: int = 0
    txns_acked: int = 0
    txns_maybe: int = 0
    lbas_checked: int = 0
    lost_lbas: int = 0
    torn_chunks: int = 0
    programs_failed: int = 0
    erases_failed: int = 0
    gc_chunks_recycled: int = 0
    txns_replayed: int = 0
    txns_dropped: int = 0
    probe_ran: bool = False


@dataclass
class _Shadow:
    """Per-LBA acknowledged history and durable floor."""

    #: lba -> [(version, is_trim)] in global version order.
    history: Dict[int, List[Tuple[int, bool]]] = field(default_factory=dict)
    #: lba -> version of the newest item known durable (flush/ckpt/trim).
    floor: Dict[int, int] = field(default_factory=dict)
    #: lba -> versions of the operation in flight at the cut.
    maybe: Dict[int, Set[int]] = field(default_factory=dict)
    maybe_trim: Set[int] = field(default_factory=set)
    #: (version, [lbas], certain) per multi-or-single-sector write txn.
    txns: List[Tuple[int, List[int], bool]] = field(default_factory=list)

    def record(self, lba: int, version: int, is_trim: bool) -> None:
        self.history.setdefault(lba, []).append((version, is_trim))
        if is_trim:
            # Trims are WAL-flushed (FUA) before they are acknowledged and
            # carry no data: durable the moment they return.
            self.floor[lba] = version

    def raise_floor(self, before_version: Optional[int] = None) -> None:
        """A durability barrier: the newest acked item of every LBA (or
        the newest older than *before_version*) is now on media."""
        for lba, items in self.history.items():
            for version, __ in reversed(items):
                if before_version is None or version < before_version:
                    if version > self.floor.get(lba, -1):
                        self.floor[lba] = version
                    break


#: The checker's stack, declaratively: a small OX-Block drive whose GC
#: and WAL-pressure paths all fire within a few hundred ops.
CHECKER_SPEC = dict(
    geometry={"num_groups": 2, "pus_per_group": 2,
              "chunks_per_pu": 8, "pages_per_block": 6},
    ftl="oxblock",
    ftl_config={"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2,
                "gc_low_watermark": 3, "gc_high_watermark": 6,
                "wal_pressure_threshold": 0.5})


def _plan_for(cfg: CheckConfig) -> FaultPlan:
    prng = random.Random(cfg.seed ^ 0xFA17)
    return FaultPlan(
        seed=cfg.seed ^ 0xFA17,
        torn_unit_prob=0.5,
        power_cut_at_op=(None if cfg.time_cut
                         else prng.randrange(20, 1500)),
        power_cut_at_time=(prng.uniform(0.002, 0.2) if cfg.time_cut
                           else None),
        program_fail_prob=0.004 if cfg.media_faults else 0.0,
        erase_fail_prob=0.05 if cfg.media_faults else 0.0,
        # Probabilistic erase faults almost never fire before the cut:
        # GC stays in its marked group (group 0) while victims remain,
        # and group 0 is protected.  Plant grown-bad blocks instead —
        # they bypass the protection — choosing group-0 *data* chunks
        # (4..7; 0..3 hold the WAL and checkpoint slots) so the first
        # GC reset of one exercises the erase-failure + retirement path.
        grown_bad=({(0, prng.randrange(2), prng.randrange(4, 8)): 1}
                   if cfg.media_faults else {}),
        protect_groups=frozenset({0}) if cfg.media_faults else frozenset())


def _payload(version: int, lba: int, sector_size: int) -> bytes:
    return _STAMP.pack(version, lba) * (sector_size // _STAMP.size)


def _violation(cfg: CheckConfig, invariant: str, detail: str):
    raise InvariantViolation(
        f"[seed={cfg.seed} media_faults={cfg.media_faults} "
        f"time_cut={cfg.time_cut}] invariant {invariant}: {detail}")


def _parse_sector(cfg: CheckConfig, lba: int, data: bytes,
                  sector_size: int) -> int:
    """Stamp of one read-back sector; 0 means unmapped/trimmed."""
    if not any(data):
        return 0
    tile = data[:_STAMP.size]
    if data != tile * (sector_size // _STAMP.size):
        _violation(cfg, "B", f"lba {lba} read back a torn sector")
    version, stamped_lba = _STAMP.unpack(tile)
    if stamped_lba != lba:
        _violation(cfg, "B",
                   f"lba {lba} read back data stamped for lba "
                   f"{stamped_lba} (misdirected write or read)")
    return version


def run_crash_check(cfg: CheckConfig) -> CheckResult:
    """One randomized power-cut run; raises InvariantViolation on any
    post-recovery disagreement with the shadow model."""
    # The injector attaches *after* the FTL formats, so format-time media
    # ops never count toward the op-indexed power cut.
    stack = build_stack(StackSpec(**CHECKER_SPEC))
    device, media, ftl = stack.device, stack.media, stack.ftl
    injector = FaultInjector(_plan_for(cfg))
    injector.attach(device)
    geometry = media.geometry
    sector_size = geometry.sector_size

    result = CheckResult(seed=cfg.seed)
    shadow = _Shadow()
    rng = random.Random(cfg.seed ^ 0x5EED)
    next_version = 1

    # -- workload, until the cut -----------------------------------------
    for __ in range(cfg.ops):
        if injector.tripped:
            break
        ckpt_before = ftl.stats.checkpoints
        pre_version = next_version
        roll = rng.random()
        ok = True
        if roll < cfg.flush_prob:
            kind, lbas, version = "flush", [], 0
            try:
                ftl.flush()
            except ReproError:
                ok = False
        elif roll < cfg.flush_prob + cfg.trim_prob:
            kind = "trim"
            version = next_version
            next_version += 1
            lbas = [rng.randrange(cfg.lba_space)]
            try:
                ftl.trim(lbas[0])
            except ReproError:
                ok = False
        else:
            kind = "write"
            version = next_version
            next_version += 1
            span = rng.randint(1, 4)
            start = rng.randrange(cfg.lba_space - span + 1)
            lbas = list(range(start, start + span))
            data = b"".join(_payload(version, lba, sector_size)
                            for lba in lbas)
            try:
                ftl.write(start, data)
            except ReproError:
                ok = False
        result.ops_run += 1

        if injector.tripped:
            # In flight at the cut: may have landed either way, whatever
            # the call reported (a real power loss kills the host before
            # any acknowledgment is acted upon).
            if kind == "write":
                for lba in lbas:
                    shadow.maybe.setdefault(lba, set()).add(version)
                shadow.txns.append((version, lbas, False))
                result.txns_maybe += 1
            elif kind == "trim":
                shadow.maybe_trim.add(lbas[0])
            break
        if ok:
            if kind == "write":
                for lba in lbas:
                    shadow.record(lba, version, False)
                shadow.txns.append((version, lbas, True))
                result.txns_acked += 1
            elif kind == "trim":
                shadow.record(lbas[0], version, True)
            if ftl.stats.checkpoints > ckpt_before:
                # A checkpoint drains the cache before it snapshots:
                # everything acked before this op is durable now.
                shadow.raise_floor(before_version=pre_version)
            if kind == "flush":
                shadow.raise_floor()
        else:
            # Failed without a cut (media fault, space exhaustion): the
            # FTL made no durability promise, but partial effects may
            # still surface — treat like an in-flight op.
            if kind == "write":
                for lba in lbas:
                    shadow.maybe.setdefault(lba, set()).add(version)
                shadow.txns.append((version, lbas, False))
                result.txns_maybe += 1
            elif kind == "trim":
                shadow.maybe_trim.add(lbas[0])

    result.cut_fired_during_workload = injector.tripped
    if not injector.tripped:
        injector.power_cut()    # quiet system: cut at idle
    result.gc_chunks_recycled = ftl.gc.stats.chunks_recycled
    result.torn_chunks = injector.stats.torn_chunks
    result.programs_failed = injector.stats.programs_failed
    result.erases_failed = injector.stats.erases_failed
    ftl.crash()
    # Drain the processes the cut abandoned mid-op (an unjoined write,
    # a unit flush): they fail with POWER_FAIL noise that must not
    # surface inside recovery's run_until.
    while True:
        try:
            device.sim.run()
            break
        except ReproError:
            continue
    lost = set(ftl.lost_lbas)

    # -- recover ----------------------------------------------------------
    injector.quiesce()
    injector.restore_power()
    ftl2, report = OXBlock.recover(MediaManager(device), ftl.config)
    lost.update(report.lost_lbas)
    result.lost_lbas = len(lost)
    result.txns_replayed = report.txns_applied
    result.txns_dropped = report.txns_dropped

    # -- invariant A: structure -------------------------------------------
    data_keys = set(ftl2.layout.data_chunk_keys())
    mapped_per_chunk: Dict[Tuple[int, int, int], int] = {}
    for lba, linear in ftl2.page_map.items():
        ppa = geometry.delinearize(linear)
        key = ppa.chunk_key()
        if key not in data_keys:
            _violation(cfg, "A", f"lba {lba} maps outside the data region "
                                 f"({key})")
        descriptor = media.chunk_info(ppa)
        if descriptor.state is ChunkState.OFFLINE:
            _violation(cfg, "A", f"lba {lba} maps into offline chunk {key}")
        if ppa.sector >= descriptor.write_pointer:
            _violation(cfg, "A",
                       f"lba {lba} maps at {ppa} above the chunk write "
                       f"pointer {descriptor.write_pointer}")
        mapped_per_chunk[key] = mapped_per_chunk.get(key, 0) + 1
    free_rows = 0
    for key, info in ftl2.chunk_table.items():
        mapped = mapped_per_chunk.get(key, 0)
        if info.state is FtlChunkState.BAD and mapped:
            _violation(cfg, "A", f"bad chunk {key} still has {mapped} "
                                 f"mapped sectors")
        if info.valid_count != mapped:
            _violation(cfg, "A",
                       f"chunk {key} valid_count={info.valid_count} but "
                       f"{mapped} lbas map into it")
        if info.state is FtlChunkState.FREE:
            free_rows += 1
    if ftl2.provisioner.free_chunks() != free_rows:
        _violation(cfg, "A",
                   f"provisioner sees {ftl2.provisioner.free_chunks()} "
                   f"free chunks, chunk table has {free_rows}")

    # -- invariant B: durability ------------------------------------------
    check_lbas = (set(shadow.history) | set(shadow.maybe)
                  | shadow.maybe_trim)
    observed: Dict[int, int] = {}
    for lba in sorted(check_lbas):
        data = ftl2.read(lba, 1)
        version = _parse_sector(cfg, lba, data, sector_size)
        observed[lba] = version
        result.lbas_checked += 1
        if lba in lost:
            continue   # destroyed with its chunk: any content excused
        items = shadow.history.get(lba, [])
        floor = shadow.floor.get(lba)
        allowed = {v for v, is_trim in items
                   if not is_trim and (floor is None or v >= floor)}
        allowed |= shadow.maybe.get(lba, set())
        if version == 0:
            zero_ok = (floor is None
                       or any(is_trim and v >= floor for v, is_trim in items)
                       or lba in shadow.maybe_trim)
            if not zero_ok:
                _violation(cfg, "B",
                           f"lba {lba} reads unmapped but version {floor} "
                           f"was acked and durable")
        elif version not in allowed:
            _violation(cfg, "B",
                       f"lba {lba} reads version {version}; allowed "
                       f"{sorted(allowed)} (floor {floor})")

    # -- invariant C: atomicity -------------------------------------------
    for version, lbas, __certain in shadow.txns:
        if len(lbas) < 2:
            continue
        if not any(observed.get(lba) == version for lba in lbas):
            continue
        for lba in lbas:
            if observed.get(lba) == version or lba in lost:
                continue
            newer = [v for v, __ in shadow.history.get(lba, [])
                     if v > version]
            newer += [v for v in shadow.maybe.get(lba, set())
                      if v > version]
            if observed.get(lba) in newer:
                continue
            if observed.get(lba) == 0 and (
                    lba in shadow.maybe_trim
                    or any(is_trim and v > version
                           for v, is_trim in shadow.history.get(lba, []))):
                continue
            _violation(cfg, "C",
                       f"txn {version} partially applied: lba {lba} "
                       f"reads {observed.get(lba)} while a sibling "
                       f"reads {version}")

    # -- invariant D: functional round-trip -------------------------------
    probe_lba = 0
    probe_version = next_version
    probe = _payload(probe_version, probe_lba, sector_size)
    try:
        ftl2.write(probe_lba, probe)
        ftl2.flush()
    except OutOfSpaceError:
        pass    # device genuinely full; the write path already degraded
    else:
        ftl2.crash()
        ftl3, __ = OXBlock.recover(MediaManager(device), ftl.config)
        if ftl3.read(probe_lba, 1) != probe:
            _violation(cfg, "D",
                       "flushed post-recovery write did not survive a "
                       "second crash")
        result.probe_ran = True
    injector.detach()
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Randomized power-cut crash-consistency checker")
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of seeds per profile (default 10)")
    parser.add_argument("--base-seed", type=int, default=0)
    args = parser.parse_args(argv)

    configs: List[CheckConfig] = []
    for i in range(args.seeds):
        configs.append(CheckConfig(seed=args.base_seed + i))
        configs.append(CheckConfig(seed=args.base_seed + 100 + i,
                                   media_faults=True))
        configs.append(CheckConfig(seed=args.base_seed + 200 + i,
                                   time_cut=True))
    acked = maybe = checked = 0
    for cfg in configs:
        result = run_crash_check(cfg)
        acked += result.txns_acked
        maybe += result.txns_maybe
        checked += result.lbas_checked
    print(f"crash-consistency: {len(configs)} runs, {acked} acked txns, "
          f"{maybe} in-flight txns, {checked} lbas verified, 0 violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
