"""The fault injector: a seeded plan of what breaks, and when.

Design rules:

* **Zero cost when disabled.**  The device and every chip carry a
  ``faults`` attribute that is ``None`` in normal operation; the hot paths
  pay one attribute load and identity check per media op, nothing else.
* **Deterministic.**  All randomness comes from one ``random.Random``
  seeded by the plan; media ops are counted in simulation order, so the
  same (plan, workload) pair replays the same faults and the same cut.
* **Power cuts reuse the crash contract.**  A cut optionally tears the
  admitted-but-unflushed tail of some chunks at sector granularity (a
  torn ``ws_min`` write unit), then calls the device's
  :meth:`~repro.ocssd.device.OpenChannelSSD.crash_volatile` — the same
  epoch-bump / cache-drop / write-pointer-rollback path the controller
  already implements — and freezes the media: every later command
  completes with ``POWER_FAIL`` until :meth:`FaultInjector.restore_power`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple, TYPE_CHECKING

from repro.errors import ReproError
from repro.sidecar import FAULTS_SLOT, Sidecar

if TYPE_CHECKING:
    from repro.ocssd.device import OpenChannelSSD

PuKey = Tuple[int, int]
BlockKey = Tuple[int, int, int]   # (group, pu, block index)


@dataclass
class FaultPlan:
    """A deterministic description of what goes wrong, and when."""

    seed: int = 0
    #: Per-program-operation probability of a permanent program failure
    #: (the block grows bad, the op raises ``MediaError``).
    program_fail_prob: float = 0.0
    #: Per-read-operation probability of an uncorrectable read error.
    read_fail_prob: float = 0.0
    #: Per-erase-operation probability of an erase failure (block retires).
    erase_fail_prob: float = 0.0
    #: ``(group, pu, block) -> erase cycle`` at which the block grows bad.
    grown_bad: Dict[BlockKey, int] = field(default_factory=dict)
    #: Cut power once the device has performed this many media ops.
    power_cut_at_op: Optional[int] = None
    #: Cut power at this simulated time (checked on the next media op).
    power_cut_at_time: Optional[float] = None
    #: Probability that a chunk with admitted-but-unflushed sectors keeps
    #: a partial prefix of them at the cut (a torn write unit).
    torn_unit_prob: float = 0.0
    #: Groups exempt from the *probabilistic* faults — e.g. a metadata
    #: region a deployment would put on SLC.  Power cuts and torn units
    #: still apply everywhere.
    protect_groups: FrozenSet[int] = frozenset()

    def validate(self) -> None:
        for name in ("program_fail_prob", "read_fail_prob",
                     "erase_fail_prob", "torn_unit_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {value}")
        if self.power_cut_at_op is not None and self.power_cut_at_op < 1:
            raise ReproError(
                f"power_cut_at_op must be >= 1, got {self.power_cut_at_op}")


@dataclass
class FaultStats:
    media_ops: int = 0
    programs_failed: int = 0
    reads_failed: int = 0
    erases_failed: int = 0
    power_cuts: int = 0
    torn_chunks: int = 0
    torn_sectors_kept: int = 0
    ops_rejected_off: int = 0


class FaultInjector(Sidecar):
    """Attaches one :class:`FaultPlan` to one device."""

    slot = FAULTS_SLOT

    def __init__(self, plan: FaultPlan):
        super().__init__()
        plan.validate()
        self.plan = plan
        self.powered = True
        self.tripped = False          # has the power cut fired?
        self.cut_time: Optional[float] = None
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._quiesced = False

    # -- wiring (Sidecar protocol) -----------------------------------------

    def sidecar_targets(self, device: "OpenChannelSSD"):
        # The controller carries no faults slot: injection happens at the
        # device boundary (power state) and inside the chips (media ops).
        return (device, *device.chips.values())

    def _sidecar_wire(self, device: "OpenChannelSSD") -> None:
        for (group, pu), chip in device.chips.items():
            chip.fault_key = (group, pu)

    def quiesce(self) -> None:
        """Stop injecting: probabilistic faults, grown-bad plans and pending
        cuts are all disabled.  Recovery runs call this so the post-crash
        world is only as broken as the crash left it."""
        self._quiesced = True

    def restore_power(self) -> None:
        """Re-power the device after a cut.  Media state stays exactly as
        the cut froze it; volatile state was already discarded."""
        self.powered = True

    # -- chip / device hook entry points ----------------------------------

    def on_media_op(self, kind: str) -> bool:
        """Count one media op and fire a pending power cut.

        Returns False when the device is unpowered: the op must then have
        no effect at all (the chip returns 0.0 media time untouched).
        """
        if not self.powered:
            self.stats.ops_rejected_off += 1
            return False
        if self._quiesced:
            return True
        self.stats.media_ops += 1
        plan = self.plan
        if (plan.power_cut_at_op is not None
                and self.stats.media_ops >= plan.power_cut_at_op):
            self.power_cut()
            return False
        if (plan.power_cut_at_time is not None
                and self.device.sim.now >= plan.power_cut_at_time):
            self.power_cut()
            return False
        return True

    def _roll(self, key: PuKey, prob: float) -> bool:
        if self._quiesced or not prob or key[0] in self.plan.protect_groups:
            return False
        return self._rng.random() < prob

    def program_fails(self, key: PuKey) -> bool:
        if self._roll(key, self.plan.program_fail_prob):
            self.stats.programs_failed += 1
            return True
        return False

    def read_fails(self, key: PuKey) -> bool:
        if self._roll(key, self.plan.read_fail_prob):
            self.stats.reads_failed += 1
            return True
        return False

    def erase_fails(self, key: PuKey, block: int, erase_count: int) -> bool:
        if not self._quiesced:
            planned = self.plan.grown_bad.get((key[0], key[1], block))
            if planned is not None and erase_count >= planned:
                self.stats.erases_failed += 1
                return True
        if self._roll(key, self.plan.erase_fail_prob):
            self.stats.erases_failed += 1
            return True
        return False

    # -- the cut ----------------------------------------------------------

    def power_cut(self) -> None:
        """Cut power now.

        First, optionally tear: each chunk with admitted-but-unflushed
        sectors keeps, with ``torn_unit_prob``, a random non-empty prefix
        of them — the partially-programmed write unit a real power loss
        leaves behind.  Then the device loses everything volatile
        (``crash_volatile``) and goes dark until ``restore_power``.
        """
        if self.device is None:
            raise ReproError("fault injector is not attached to a device")
        if self.tripped:
            return
        self.tripped = True
        self.powered = False
        self.cut_time = self.device.sim.now
        self.stats.power_cuts += 1
        torn_prob = self.plan.torn_unit_prob
        if torn_prob:
            for chunk in self.device.chunks.values():
                unflushed = chunk.write_pointer - chunk.flushed_pointer
                if unflushed <= 0:
                    continue
                if self._rng.random() >= torn_prob:
                    continue
                keep = self._rng.randrange(1, unflushed + 1)
                chunk.mark_flushed(chunk.flushed_pointer + keep)
                self.stats.torn_chunks += 1
                self.stats.torn_sectors_kept += keep
        self.device.crash_volatile()
