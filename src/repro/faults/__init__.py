"""Deterministic fault injection and crash-consistency checking.

``repro.faults`` is the failure-testing companion to the simulator: it
attaches to one :class:`~repro.ocssd.device.OpenChannelSSD` and makes the
kinds of things go wrong that the paper's durability machinery (§4.3 WAL +
checkpoints + recovery) exists to survive — power cuts at arbitrary
points, program/erase/read failures, grown bad blocks, torn write units.
Everything is driven by one seeded RNG per plan, so a failing scenario is
a (seed, plan) pair that replays exactly.
"""

from repro.faults.model import FaultInjector, FaultPlan, FaultStats

__all__ = ["FaultInjector", "FaultPlan", "FaultStats"]
