"""The §3 design space and the Figure 1 placement of SSD models.

Dimensions (§3.1): storage chip, FTL placement, FTL integration, FTL
transparency, FTL abstraction, FTL access.  Figure 1 organizes a dozen
SSD models on the (abstraction x placement) grid with the remaining
dimensions annotated; this module encodes exactly that figure so the
taxonomy is testable and the grid reproducible
(:func:`render_figure1`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class FtlAbstraction(enum.Enum):
    BLOCK_DEVICE = "block-device"
    ZNS = "zns"
    APP_SPECIFIC = "app-specific"


class FtlPlacement(enum.Enum):
    HOST = "host"
    CONTROLLER = "controller"


class FtlIntegration(enum.Enum):
    FIRMWARE = "embedded"
    KERNEL = "kernel space"
    USER_SPACE = "user space"


class FtlTransparency(enum.Enum):
    BLACK_BOX = "black box"
    WHITE_BOX = "white box"


class FtlAccess(enum.Enum):
    HOST = "host"
    CONTROLLER = "controller"


@dataclass(frozen=True)
class SsdModel:
    """One cell entry of Figure 1."""

    name: str
    abstraction: FtlAbstraction
    placement: FtlPlacement
    chips: str                      # e.g. "MLC/TLC", "any", "QLC"
    integration: FtlIntegration
    transparency: FtlTransparency
    access: FtlAccess
    available: bool = True          # lighter color in the figure = not yet

    def dimensions(self) -> Dict[str, str]:
        return {
            "abstraction": self.abstraction.value,
            "placement": self.placement.value,
            "chips": self.chips,
            "integration": self.integration.value,
            "transparency": self.transparency.value,
            "access": self.access.value,
        }


FTL_ABSTRACTIONS = tuple(FtlAbstraction)
FTL_PLACEMENTS = tuple(FtlPlacement)

# The twelve models of Figure 1, row by row.
SSD_MODELS: Tuple[SsdModel, ...] = (
    SsdModel("Fusion-IO", FtlAbstraction.BLOCK_DEVICE, FtlPlacement.HOST,
             "SLC/MLC", FtlIntegration.KERNEL, FtlTransparency.BLACK_BOX,
             FtlAccess.HOST),
    SsdModel("pblk", FtlAbstraction.BLOCK_DEVICE, FtlPlacement.HOST,
             "MLC/TLC", FtlIntegration.KERNEL, FtlTransparency.WHITE_BOX,
             FtlAccess.HOST),
    SsdModel("SPDK", FtlAbstraction.BLOCK_DEVICE, FtlPlacement.HOST,
             "MLC/TLC", FtlIntegration.USER_SPACE,
             FtlTransparency.WHITE_BOX, FtlAccess.HOST),
    SsdModel("LightNVM target for ZNS", FtlAbstraction.ZNS,
             FtlPlacement.HOST, "TLC", FtlIntegration.KERNEL,
             FtlTransparency.WHITE_BOX, FtlAccess.HOST, available=False),
    SsdModel("RocksDB NVM engine", FtlAbstraction.APP_SPECIFIC,
             FtlPlacement.HOST, "MLC/TLC", FtlIntegration.USER_SPACE,
             FtlTransparency.WHITE_BOX, FtlAccess.HOST),
    SsdModel("Traditional SSDs", FtlAbstraction.BLOCK_DEVICE,
             FtlPlacement.CONTROLLER, "any", FtlIntegration.FIRMWARE,
             FtlTransparency.BLACK_BOX, FtlAccess.HOST),
    SsdModel("Smart SSD", FtlAbstraction.BLOCK_DEVICE,
             FtlPlacement.CONTROLLER, "QLC", FtlIntegration.FIRMWARE,
             FtlTransparency.BLACK_BOX, FtlAccess.CONTROLLER),
    SsdModel("OX-Block", FtlAbstraction.BLOCK_DEVICE,
             FtlPlacement.CONTROLLER, "MLC", FtlIntegration.USER_SPACE,
             FtlTransparency.WHITE_BOX, FtlAccess.CONTROLLER),
    SsdModel("ZNS SSD", FtlAbstraction.ZNS, FtlPlacement.CONTROLLER,
             "any", FtlIntegration.FIRMWARE, FtlTransparency.BLACK_BOX,
             FtlAccess.HOST, available=False),
    SsdModel("OX-ZNS", FtlAbstraction.ZNS, FtlPlacement.CONTROLLER,
             "TLC", FtlIntegration.USER_SPACE, FtlTransparency.WHITE_BOX,
             FtlAccess.CONTROLLER, available=False),
    SsdModel("KV-SSD", FtlAbstraction.APP_SPECIFIC,
             FtlPlacement.CONTROLLER, "QLC", FtlIntegration.FIRMWARE,
             FtlTransparency.BLACK_BOX, FtlAccess.HOST),
    SsdModel("Pliops", FtlAbstraction.APP_SPECIFIC,
             FtlPlacement.CONTROLLER, "TLC", FtlIntegration.USER_SPACE,
             FtlTransparency.BLACK_BOX, FtlAccess.CONTROLLER),
    SsdModel("OX-Eleos, LightLSM", FtlAbstraction.APP_SPECIFIC,
             FtlPlacement.CONTROLLER, "MLC", FtlIntegration.USER_SPACE,
             FtlTransparency.WHITE_BOX, FtlAccess.CONTROLLER),
)


def models_in_quadrant(abstraction: FtlAbstraction,
                       placement: FtlPlacement) -> List[SsdModel]:
    """All models in one cell of the Figure 1 grid."""
    return [model for model in SSD_MODELS
            if model.abstraction is abstraction
            and model.placement is placement]


def figure1_grid() -> Dict[Tuple[FtlPlacement, FtlAbstraction],
                           List[SsdModel]]:
    """The full grid, keyed by (placement row, abstraction column)."""
    return {(placement, abstraction):
            models_in_quadrant(abstraction, placement)
            for placement in FTL_PLACEMENTS
            for abstraction in FTL_ABSTRACTIONS}


def render_figure1() -> str:
    """A textual rendition of Figure 1."""
    lines: List[str] = []
    header = f"{'FTL placement':14s} | " + " | ".join(
        f"{a.value:32s}" for a in FTL_ABSTRACTIONS)
    lines.append(header)
    lines.append("-" * len(header))
    for placement in FTL_PLACEMENTS:
        cells = []
        for abstraction in FTL_ABSTRACTIONS:
            models = models_in_quadrant(abstraction, placement)
            names = ", ".join(
                model.name + ("" if model.available else "*")
                for model in models)
            cells.append(f"{names:32s}")
        lines.append(f"{placement.value:14s} | " + " | ".join(cells))
    lines.append("(* = not fully available at publication time)")
    return "\n".join(lines)
