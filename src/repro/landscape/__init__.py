"""The SSD landscape design space of §3 and Figure 1, as a queryable model."""

from repro.landscape.model import (
    FTL_ABSTRACTIONS,
    FTL_PLACEMENTS,
    SSD_MODELS,
    FtlAbstraction,
    FtlAccess,
    FtlIntegration,
    FtlPlacement,
    FtlTransparency,
    SsdModel,
    figure1_grid,
    models_in_quadrant,
    render_figure1,
)

__all__ = [
    "FTL_ABSTRACTIONS",
    "FTL_PLACEMENTS",
    "SSD_MODELS",
    "FtlAbstraction",
    "FtlAccess",
    "FtlIntegration",
    "FtlPlacement",
    "FtlTransparency",
    "SsdModel",
    "figure1_grid",
    "models_in_quadrant",
    "render_figure1",
]
