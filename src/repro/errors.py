"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError` so
applications can catch library failures with a single handler while still
distinguishing device-level faults (media errors, geometry violations) from
FTL-level faults (transaction aborts, recovery failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class GeometryError(ReproError):
    """An address or configuration does not fit the device geometry."""


class MediaError(ReproError):
    """A media-level failure (program/erase/read failure, worn-out block)."""


class WritePointerError(ReproError):
    """A write violated the sequential-write-within-chunk rule."""


class ChunkStateError(ReproError):
    """A command was issued against a chunk in an incompatible state."""


class WriteUnitError(ReproError):
    """A write did not respect the device's minimum write unit (ws_min)."""


class FTLError(ReproError):
    """Generic FTL-level failure."""


class OutOfSpaceError(FTLError):
    """The FTL ran out of free chunks (even after garbage collection)."""


class RecoveryError(FTLError):
    """Crash recovery could not restore a consistent state."""


class TransactionError(FTLError):
    """A transactional FTL operation could not be made atomic/durable."""


class ZoneError(ReproError):
    """A ZNS zone was used in violation of the zone state machine."""


class ContractViolation(ReproError):
    """A measured behaviour violated a declared performance contract."""


class InvariantViolation(ReproError):
    """A crash-consistency invariant did not hold after recovery."""
