"""Measurement primitives: throughput time series, latency, utilization.

These are the instruments behind the paper's figures: Figure 6 is a
throughput-vs-time series (:class:`ThroughputRecorder`), Figure 7 is a CPU
utilization measurement (:class:`UtilizationTracker`), and the GC-locality
experiment relies on latency observations (:class:`LatencyRecorder`).
"""

from __future__ import annotations

from typing import List, Tuple

# Counter and the percentile machinery live in repro.obs.metrics (the
# metrics registry is the one home for instruments); Histogram is only
# imported as the base of the LatencyRecorder alias below.
from repro.obs.metrics import Histogram
from repro.sim.core import Simulator


class ThroughputRecorder:
    """Buckets completion events into fixed-width time windows.

    ``record(now)`` adds one operation at simulated time *now*; ``series()``
    yields ``(window_start_time, ops_per_second)`` pairs, which is exactly
    the shape of the Figure 6 curves.
    """

    def __init__(self, window: float = 1.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._buckets: dict[int, int] = {}
        self.total = 0

    def record(self, now: float, count: int = 1) -> None:
        index = int(now / self.window)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(time, ops/sec)`` points covering every window from the
        first to the last recorded one (empty windows report 0)."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [(index * self.window,
                 self._buckets.get(index, 0) / self.window)
                for index in range(first, last + 1)]

    def average(self, elapsed: float) -> float:
        """Average ops/sec over *elapsed* seconds of simulated time."""
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed


class LatencyRecorder(Histogram):
    """Collects individual latency samples and summarizes them.

    An alias of :class:`repro.obs.metrics.Histogram` — one nearest-rank
    percentile implementation for the whole repo — kept under its
    historical name for the measurement-focused call sites.
    """


class UtilizationTracker:
    """Integrates the busy time of a unit with explicit begin/end marks.

    Unlike :class:`repro.sim.resources.Resource` (busy when *any* unit is in
    use) this tracks the aggregate of *n* units — e.g. total CPU-seconds
    consumed across the cores of the DFC controller — so utilization can
    exceed the time axis and is reported against ``capacity * elapsed``.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._busy_seconds = 0.0
        self._started = sim.now

    def add_busy(self, seconds: float) -> None:
        """Account *seconds* of busy time (CPU-seconds, bus-seconds, ...)."""
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        self._busy_seconds += seconds

    def busy_seconds(self) -> float:
        return self._busy_seconds

    def reset(self) -> None:
        """Restart the measurement window at the current simulated time."""
        self._busy_seconds = 0.0
        self._started = self.sim.now

    def utilization(self) -> float:
        """Busy fraction of the available ``capacity * elapsed`` budget."""
        elapsed = self.sim.now - self._started
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_seconds / (self.capacity * elapsed))
