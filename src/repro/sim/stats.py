"""Measurement primitives: throughput time series, latency, utilization.

These are the instruments behind the paper's figures: Figure 6 is a
throughput-vs-time series (:class:`ThroughputRecorder`), Figure 7 is a CPU
utilization measurement (:class:`UtilizationTracker`), and the GC-locality
experiment relies on latency observations (:class:`LatencyRecorder`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.sim.core import Simulator


class Counter:
    """A named monotonically-increasing counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount


class ThroughputRecorder:
    """Buckets completion events into fixed-width time windows.

    ``record(now)`` adds one operation at simulated time *now*; ``series()``
    yields ``(window_start_time, ops_per_second)`` pairs, which is exactly
    the shape of the Figure 6 curves.
    """

    def __init__(self, window: float = 1.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._buckets: dict[int, int] = {}
        self.total = 0

    def record(self, now: float, count: int = 1) -> None:
        index = int(now / self.window)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(time, ops/sec)`` points covering every window from the
        first to the last recorded one (empty windows report 0)."""
        if not self._buckets:
            return []
        first = min(self._buckets)
        last = max(self._buckets)
        return [(index * self.window,
                 self._buckets.get(index, 0) / self.window)
                for index in range(first, last + 1)]

    def average(self, elapsed: float) -> float:
        """Average ops/sec over *elapsed* seconds of simulated time."""
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed


class LatencyRecorder:
    """Collects individual latency samples and summarizes them."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        self._samples.extend(latencies)

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; *q* in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def samples(self) -> Sequence[float]:
        return tuple(self._samples)


class UtilizationTracker:
    """Integrates the busy time of a unit with explicit begin/end marks.

    Unlike :class:`repro.sim.resources.Resource` (busy when *any* unit is in
    use) this tracks the aggregate of *n* units — e.g. total CPU-seconds
    consumed across the cores of the DFC controller — so utilization can
    exceed the time axis and is reported against ``capacity * elapsed``.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._busy_seconds = 0.0
        self._started = sim.now

    def add_busy(self, seconds: float) -> None:
        """Account *seconds* of busy time (CPU-seconds, bus-seconds, ...)."""
        if seconds < 0:
            raise ValueError(f"negative busy time: {seconds}")
        self._busy_seconds += seconds

    def busy_seconds(self) -> float:
        return self._busy_seconds

    def reset(self) -> None:
        """Restart the measurement window at the current simulated time."""
        self._busy_seconds = 0.0
        self._started = self.sim.now

    def utilization(self) -> float:
        """Busy fraction of the available ``capacity * elapsed`` budget."""
        elapsed = self.sim.now - self._started
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_seconds / (self.capacity * elapsed))
