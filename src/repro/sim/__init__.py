"""Minimal discrete-event simulation kernel.

The paper's evaluation ran on real hardware (a DFC card plus CNEX Labs
Open-Channel SSDs).  This package is the substitute substrate: a small,
deterministic, generator-based discrete-event simulator in the style of
simpy, plus the resource and statistics primitives the device and FTL
models are built on.

Public API::

    from repro.sim import Simulator, Interrupt, Resource, Store

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(1.0)
        return "done"

    proc = sim.spawn(worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from repro.sim.core import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.stats import (
    LatencyRecorder,
    ThroughputRecorder,
    UtilizationTracker,
)

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "LatencyRecorder",
    "ThroughputRecorder",
    "UtilizationTracker",
]
