"""The discrete-event simulation core: events, processes and the scheduler.

Design notes
------------
* Time is a float (seconds).  The event queue is a *calendar queue*: a
  heap of distinct trigger times, each owning a FIFO bucket of the
  entries scheduled for that instant.  Pushes append to the bucket (no
  tuple allocation, no heap traffic unless the time is new) and the run
  loop drains a whole bucket per heap pop, so same-timestamp events —
  zero-delay wakeups, event triggers at ``now``, parallel-unit
  completions — cost O(1) amortized instead of O(log n) each.
* Determinism: pushes happen in program order, so FIFO bucket order
  equals the ``(time, sequence)`` order of the classic one-entry-per-
  event heap.  :class:`HeapqSimulator` keeps that original engine alive,
  and the equivalence suite verifies both engines produce identical
  clocks, event counts and per-op latencies on randomized workloads.
* Processes are plain Python generators.  A process yields :class:`Event`
  objects (timeouts, resource requests, other processes) and is resumed with
  the event's value once the event triggers, mirroring simpy's protocol.
* An event is *triggered* when its outcome is decided and *processed* once
  its callbacks have run inside the event loop.  The distinction matters for
  :class:`Timeout`, which is triggered at creation but only processed after
  its delay elapses.
* There is deliberately no wall-clock anywhere: a simulation run is a pure
  function of its inputs, which the test suite relies on.
* The generator-driving path (``Process._resume``/``_advance``) and the
  scheduler loops are written allocation-free: no closures per step, no
  bootstrap Event per process, and ``yield sim.timeout(dt)`` — the dominant
  wait in the device model — registers the resumption directly on the
  timeout's callback list.  Every fast path schedules exactly as many
  entries as the general path it replaces, so event ordering (and
  therefore every simulated clock reading) is unchanged.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    Used by the failure-injection machinery (e.g. simulating ``kill -9`` of
    the OX process): the interrupt carries a ``cause`` describing why the
    process was killed.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts untriggered; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once.  Callbacks run when the scheduler processes
    the event, at the simulation time it was triggered for.
    """

    __slots__ = ("sim", "value", "_callbacks", "_triggered", "_processed",
                 "_ok", "_defused", "abandon_callback")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self._ok = True
        self._defused = False
        # Resources set this so an interrupted waiter can hand back
        # whatever the event would have granted (see Process.interrupt).
        self.abandon_callback: Optional[Callable[["Event"], None]] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters with *value*."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive *exc* as a throw."""
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self._trigger(ok=False, value=exc)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event is processed.

        Registering on an already-processed event schedules the callback at
        the current simulation time, so it still runs inside the event loop.
        """
        if self._processed:
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not crash."""
        self._defused = True

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = ok
        self.value = value
        sim = self.sim
        sim._push(sim.now, self)

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)
        elif not self._ok and not self._defused:
            # A failure nobody waited for must not vanish silently.
            raise self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("processed" if self._processed
                 else "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that is processed automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + immediate trigger: a timeout is born
        # triggered, so the two-step init would write half these fields
        # twice on the hottest allocation in the simulator.
        self.sim = sim
        self.value = value
        self._callbacks = []
        self._triggered = True
        self._processed = False
        self._ok = True
        self._defused = False
        self.abandon_callback = None
        self.delay = delay
        sim._push(sim.now + delay, self)


class _BootstrapToken:
    """Placeholder ``_waiting_on`` value between Process creation and its
    first resumption.  Never enters the heap; only ``interrupt`` ever looks
    at it (and finds no abandon callback)."""

    __slots__ = ()
    abandon_callback = None


_BOOTSTRAP = _BootstrapToken()


class Process(Event):
    """A running generator.  As an :class:`Event` it triggers when the
    generator returns (value = the generator's return value) or raises
    (the failure propagates to any process joining on it)."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # First resumption goes straight on the heap as a bound-method call
        # instead of a throwaway bootstrap Event; one sequence number either
        # way, so sibling processes start in the same order as before.
        self._waiting_on: Optional[Any] = _BOOTSTRAP
        sim._schedule_call(self._bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def _bootstrap(self) -> None:
        if self._waiting_on is not _BOOTSTRAP or self._triggered:
            # Interrupted (or failed) before the first step ran; the
            # scheduled Interrupt throw will reach the generator instead.
            return
        self._waiting_on = None
        self._advance(None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Any event the process was waiting on is abandoned (a later wake-up
        from it is ignored); if that event carries an ``abandon_callback``
        — a resource grant, for instance — it is invoked so the resource
        can reclaim the unit.  Interrupting a finished process is a no-op,
        matching ``kill`` on an exited pid.
        """
        if self._triggered:
            return
        abandoned = self._waiting_on
        self._waiting_on = None
        if abandoned is not None and abandoned.abandon_callback is not None:
            abandoned.abandon_callback(abandoned)

        def deliver() -> None:
            if self._triggered:
                return
            self._advance(None, Interrupt(cause))

        self.sim._schedule_call(deliver)

    # -- generator driving ------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._triggered or event is not self._waiting_on:
            if not event._ok:
                event.defuse()
            return
        self._waiting_on = None
        if event._ok:
            self._advance(event.value, None)
        else:
            event.defuse()
            self._advance(None, event.value)

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        generator = self._generator
        try:
            if exc is None:
                target = generator.send(value)
            else:
                target = generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as failure:  # noqa: BLE001 - goes to joiners
            self.fail(failure)
            return
        # ``yield sim.timeout(dt)`` dominates device-model waits: a fresh
        # Timeout is by construction unprocessed with no other waiters, so
        # the resumption hooks onto its callback list directly.
        if target.__class__ is Timeout:
            self._waiting_on = target
            if target._processed:
                target.add_callback(self._resume)
            else:
                target._callbacks.append(self._resume)
            return
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"))
            return
        self._waiting_on = target
        if target._processed:
            target.add_callback(self._resume)
        else:
            target._callbacks.append(self._resume)


class Simulator:
    """The event loop: a clock plus a calendar queue of pending work.

    The queue is a heap of *distinct* trigger times plus one FIFO bucket
    (a deque of entries) per time.  Scheduling order is identical to a
    ``(time, sequence)`` heap — see :class:`HeapqSimulator`, the retained
    reference engine — but same-instant entries share one heap node.
    """

    def __init__(self):
        self.now: float = 0.0
        self._times: list[float] = []          # heap of distinct times
        self._buckets: dict[float, deque] = {}  # time -> FIFO of entries
        # Queue entries popped and executed so far; the perf harness
        # reports this as simulated-events-processed/sec.
        self.events_processed = 0
        # Observability (repro.obs): None unless a hub is attached.  Layers
        # built on this simulator inherit the hub from here, and the only
        # instrumented path in the core is spawn() — the inner event loop
        # stays untouched.
        self.obs = None
        # QoS scheduler (repro.qos): None unless one is attached.  Hosts
        # and FTL background work (GC, compaction) inherit it from here,
        # same as obs; the event loop never looks at it.
        self.qos = None
        # Trace recorder (repro.trace): None unless one is attached.  The
        # workload-boundary hooks (DB, DbBench, OX-Block sync API) read
        # this slot at call time, so a recorder can attach to an
        # already-built stack; the event loop never looks at it.
        self.trace = None

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires *delay* seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process driving *generator*."""
        if self.obs is not None:
            self.obs.on_spawn(name)
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every event in *events* has succeeded.

        Its value is the list of the constituent events' values, in input
        order.  The first failure fails the aggregate immediately.

        The fan-out over fresh :class:`Process` objects — how the device
        model joins one program per parallel unit — stays on the direct
        callback-list path below: a just-spawned process is never processed,
        so no per-constituent scheduling round-trip is needed.
        """
        events = list(events)
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done

        def on_trigger(event: Event) -> None:
            nonlocal remaining
            if done._triggered:
                if not event._ok:
                    event.defuse()
                return
            if not event._ok:
                event.defuse()
                done.fail(event.value)
                return
            remaining -= 1
            if remaining == 0:
                done.succeed([e.value for e in events])

        for event in events:
            if event._processed:
                event.add_callback(on_trigger)
            else:
                event._callbacks.append(on_trigger)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when the first of *events* does.

        Its value is the ``(index, value)`` pair of the winning event.
        """
        events = list(events)
        if not events:
            raise SimulationError("any_of() requires at least one event")
        done = Event(self)

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_trigger(event: Event) -> None:
                if done._triggered:
                    if not event._ok:
                        event.defuse()
                    return
                if not event._ok:
                    event.defuse()
                    done.fail(event.value)
                    return
                done.succeed((index, event.value))
            return on_trigger

        for index, event in enumerate(events):
            if event._processed:
                event.add_callback(make_callback(index))
            else:
                event._callbacks.append(make_callback(index))
        return done

    # -- scheduling internals ----------------------------------------------

    def _push(self, when: float, entry: Any) -> None:
        """Enqueue *entry* for time *when* (appends to that instant's
        FIFO bucket; the heap is touched only for a brand-new time)."""
        bucket = self._buckets.get(when)
        if bucket is None:
            heapq.heappush(self._times, when)
            bucket = self._buckets[when] = deque()
        bucket.append(entry)

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._push(self.now + delay, event)

    def _schedule_call(self, callback: Callable[[], None],
                       delay: float = 0.0) -> None:
        self._push(self.now + delay, callback)

    def queue_empty(self) -> bool:
        """True when no entry is pending (engine-agnostic emptiness)."""
        return not self._times

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Process the single next entry in the event queue."""
        times = self._times
        buckets = self._buckets
        while True:
            when = times[0]        # IndexError on an empty queue, as before
            bucket = buckets[when]
            if bucket:
                break
            # A run_until() that broke out mid-bucket can leave a drained
            # bucket behind; discard it and look at the next time.
            del buckets[when]
            heapq.heappop(times)
        entry = bucket.popleft()
        if not bucket:
            del buckets[when]
            heapq.heappop(times)
        self.now = when
        self.events_processed += 1
        if isinstance(entry, Event):
            entry._run_callbacks()
        else:
            entry()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulated time *until*.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        if the last event fires earlier, so back-to-back ``run(until=...)``
        calls observe a monotone clock.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self.now}")
        # One heap pop per *distinct time*: the inner loop drains the
        # bucket, including entries appended to it mid-drain (a callback
        # scheduling at ``now`` lands in the bucket being drained, exactly
        # where the (time, sequence) order puts it).
        times = self._times
        buckets = self._buckets
        pop_time = heapq.heappop
        processed = self.events_processed
        try:
            while times:
                when = times[0]
                if until is not None and when > until:
                    break
                bucket = buckets[when]
                self.now = when
                while bucket:
                    entry = bucket.popleft()
                    processed += 1
                    if isinstance(entry, Event):
                        entry._run_callbacks()
                    else:
                        entry()
                del buckets[when]
                pop_time(times)
        finally:
            self.events_processed = processed
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, event: Event) -> Any:
        """Run until *event* is processed; return its value, raising if the
        event failed."""
        times = self._times
        buckets = self._buckets
        pop_time = heapq.heappop
        processed = self.events_processed
        event_processed = False
        try:
            while not event_processed:
                if not times:
                    raise SimulationError(
                        "simulation deadlocked: event queue empty but the "
                        "awaited event never triggered")
                when = times[0]
                bucket = buckets[when]
                self.now = when
                while bucket:
                    entry = bucket.popleft()
                    processed += 1
                    if isinstance(entry, Event):
                        entry._run_callbacks()
                    else:
                        entry()
                    if event._processed:
                        # Stop exactly here, like the per-entry heap pop
                        # would: the rest of the bucket stays queued.
                        event_processed = True
                        break
                if not bucket:
                    del buckets[when]
                    pop_time(times)
        finally:
            self.events_processed = processed
        if not event._ok:
            event.defuse()
            raise event.value
        return event.value


class HeapqSimulator(Simulator):
    """The original one-heap-entry-per-event engine.

    Kept as the executable specification of scheduling order: entries are
    ``(time, sequence)`` tuples in a single binary heap.  The equivalence
    tests run identical workloads on both engines and assert identical
    clocks, event counts and latencies; production code uses the calendar
    queue of :class:`Simulator`.
    """

    def __init__(self):
        super().__init__()
        self._queue: list[tuple[float, int, Any]] = []
        self._sequence = 0

    def _push(self, when: float, entry: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, entry))

    def queue_empty(self) -> bool:
        return not self._queue

    def step(self) -> None:
        when, __, entry = heapq.heappop(self._queue)
        self.now = when
        self.events_processed += 1
        if isinstance(entry, Event):
            entry._run_callbacks()
        else:
            entry()

    def run(self, until: Optional[float] = None) -> None:
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self.now}")
        queue = self._queue
        pop = heapq.heappop
        processed = self.events_processed
        try:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    break
                when, __, entry = pop(queue)
                self.now = when
                processed += 1
                if isinstance(entry, Event):
                    entry._run_callbacks()
                else:
                    entry()
        finally:
            self.events_processed = processed
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, event: Event) -> Any:
        queue = self._queue
        pop = heapq.heappop
        processed = self.events_processed
        try:
            while not event._processed:
                if not queue:
                    raise SimulationError(
                        "simulation deadlocked: event queue empty but the "
                        "awaited event never triggered")
                when, __, entry = pop(queue)
                self.now = when
                processed += 1
                if isinstance(entry, Event):
                    entry._run_callbacks()
                else:
                    entry()
        finally:
            self.events_processed = processed
        if not event._ok:
            event.defuse()
            raise event.value
        return event.value
