"""Contended resources for the simulation kernel.

:class:`Resource` models mutually-exclusive hardware units (a flash chip, a
channel bus, a dispatch thread): FIFO granting, fixed capacity.
:class:`Store` is an unbounded FIFO queue of items used for message passing
between processes (e.g. the LightLSM dispatch queue).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Resource:
    """A capacity-limited resource with priority-then-FIFO granting.

    Lower ``priority`` values are served first (default 0); requests of
    equal priority are FIFO.  Device models use a negative priority for
    latency-critical metadata operations (FUA writes) so they do not queue
    behind bulk data programs.

    Usage inside a process::

        grant = resource.request()
        yield grant
        try:
            ...  # critical section
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: list[tuple[int, int, Event]] = []
        self._abandoned: set[Event] = set()
        self._sequence = 0
        # Cumulative busy integral for utilization reporting.
        self._busy_since: Optional[float] = None
        self._busy_total = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self, priority: int = 0) -> Event:
        """Return an event that succeeds once a unit is granted.

        A grant abandoned by an interrupted waiter is reclaimed
        automatically (the event's ``abandon_callback`` hands the unit
        back or removes the request from the queue).
        """
        grant = self.sim.event()
        grant.abandon_callback = self._abandon
        if self._in_use < self.capacity:
            self._grant(grant)
        else:
            self._sequence += 1
            heapq.heappush(self._waiters, (priority, self._sequence, grant))
        return grant

    def try_acquire(self) -> bool:
        """Claim a free unit synchronously, without an event round-trip.

        Returns True (and the caller owns one unit, to be handed back with
        :meth:`release`) when a unit is free, False when at capacity.  The
        uncontended case is the hot path in the device model: the grant
        would succeed at the current instant anyway, so skipping the event
        changes neither timing nor fairness.
        """
        if self._in_use >= self.capacity:
            return False
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        return True

    def release(self) -> None:
        """Return one granted unit; wakes the best-placed waiter."""
        if self._in_use == 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_total += self.sim.now - self._busy_since
            self._busy_since = None
        while self._waiters:
            __, __, grant = heapq.heappop(self._waiters)
            if grant in self._abandoned:
                self._abandoned.discard(grant)
                continue
            self._grant(grant)
            break

    def _abandon(self, grant: Event) -> None:
        if grant.triggered:
            # The unit was already granted: hand it back.
            self.release()
        else:
            self._abandoned.add(grant)

    def busy_time(self) -> float:
        """Total simulated time during which at least one unit was in use."""
        total = self._busy_total
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        return total

    def utilization(self) -> float:
        """Fraction of elapsed simulation time the resource was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_time() / self.sim.now

    def _grant(self, grant: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        grant.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"({len(self._waiters)} waiting)>")


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that succeeds with the
    next item (immediately if one is available, otherwise when one arrives).
    Pending getters are served in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit *item*; wakes the longest-waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        request = self.sim.event()
        if self._items:
            request.succeed(self._items.popleft())
        else:
            self._getters.append(request)
        return request
