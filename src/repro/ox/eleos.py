"""OX-ELEOS: the application-specific FTL for log-structured storage.

"OX-ELEOS exposes Open-Channel SSDs as log-structured storage, with writes
at the granularity of Log-Structured Storage (LSS) I/O buffers, typically
8MB, and reads at the granularity of a single page. ... with
variable-sized pages of an arbitrary number of bytes, mapping becomes more
challenging ... application-specific FTLs might require mapping at a
granularity which is smaller than the unit of read" (§4.2).

Design:

* :meth:`append_buffer` takes one LSS I/O buffer — a list of
  ``(page_id, payload)`` pairs with payloads of *arbitrary byte sizes* —
  packs them back to back, and writes the buffer onto a fresh **segment**:
  a set of whole chunks striped across parallel units.  Pages never span a
  chunk boundary (padding keeps them inside), so a page is always covered
  by a contiguous run of sectors.
* The variable-page map stores ``page_id -> (first_sector, byte_offset,
  length)`` — a *sub-sector* granularity, smaller than the device's 4 KB
  unit of read, which is exactly the paper's point.
* Space reclamation is host-driven, as in log-structured storage: the
  LLAMA-side cleaner re-appends live pages and then calls
  :meth:`free_segment`; the FTL resets the segment's chunks.  There is no
  FTL-internal GC.
* WAL + checkpoints give the same transactional guarantees as OX-Block:
  an ``append_buffer`` is atomic — after a crash either every page of the
  buffer is readable or none is mapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FTLError, OutOfSpaceError
from repro.ocssd.address import Ppa
from repro.ocssd.chunk import ChunkState, pad_sector
from repro.ox.ftl import serial
from repro.ox.ftl.checkpoint import CheckpointManager
from repro.ox.ftl.provisioning import MetadataLayout
from repro.ox.ftl.recovery import RecoveryReport
from repro.ox.ftl.wal import WalAppender, WalReader
from repro.ox.media import MediaManager
from repro.sim.resources import Resource
from repro.units import MIB

ChunkKey = Tuple[int, int, int]


@dataclass(frozen=True)
class EleosConfig:
    """Tunables of the OX-ELEOS FTL."""

    buffer_bytes: int = 8 * MIB      # LSS I/O buffer size (paper: 8 MB)
    wal_chunk_count: int = 8
    ckpt_chunks_per_slot: int = 2
    replay_cpu_per_record: float = 2e-6
    wal_pressure_threshold: float = 0.6


@dataclass
class VPageEntry:
    """Where a variable-sized page lives."""

    first_sector: int   # linearized device sector
    offset: int         # byte offset within that sector
    length: int         # page length in bytes


@dataclass
class EleosStats:
    buffers_appended: int = 0
    pages_appended: int = 0
    bytes_appended: int = 0
    pages_read: int = 0
    segments_freed: int = 0
    checkpoints: int = 0


class OXEleos:
    """The OX-ELEOS FTL instance.

    Construct with :meth:`format` on a fresh device or :meth:`recover`
    after a crash.
    """

    def __init__(self, media: MediaManager, config: EleosConfig,
                 layout: MetadataLayout):
        self.media = media
        self.sim = media.sim
        self.config = config
        self.geometry = media.geometry
        self.layout = layout
        if config.buffer_bytes < self.geometry.sector_size:
            raise FTLError("LSS buffer must hold at least one sector")
        self.vmap: Dict[int, VPageEntry] = {}
        self.segments: Dict[int, List[ChunkKey]] = {}
        self._free_chunks: List[ChunkKey] = list(layout.data_chunk_keys())
        self._next_segment_id = 1
        self._next_txn_id = 1
        self._epoch = 0
        self.wal = WalAppender(media, layout.wal_chunks, epoch=0)
        self.checkpointer = CheckpointManager(media, layout.ckpt_slots)
        self._lock = Resource(self.sim, capacity=1, name="eleos-dispatch")
        self._alive = True
        self.stats = EleosStats()

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` this FTL's I/O is tagged
        with (from its media manager); None for untagged stacks."""
        return self.media.tenant

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def format(cls, media: MediaManager, config: EleosConfig,
               tenant=None) -> "OXEleos":
        if tenant is not None:
            media = media.for_tenant(tenant)
        layout = MetadataLayout.build(
            media.geometry, wal_chunk_count=config.wal_chunk_count,
            ckpt_chunks_per_slot=config.ckpt_chunks_per_slot)
        ftl = cls(media, config, layout)
        ftl.sim.run_until(ftl.sim.spawn(ftl._checkpoint_locked_proc()))
        return ftl

    @classmethod
    def recover(cls, media: MediaManager, config: EleosConfig,
                tenant=None) -> Tuple["OXEleos", RecoveryReport]:
        """Rebuild from media; see :mod:`repro.ox.ftl.recovery` for the
        replay rules (committed + durable transactions only)."""
        if tenant is not None:
            media = media.for_tenant(tenant)
        sim = media.sim
        started = sim.now
        layout = MetadataLayout.build(
            media.geometry, wal_chunk_count=config.wal_chunk_count,
            ckpt_chunks_per_slot=config.ckpt_chunks_per_slot)
        ftl = cls(media, config, layout)
        report = sim.run_until(sim.spawn(ftl._recover_proc()))
        sim.run_until(sim.spawn(ftl._checkpoint_locked_proc()))
        report.duration = sim.now - started
        return ftl, report

    def crash(self) -> None:
        """kill -9: volatile state and the controller cache are gone."""
        self._alive = False
        self.media.device.crash_volatile()

    # -- public synchronous API ------------------------------------------------------

    def append_buffer(self, pages: Sequence[Tuple[int, bytes]]) -> int:
        """Write one LSS I/O buffer; returns the new segment id."""
        return self.sim.run_until(
            self.sim.spawn(self.append_buffer_proc(pages)))

    def read_page(self, page_id: int) -> bytes:
        return self.sim.run_until(self.sim.spawn(self.read_page_proc(page_id)))

    def free_segment(self, segment_id: int) -> None:
        self.sim.run_until(self.sim.spawn(self.free_segment_proc(segment_id)))

    def checkpoint(self) -> None:
        self.sim.run_until(self.sim.spawn(self._checkpoint_locked_proc()))

    def live_page_ids(self) -> List[int]:
        return sorted(self.vmap)

    def segment_of(self, page_id: int) -> Optional[int]:
        """Which segment currently holds *page_id* (None if unmapped)."""
        entry = self.vmap.get(page_id)
        if entry is None:
            return None
        key = self.geometry.delinearize(entry.first_sector).chunk_key()
        for segment_id, chunks in self.segments.items():
            if key in chunks:
                return segment_id
        return None

    # -- process API --------------------------------------------------------------------

    def append_buffer_proc(self, pages: Sequence[Tuple[int, bytes]]):
        self._check_alive()
        total = sum(len(payload) for __, payload in pages)
        if not pages:
            raise FTLError("empty LSS buffer")
        if total > self.config.buffer_bytes:
            raise FTLError(
                f"buffer of {total} bytes exceeds the configured LSS "
                f"buffer size {self.config.buffer_bytes}")
        grant = self._lock.request()
        yield grant
        try:
            segment_id, entries = yield from self._write_segment_proc(pages)
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            chunk_linears = [self._chunk_linear(key)
                             for key in self.segments[segment_id]]
            self.wal.append(serial.encode_segment_new(segment_id,
                                                      chunk_linears))
            for record in serial.split_vpage_update(
                    txn_id, entries, self.geometry.sector_size):
                self.wal.append(record)
            self.wal.append_commit(txn_id)
            yield from self.wal.flush_proc()
            for (page_id, linear, offset, length) in entries:
                self.vmap[page_id] = VPageEntry(linear, offset, length)
            yield from self._checkpoint_on_pressure_proc()
        finally:
            self._lock.release()
        self.stats.buffers_appended += 1
        self.stats.pages_appended += len(pages)
        self.stats.bytes_appended += total
        return segment_id

    def read_page_proc(self, page_id: int):
        """Read one page: fetch the covering sectors (unit of read = 4 KB),
        slice out the page bytes — the mapping is finer than the read."""
        self._check_alive()
        entry = self.vmap.get(page_id)
        if entry is None:
            raise FTLError(f"page {page_id} is not mapped")
        sector_size = self.geometry.sector_size
        covering = max(1, -(-(entry.offset + entry.length) // sector_size))
        first = self.geometry.delinearize(entry.first_sector)
        ppas = [first.with_sector(first.sector + i) for i in range(covering)]
        completion = yield from self.media.read_proc(ppas)
        self.media.require_ok(completion, f"page {page_id} read")
        blob = b"".join(pad_sector(payload, sector_size)
                        for payload in completion.data)
        self.stats.pages_read += 1
        return blob[entry.offset:entry.offset + entry.length]

    def free_segment_proc(self, segment_id: int):
        """Host-driven reclamation: the LSS cleaner guarantees every live
        page of the segment has been re-appended elsewhere."""
        self._check_alive()
        grant = self._lock.request()
        yield grant
        try:
            chunks = self.segments.get(segment_id)
            if chunks is None:
                raise FTLError(f"unknown segment {segment_id}")
            stale = [page_id for page_id, entry in self.vmap.items()
                     if self.geometry.delinearize(entry.first_sector)
                     .chunk_key() in set(chunks)]
            if stale:
                raise FTLError(
                    f"segment {segment_id} still holds live pages "
                    f"{stale[:5]}{'...' if len(stale) > 5 else ''}")
            self.wal.append(serial.encode_segment_free(segment_id))
            yield from self.wal.flush_proc()
            yield from self.media.flush_proc()
            for key in chunks:
                completion = yield from self.media.reset_proc(Ppa(*key, 0))
                if completion.ok:
                    self._free_chunks.append(key)
            del self.segments[segment_id]
        finally:
            self._lock.release()
        self.stats.segments_freed += 1

    # -- internals ----------------------------------------------------------------------

    def _check_alive(self) -> None:
        if not self._alive:
            raise FTLError("FTL instance has crashed or been closed")

    def _chunk_linear(self, key: ChunkKey) -> int:
        group, pu, chunk = key
        return (group * self.geometry.pus_per_group + pu) \
            * self.geometry.chunks_per_pu + chunk

    def _chunk_from_linear(self, linear: int) -> ChunkKey:
        per_pu = self.geometry.chunks_per_pu
        pu_linear, chunk = divmod(linear, per_pu)
        group, pu = divmod(pu_linear, self.geometry.pus_per_group)
        return (group, pu, chunk)

    def _write_segment_proc(self, pages: Sequence[Tuple[int, bytes]]):
        """Pack pages into sectors, allocate whole chunks, write them.

        Returns ``(segment_id, [(page_id, linear, offset, length), ...])``.
        """
        geometry = self.geometry
        sector_size = geometry.sector_size
        chunk_bytes = geometry.chunk_size

        # Lay pages out; a page never crosses a chunk boundary.
        layout: List[Tuple[int, int, int]] = []   # (page_id, byte_pos, len)
        position = 0
        for page_id, payload in pages:
            if not payload:
                raise FTLError(f"page {page_id} has no payload")
            if len(payload) > chunk_bytes:
                raise FTLError(
                    f"page {page_id} ({len(payload)} bytes) exceeds the "
                    f"chunk size {chunk_bytes}")
            if (position % chunk_bytes) + len(payload) > chunk_bytes:
                position += chunk_bytes - (position % chunk_bytes)
            layout.append((page_id, position, len(payload)))
            position += len(payload)
        total_bytes = position

        # Build the byte stream and carve into sectors.
        stream = bytearray(total_bytes)
        for (page_id, byte_pos, length), (__, payload) in zip(layout, pages):
            stream[byte_pos:byte_pos + length] = payload
        sectors_needed = -(-total_bytes // sector_size)
        sectors_needed += (-sectors_needed) % geometry.ws_min
        chunks_needed = -(-sectors_needed // geometry.sectors_per_chunk)

        chunk_keys = self._allocate_chunks(chunks_needed)
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        self.segments[segment_id] = chunk_keys

        # One vector write per chunk; the device stripes across PUs.
        procs = []
        for index, key in enumerate(chunk_keys):
            first_byte = index * chunk_bytes
            last_byte = min(total_bytes, first_byte + chunk_bytes)
            count = -(-(last_byte - first_byte) // sector_size)
            count += (-count) % geometry.ws_min
            count = min(count, geometry.sectors_per_chunk)
            ppas = [Ppa(*key, s) for s in range(count)]
            data = []
            for s in range(count):
                start = first_byte + s * sector_size
                data.append(bytes(stream[start:start + sector_size]))
            oob = [("lss", segment_id, s) for s in range(count)]
            procs.append(self.sim.spawn(
                self.media.write_proc(ppas, data, oob=oob)))
        completions = yield self.sim.all_of(procs)
        for completion in completions:
            self.media.require_ok(completion, "LSS segment write")

        entries = []
        for page_id, byte_pos, length in layout:
            chunk_index, chunk_offset = divmod(byte_pos, chunk_bytes)
            sector_in_chunk, offset = divmod(chunk_offset, sector_size)
            key = chunk_keys[chunk_index]
            linear = geometry.linearize(Ppa(*key, sector_in_chunk))
            entries.append((page_id, linear, offset, length))
        return segment_id, entries

    def _allocate_chunks(self, count: int) -> List[ChunkKey]:
        """Take *count* free chunks, spread over distinct PUs when
        possible so the segment write parallelizes."""
        if count > len(self._free_chunks):
            raise OutOfSpaceError(
                f"segment needs {count} chunks, {len(self._free_chunks)} free")
        chosen: List[ChunkKey] = []
        by_pu: Dict[Tuple[int, int], List[ChunkKey]] = {}
        for key in self._free_chunks:
            by_pu.setdefault((key[0], key[1]), []).append(key)
        pus = sorted(by_pu)
        pu_index = 0
        while len(chosen) < count:
            pu = pus[pu_index % len(pus)]
            if by_pu[pu]:
                chosen.append(by_pu[pu].pop(0))
            pu_index += 1
            if all(not chunks for chunks in by_pu.values()):
                break
        chosen_set = set(chosen)
        self._free_chunks = [key for key in self._free_chunks
                             if key not in chosen_set]
        return chosen

    # -- checkpoint / recovery ------------------------------------------------------------

    def _checkpoint_on_pressure_proc(self):
        if self.wal.fill_fraction() <= self.config.wal_pressure_threshold:
            return
        yield from self._do_checkpoint_proc()

    def _checkpoint_locked_proc(self):
        grant = self._lock.request()
        yield grant
        try:
            yield from self._do_checkpoint_proc()
        finally:
            self._lock.release()

    def _do_checkpoint_proc(self):
        # A checkpointed mapping must point at durable data: drain the
        # controller cache before snapshotting the vmap.
        yield from self.media.flush_proc()
        seq = self._epoch + 1
        records: List[bytes] = []
        vmap_rows = [(page_id, entry.first_sector, entry.offset, entry.length)
                     for page_id, entry in sorted(self.vmap.items())]
        records.extend(serial.split_ckpt_vmap(vmap_rows,
                                              self.geometry.sector_size))
        for segment_id, chunks in sorted(self.segments.items()):
            records.append(serial.encode_ckpt_segment(
                segment_id, [self._chunk_linear(key) for key in chunks]))
        yield from self.checkpointer.write_payload_proc(
            seq, self._next_txn_id, records)
        yield from self.media.flush_proc()
        yield from self.wal.truncate_proc(seq)
        self._epoch = seq
        self.stats.checkpoints += 1

    def _recover_proc(self):
        report = RecoveryReport()
        snapshot = yield from self.checkpointer.read_latest_proc()
        if snapshot is not None:
            self._epoch = snapshot.seq
            self._next_txn_id = snapshot.next_txn_id
            report.checkpoint_seq = snapshot.seq
            for page_id, linear, offset, length in snapshot.vmap_entries:
                self.vmap[page_id] = VPageEntry(linear, offset, length)
            for segment_id, chunk_linears in snapshot.segments:
                self.segments[segment_id] = [
                    self._chunk_from_linear(linear)
                    for linear in chunk_linears]
                self._next_segment_id = max(self._next_segment_id,
                                            segment_id + 1)
        self.wal.epoch = self._epoch

        reader = WalReader(self.media, self.layout.wal_chunks, self._epoch)
        records = yield from reader.read_proc()
        report.wal_sectors_read = reader.sectors_read
        report.records_decoded = len(records)

        pending: Dict[int, List[Tuple[int, int, int, int]]] = {}
        pending_segments: Dict[int, List[Tuple[int, List[int]]]] = {}
        current_segments: List[Tuple[int, List[int]]] = []
        for record in records:
            if self.config.replay_cpu_per_record:
                yield self.sim.timeout(self.config.replay_cpu_per_record)
            if record.rtype == serial.REC_VPAGE_UPDATE:
                txn_id, entries = serial.decode_vpage_update(record.body)
                pending.setdefault(txn_id, []).extend(entries)
            elif record.rtype == serial.REC_SEGMENT_NEW:
                current_segments.append(serial.decode_segment(record.body))
            elif record.rtype == serial.REC_SEGMENT_FREE:
                segment_id, __ = serial.decode_segment(record.body)
                self.segments.pop(segment_id, None)
            elif record.rtype == serial.REC_COMMIT:
                txn_id = serial.decode_commit(record.body)
                entries = pending.pop(txn_id, [])
                segments = current_segments
                current_segments = []
                if not self._txn_durable(entries):
                    report.txns_dropped += 1
                    continue
                for segment_id, chunk_linears in segments:
                    self.segments[segment_id] = [
                        self._chunk_from_linear(linear)
                        for linear in chunk_linears]
                    self._next_segment_id = max(self._next_segment_id,
                                                segment_id + 1)
                for page_id, linear, offset, length in entries:
                    self.vmap[page_id] = VPageEntry(linear, offset, length)
                self._next_txn_id = max(self._next_txn_id, txn_id + 1)
                report.txns_applied += 1

        # Rebuild the free pool: anything not owned by a live segment and
        # not reserved for metadata is free (resetting lazily on reuse).
        owned = {key for chunks in self.segments.values() for key in chunks}
        self._free_chunks = []
        for key in self.layout.data_chunk_keys():
            if key in owned:
                continue
            info = self.media.chunk_info(Ppa(*key, 0))
            if info.state is ChunkState.OFFLINE:
                continue
            if info.write_pointer > 0:
                completion = yield from self.media.reset_proc(Ppa(*key, 0))
                if not completion.ok:
                    continue
            self._free_chunks.append(key)
        return report

    def _txn_durable(self, entries: List[Tuple[int, int, int, int]]) -> bool:
        sector_size = self.geometry.sector_size
        for __, linear, offset, length in entries:
            ppa = self.geometry.delinearize(linear)
            covering = max(1, -(-(offset + length) // sector_size))
            info = self.media.chunk_info(ppa)
            if ppa.sector + covering > info.write_pointer:
                return False
        return True
