"""The OX media manager: the bottom OX layer (§4.1).

"The bottom layer focuses on media management, it is responsible for
abstracting various forms of underlying storage media under a common
representation of the physical address space."  Here the one media type is
the simulated Open-Channel SSD; the media manager exposes a narrow,
FTL-facing API (vector I/O, reset, copy, flush, chunk scans, notification
drain) plus both generator (in-simulation) and synchronous entry points.

A media manager optionally carries a :class:`~repro.qos.TenantContext`
(see :meth:`MediaManager.for_tenant`): every command it submits is tagged
with that tenant, which is how an FTL instance owned by one tenant feeds
tenant identity into the device's QoS scheduler and per-tenant metrics
without any per-call plumbing in the FTL code.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MediaError
from repro.ocssd.address import Ppa
from repro.ocssd.commands import (
    ChunkReset,
    Completion,
    VectorCopy,
    VectorRead,
    VectorWrite,
)
from repro.ocssd.device import ChunkDescriptor, ChunkNotification, OpenChannelSSD
from repro.ocssd.geometry import DeviceGeometry


class MediaManager:
    """FTL-facing facade over one Open-Channel SSD.

    *tenant* tags every command this manager submits; ``None`` leaves
    commands untagged (infrastructure I/O, single-tenant stacks).
    """

    def __init__(self, device: OpenChannelSSD, tenant=None):
        self.device = device
        self.sim = device.sim
        self.tenant = tenant

    def for_tenant(self, tenant) -> "MediaManager":
        """A view of the same device whose commands belong to *tenant*."""
        return MediaManager(self.device, tenant=tenant)

    @property
    def geometry(self) -> DeviceGeometry:
        return self.device.report_geometry()

    # -- generator API (for use inside simulation processes) --------------------
    #
    # These return the device's generator directly instead of delegating
    # with ``yield from``: callers drive them identically, but each I/O
    # carries one generator frame less through every resume.

    def write_proc(self, ppas: List[Ppa], data: List[Optional[bytes]],
                   oob: Optional[List[object]] = None, fua: bool = False,
                   parent=None, whole: Optional[memoryview] = None):
        return self.device.submit(
            VectorWrite(ppas=ppas, data=data, oob=oob, fua=fua,
                        tenant=self.tenant, whole=whole),
            parent=parent)

    def read_proc(self, ppas: List[Ppa], parent=None):
        return self.device.submit(VectorRead(ppas=ppas, tenant=self.tenant),
                                  parent=parent)

    def read_single_proc(self, ppa: Ppa):
        """One-sector read fast lane; see
        :meth:`repro.ocssd.OpenChannelSSD.read_single_proc`."""
        return self.device.read_single_proc(ppa, tenant=self.tenant)

    def reset_proc(self, ppa: Ppa, parent=None):
        return self.device.submit(ChunkReset(ppa=ppa, tenant=self.tenant),
                                  parent=parent)

    def copy_proc(self, src: List[Ppa], dst: List[Ppa],
                  dst_oob: Optional[List[object]] = None, parent=None):
        return self.device.submit(
            VectorCopy(src=src, dst=dst, dst_oob=dst_oob,
                       tenant=self.tenant),
            parent=parent)

    def flush_proc(self):
        return self.device.flush_proc()

    # -- synchronous API ----------------------------------------------------------

    def write(self, ppas: List[Ppa], data: List[Optional[bytes]],
              oob: Optional[List[object]] = None,
              fua: bool = False) -> Completion:
        return self.device.execute(VectorWrite(
            ppas=ppas, data=data, oob=oob, fua=fua, tenant=self.tenant))

    def read(self, ppas: List[Ppa]) -> Completion:
        return self.device.execute(VectorRead(ppas=ppas, tenant=self.tenant))

    def reset(self, ppa: Ppa) -> Completion:
        return self.device.execute(ChunkReset(ppa=ppa, tenant=self.tenant))

    def copy(self, src: List[Ppa], dst: List[Ppa],
             dst_oob: Optional[List[object]] = None) -> Completion:
        return self.device.execute(VectorCopy(
            src=src, dst=dst, dst_oob=dst_oob, tenant=self.tenant))

    def flush(self) -> None:
        self.device.flush()

    # -- metadata / management -------------------------------------------------------

    def chunk_info(self, ppa: Ppa) -> ChunkDescriptor:
        return self.device.chunk_info(ppa)

    def scan_chunks(self) -> List[ChunkDescriptor]:
        """Full chunk-descriptor scan, used by recovery to rebuild the
        provisioner's view of the physical space."""
        return list(self.device.iter_chunk_info())

    def pop_notifications(self) -> List[ChunkNotification]:
        return self.device.pop_notifications()

    def require_ok(self, completion: Completion, context: str) -> Completion:
        """Raise :class:`MediaError` unless *completion* succeeded."""
        if not completion.ok:
            raise MediaError(
                f"{context}: {completion.status.value}"
                + (f" ({completion.error})" if completion.error else ""))
        return completion
