"""Group-local garbage collection (§4.3).

"For garbage collection, OX-Block marks a group for collection.  Then,
background threads recycle victim chunks within that group.  This
guarantees locality of interferences from garbage collection" — on a
16-channel SSD 93.7 % of the address space sees no GC interference, 87.5 %
on 8 channels.  The collector here does exactly that: victims are chosen
within the *marked group* only, relocation targets are allocated in the
same group (a dedicated "gc" provisioning stream), and all GC media
traffic therefore contends only with I/O to that one group.

Relocation is crash-safe by ordering: device-internal copy, device flush
(copies durable), WAL commit of the map updates, only then the victim
reset.  Validity is re-checked under the dispatch lock after the copy, so
a user overwrite racing the relocation can never be undone.

Two more rules keep crashes survivable:

* A victim is only collected if its live data *fits* in the group's
  remaining GC space (checked up front) — GC runs because space is low,
  so an allocation failure halfway through a relocation would strand
  copies that were made but never committed.
* A victim sector whose mapping points elsewhere is only *dead* if that
  superseding copy is durable.  If the newer copy still sits in the write
  buffer or device cache, resetting the old chunk now and crashing would
  leave recovery with a committed mapping (from an earlier checkpoint)
  into erased flash.  Such victims are deferred, not collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import OutOfSpaceError
from repro.ocssd.address import Ppa
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkInfo, FtlChunkState
from repro.ox.ftl.provisioning import Provisioner
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import WalAppender
from repro.ox.media import MediaManager
from repro.policies.victim import GreedyVictimPolicy, VictimPolicy

ChunkKey = Tuple[int, int, int]


@dataclass
class GcStats:
    chunks_recycled: int = 0
    sectors_relocated: int = 0
    resets: int = 0
    reset_failures: int = 0
    group_rotations: int = 0
    #: Victims skipped because the group lacked relocation space.
    skips_no_space: int = 0
    #: Victims deferred because a superseding copy was not yet durable.
    deferrals_unsafe: int = 0


class GarbageCollector:
    """Recycles invalid space, one marked group at a time.

    Every ``*_locked_proc`` generator must be driven while the caller holds
    the FTL dispatch lock: GC mutates the mapping table, chunk metadata and
    provisioner state.
    """

    def __init__(self, media: MediaManager, page_map: PageMap,
                 chunk_table: ChunkTable, provisioner: Provisioner,
                 wal: WalAppender, next_txn_id: Callable[[], int],
                 volatile_pending: Optional[Callable[[], bool]] = None,
                 stabilize_proc: Optional[Callable] = None,
                 wal_relief_proc: Optional[Callable] = None,
                 victim_policy: Optional[VictimPolicy] = None,
                 host_sectors_written: Optional[Callable[[], int]] = None):
        self.media = media
        self.sim = media.sim
        # Observability (repro.obs): inherited from the simulator; None
        # unless a hub was attached before the FTL stack was built.
        self.obs = media.sim.obs
        # QoS (repro.qos): inherited the same way; when present, GC yields
        # to backlogged foreground reads before starting each victim.
        self.qos = media.sim.qos
        self.geometry = media.geometry
        self.page_map = page_map
        self.chunk_table = chunk_table
        self.provisioner = provisioner
        self.wal = wal
        self.next_txn_id = next_txn_id
        # An acked transaction with sectors still staged in the FTL write
        # buffer can be dropped whole by recovery, rolling its lbas back
        # to mappings a reset would erase.  The FTL reports that state
        # (volatile_pending) and offers a barrier that clears it
        # (stabilize_proc: pad the partial unit, drain the device).
        self.volatile_pending = volatile_pending or (lambda: False)
        self.stabilize_proc = stabilize_proc
        # Relocation commits consume WAL space but never truncate it; a
        # long collection run could exhaust the ring for everyone.  The
        # FTL provides a between-victims pressure valve (checkpoint) that
        # is safe to run exactly here: no transaction is mid-stage while
        # GC holds the dispatch lock.
        self.wal_relief_proc = wal_relief_proc
        self.marked_group = 0
        self.stats = GcStats()
        # Victim selection is a policy (repro.policies): the default
        # greedy ordering is bit-identical to the historical collector.
        self.victim_policy = victim_policy if victim_policy is not None \
            else GreedyVictimPolicy()
        # Host write accounting for the WAF gauge ((host + relocated) /
        # host); None leaves the gauge unset (no host counter to cite).
        self.host_sectors_written = host_sectors_written

    # -- victim selection ----------------------------------------------------------

    def victims(self, group: int) -> List[FtlChunkInfo]:
        """The group's GC candidates, in the victim policy's order."""
        return self.victim_policy.select(
            self.chunk_table.gc_candidates(group), self.chunk_table)

    def pick_victim(self) -> Optional[FtlChunkInfo]:
        """The victim policy's first choice in the marked group; rotates
        the marked group when the current one has nothing to collect."""
        for __ in range(self.geometry.num_groups):
            victims = self.victims(self.marked_group)
            if victims:
                return victims[0]
            self.marked_group = (self.marked_group + 1) \
                % self.geometry.num_groups
            self.stats.group_rotations += 1
        return None

    # -- accounting (GcStats mirrored into the obs registry) ---------------------

    def _count_skip_no_space(self) -> None:
        self.stats.skips_no_space += 1
        if self.obs is not None:
            self.obs.metrics.counter("ftl.gc.skips_no_space").increment()

    def _count_deferral_unsafe(self) -> None:
        self.stats.deferrals_unsafe += 1
        if self.obs is not None:
            self.obs.metrics.counter("ftl.gc.deferrals_unsafe").increment()

    def _update_waf_gauge(self) -> None:
        """Refresh ``ftl.gc.waf``: (host + relocated) / host sectors."""
        if self.obs is None or self.host_sectors_written is None:
            return
        host = self.host_sectors_written()
        if host:
            self.obs.metrics.gauge("ftl.gc.waf").set(
                (host + self.stats.sectors_relocated) / host)

    def _fits(self, victim: FtlChunkInfo) -> bool:
        """Would the victim's live data fit in its group's GC space?

        Victims are scanned least-live first, so when the smallest one
        does not fit, nothing in the group does.  Worst case: every live
        sector needs relocating, plus padding to a whole write unit.
        """
        if not victim.valid_count:
            return True
        needed = -(-victim.valid_count // self.geometry.ws_min)
        return self.provisioner.units_available(
            "gc", group=victim.key[0]) >= needed

    # -- collection ---------------------------------------------------------------------

    def collect_once_locked_proc(self):
        """Collect one victim; returns True if a chunk was reclaimed.

        Victims that cannot be collected right now — no relocation space
        in their group, or live data superseded only by not-yet-durable
        copies — are skipped and the next candidate (or group) is tried,
        so a collector running *because* space is low degrades to a no-op
        instead of raising out of the daemon.
        """
        for __ in range(self.geometry.num_groups):
            for victim in self.victims(self.marked_group):
                if not self._fits(victim):
                    self._count_skip_no_space()
                    break
                done = yield from self._relocate_and_reset_proc(victim)
                if done:
                    return True
            self.marked_group = (self.marked_group + 1) \
                % self.geometry.num_groups
            self.stats.group_rotations += 1
        return False

    def collect_group_locked_proc(self, group: int,
                                  max_victims: int = 0):
        """Collect victims of *group* only — no rotation.  Used when the
        caller wants the paper's group-confined interference window (the
        GC-locality experiment).  Returns the number of chunks recycled.
        """
        recycled = 0
        while not max_victims or recycled < max_victims:
            progressed = False
            for victim in self.victims(group):
                if not self._fits(victim):
                    self._count_skip_no_space()
                    break
                done = yield from self._relocate_and_reset_proc(victim)
                if done:
                    progressed = True
                    recycled += 1
                    break
            if not progressed:
                break
        return recycled

    def collect_until_locked_proc(self, target_free: int):
        """Collect until the free pool reaches *target_free* chunks (or no
        victims remain); returns the number of chunks recycled."""
        recycled = 0
        stalled = 0
        while self.provisioner.free_chunks() < target_free:
            before = self.provisioner.free_chunks()
            progressed = yield from self.collect_once_locked_proc()
            if not progressed:
                break
            recycled += 1
            # Recycling a victim is not always a net gain: relocating a
            # nearly-live chunk can consume a fresh gc chunk for every
            # chunk it frees.  Two zero-gain rounds in a row means the
            # pool cannot be grown right now — stop instead of churning
            # (and burning erase cycles) under the lock forever.
            if self.provisioner.free_chunks() > before:
                stalled = 0
            else:
                stalled += 1
                if stalled > 1:
                    break
        return recycled

    def _relocate_and_reset_proc(self, victim: FtlChunkInfo):
        """Relocate the victim's live data and reset it.

        Returns True when the victim was reclaimed (recycled or retired),
        False when collection was deferred or aborted.
        """
        if self.qos is not None:
            # Background work yields while foreground reads are queued
            # (bounded, so GC always makes progress eventually).
            yield from self.qos.background_gate_proc()
        key = victim.key
        base = Ppa(*key, 0)
        obs = self.obs
        span = None
        if obs is not None:
            # One root span per victim: GC runs are background work, not
            # nested under any foreground command.
            span = obs.begin("ftl.gc", "collect")
            collect_started = self.sim.now
        info = self.media.chunk_info(base)
        live, unsafe = yield from self._find_live_sectors_proc(
            key, info.write_pointer, parent=span)
        if unsafe or self.volatile_pending():
            # Unsafe sector: superseded only by a not-yet-durable copy.
            # Volatile pending: an acked txn still has staged sectors, so
            # recovery could drop it whole and fall back to mappings into
            # this victim.  A device flush handles cache-resident data;
            # the FTL barrier (pad + drain) handles the staged tail.
            yield from self.media.flush_proc()
            if self.volatile_pending() and self.stabilize_proc is not None:
                try:
                    yield from self.stabilize_proc()
                except OutOfSpaceError:
                    # Padding the partial unit needs an allocation; when
                    # even that fails, the victim cannot be made safe.
                    self._count_deferral_unsafe()
                    if obs is not None:
                        obs.end(span, outcome="deferred")
                    return False
            # The barrier may have padded a staged partial unit into this
            # very victim (its volatile tail is what made it unsafe),
            # advancing the write pointer — re-read it, or the re-scan
            # misses the freshly landed sectors and the reset destroys
            # their only copy.
            info = self.media.chunk_info(base)
            live, unsafe = yield from self._find_live_sectors_proc(
                key, info.write_pointer, parent=span)
            if unsafe or self.volatile_pending():
                self._count_deferral_unsafe()
                if obs is not None:
                    obs.end(span, outcome="deferred")
                return False
        if live:
            moved = yield from self._relocate_proc(key, live, parent=span)
            if not moved:
                if obs is not None:
                    obs.end(span, outcome="aborted")
                return False
        # Copies (if any) are durable and remapped; the victim holds only
        # dead data now.
        victim.valid_count = 0
        completion = yield from self.media.reset_proc(base, parent=span)
        self.stats.resets += 1
        if completion.ok:
            self.provisioner.release_chunk(key)
            self.stats.chunks_recycled += 1
        else:
            self.provisioner.retire_chunk(key)
            self.stats.reset_failures += 1
            if obs is not None:
                obs.error("ftl.gc", "reset-failed",
                          completion.error or str(base))
        if self.wal_relief_proc is not None:
            yield from self.wal_relief_proc()
        if obs is not None:
            obs.end(span, outcome="recycled" if completion.ok else "retired",
                    relocated=len(live))
            obs.metrics.counter("ftl.gc.chunks_recycled").increment()
            obs.metrics.histogram("ftl.gc.collect_s").record(
                self.sim.now - collect_started)
        self._update_waf_gauge()
        return True

    def _find_live_sectors_proc(self, key: ChunkKey, write_pointer: int,
                                parent=None):
        """Read the victim's OOB to learn owning LBAs, keep the sectors the
        mapping table still points at.  The read is real device traffic —
        this is the GC interference the locality experiment measures.

        Returns ``(live, unsafe)``: *live* is the ``(sector, lba)`` list to
        relocate; *unsafe* counts sectors that look dead only because of a
        superseding copy that is **not yet durable** — destroying the old
        copy while the new one is still volatile would strand a committed
        mapping if power failed.
        """
        if write_pointer == 0:
            return [], 0
        ppas = [Ppa(*key, s) for s in range(write_pointer)]
        completion = yield from self.media.read_proc(ppas, parent=parent)
        self.media.require_ok(completion, "GC victim scan")
        live: List[Tuple[int, int]] = []   # (sector, lba)
        unsafe = 0
        delinearize = self.geometry.delinearize
        for sector, lba in enumerate(completion.oob):
            if not isinstance(lba, int) or lba == NO_PPA:
                continue
            current = self.page_map.lookup(lba)
            if current is None:
                # Trimmed.  Trims are WAL-committed (FUA) before they are
                # acknowledged, so the old copy is safely dead.
                continue
            ppa = delinearize(current)
            if ppa.chunk_key() == key and ppa.sector == sector:
                live.append((sector, lba))
                continue
            descriptor = self.media.chunk_info(ppa)
            if ppa.sector >= descriptor.flushed_pointer:
                unsafe += 1
        return live, unsafe

    def _relocate_proc(self, key: ChunkKey, live: List[Tuple[int, int]],
                       parent=None):
        """Copy *live* out of the victim and commit the moves; returns True
        on success, False when allocation ran dry mid-relocation."""
        ws_min = self.geometry.ws_min
        group = key[0]
        src: List[Ppa] = []
        dst: List[Ppa] = []
        lbas: List[int] = []
        for sector, lba in live:
            src.append(Ppa(*key, sector))
            lbas.append(lba)
        # Pad the relocation to whole write units with dead-sector copies;
        # their destination OOB is written as NO_PPA so a later GC scan of
        # the destination chunk sees them as unowned.
        pad = (-len(src)) % ws_min
        for __ in range(pad):
            src.append(src[-1])   # recopy an arbitrary sector as filler
            lbas.append(NO_PPA)
        try:
            for __ in range(0, len(src), ws_min):
                unit_key, first = self.provisioner.allocate_unit(
                    "gc", group=group)
                dst.extend(Ppa(*unit_key, first + i) for i in range(ws_min))
        except OutOfSpaceError:
            # _fits() said this would fit, so accounting drifted; don't
            # raise out of the collector.  Pad out the units already taken
            # as dead sectors so provisioner cursors and device write
            # pointers stay aligned, then skip the victim.
            if dst:
                completion = yield from self.media.write_proc(
                    dst, [b""] * len(dst), oob=[NO_PPA] * len(dst),
                    parent=parent)
                self.media.require_ok(completion, "GC relocation abort pad")
            self._count_skip_no_space()
            return False
        completion = yield from self.media.copy_proc(src, dst,
                                                     dst_oob=list(lbas),
                                                     parent=parent)
        self.media.require_ok(completion, "GC relocation copy")
        yield from self.media.flush_proc()

        # Re-validate under the (held) dispatch lock and commit the moves.
        txn = self.next_txn_id()
        entries: List[Tuple[int, int, int]] = []
        for src_ppa, dst_ppa, lba in zip(src, dst, lbas):
            if lba == NO_PPA:
                continue
            old_linear = self.geometry.linearize(src_ppa)
            if self.page_map.lookup(lba) != old_linear:
                continue   # overwritten while we copied; copy is garbage
            new_linear = self.geometry.linearize(dst_ppa)
            self.page_map.update(lba, new_linear)
            self.chunk_table.add_valid(dst_ppa.chunk_key())
            self.chunk_table.invalidate(key)
            entries.append((lba, new_linear, old_linear))
            self.stats.sectors_relocated += 1
        if self.obs is not None and entries:
            self.obs.metrics.counter(
                "ftl.gc.sectors_relocated").increment(len(entries))
        if entries:
            self.wal.append_map_update(txn, entries)
            self.wal.append_commit(txn)
            yield from self.wal.flush_proc(parent=parent)
        return True
