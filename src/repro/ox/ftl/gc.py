"""Group-local garbage collection (§4.3).

"For garbage collection, OX-Block marks a group for collection.  Then,
background threads recycle victim chunks within that group.  This
guarantees locality of interferences from garbage collection" — on a
16-channel SSD 93.7 % of the address space sees no GC interference, 87.5 %
on 8 channels.  The collector here does exactly that: victims are chosen
within the *marked group* only, relocation targets are allocated in the
same group (a dedicated "gc" provisioning stream), and all GC media
traffic therefore contends only with I/O to that one group.

Relocation is crash-safe by ordering: device-internal copy, device flush
(copies durable), WAL commit of the map updates, only then the victim
reset.  Validity is re-checked under the dispatch lock after the copy, so
a user overwrite racing the relocation can never be undone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import OutOfSpaceError
from repro.ocssd.address import Ppa
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkInfo, FtlChunkState
from repro.ox.ftl.provisioning import Provisioner
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import WalAppender
from repro.ox.media import MediaManager

ChunkKey = Tuple[int, int, int]


@dataclass
class GcStats:
    chunks_recycled: int = 0
    sectors_relocated: int = 0
    resets: int = 0
    reset_failures: int = 0
    group_rotations: int = 0


class GarbageCollector:
    """Recycles invalid space, one marked group at a time.

    Every ``*_locked_proc`` generator must be driven while the caller holds
    the FTL dispatch lock: GC mutates the mapping table, chunk metadata and
    provisioner state.
    """

    def __init__(self, media: MediaManager, page_map: PageMap,
                 chunk_table: ChunkTable, provisioner: Provisioner,
                 wal: WalAppender, next_txn_id: Callable[[], int]):
        self.media = media
        self.geometry = media.geometry
        self.page_map = page_map
        self.chunk_table = chunk_table
        self.provisioner = provisioner
        self.wal = wal
        self.next_txn_id = next_txn_id
        self.marked_group = 0
        self.stats = GcStats()

    # -- victim selection ----------------------------------------------------------

    def pick_victim(self) -> Optional[FtlChunkInfo]:
        """The most-invalid FULL chunk of the marked group; rotates the
        marked group when the current one has nothing to collect."""
        for __ in range(self.geometry.num_groups):
            victims = self.chunk_table.victims_in_group(self.marked_group)
            if victims:
                return victims[0]
            self.marked_group = (self.marked_group + 1) \
                % self.geometry.num_groups
            self.stats.group_rotations += 1
        return None

    # -- collection ---------------------------------------------------------------------

    def collect_once_locked_proc(self):
        """Collect one victim; returns True if a chunk was recycled."""
        victim = self.pick_victim()
        if victim is None:
            return False
        yield from self._relocate_and_reset_proc(victim)
        return True

    def collect_group_locked_proc(self, group: int,
                                  max_victims: int = 0):
        """Collect victims of *group* only — no rotation.  Used when the
        caller wants the paper's group-confined interference window (the
        GC-locality experiment).  Returns the number of chunks recycled.
        """
        recycled = 0
        while not max_victims or recycled < max_victims:
            victims = self.chunk_table.victims_in_group(group)
            if not victims:
                break
            yield from self._relocate_and_reset_proc(victims[0])
            recycled += 1
        return recycled

    def collect_until_locked_proc(self, target_free: int):
        """Collect until the free pool reaches *target_free* chunks (or no
        victims remain); returns the number of chunks recycled."""
        recycled = 0
        while self.provisioner.free_chunks() < target_free:
            progressed = yield from self.collect_once_locked_proc()
            if not progressed:
                break
            recycled += 1
        return recycled

    def _relocate_and_reset_proc(self, victim: FtlChunkInfo):
        key = victim.key
        base = Ppa(*key, 0)
        info = self.media.chunk_info(base)
        live = yield from self._find_live_sectors_proc(key,
                                                       info.write_pointer)
        if live:
            yield from self._relocate_proc(key, live)
        # Copies (if any) are durable and remapped; the victim holds only
        # dead data now.
        victim.valid_count = 0
        completion = yield from self.media.reset_proc(base)
        self.stats.resets += 1
        if completion.ok:
            self.provisioner.release_chunk(key)
            self.stats.chunks_recycled += 1
        else:
            self.provisioner.retire_chunk(key)
            self.stats.reset_failures += 1

    def _find_live_sectors_proc(self, key: ChunkKey, write_pointer: int):
        """Read the victim's OOB to learn owning LBAs, keep the sectors the
        mapping table still points at.  The read is real device traffic —
        this is the GC interference the locality experiment measures."""
        if write_pointer == 0:
            return []
        ppas = [Ppa(*key, s) for s in range(write_pointer)]
        completion = yield from self.media.read_proc(ppas)
        self.media.require_ok(completion, "GC victim scan")
        live: List[Tuple[int, int]] = []   # (sector, lba)
        for sector, lba in enumerate(completion.oob):
            if not isinstance(lba, int) or lba == NO_PPA:
                continue
            current = self.page_map.lookup(lba)
            if current is not None and \
                    self.geometry.delinearize(current).chunk_key() == key \
                    and self.geometry.delinearize(current).sector == sector:
                live.append((sector, lba))
        return live

    def _relocate_proc(self, key: ChunkKey, live: List[Tuple[int, int]]):
        ws_min = self.geometry.ws_min
        group = key[0]
        src: List[Ppa] = []
        dst: List[Ppa] = []
        lbas: List[int] = []
        for sector, lba in live:
            src.append(Ppa(*key, sector))
            lbas.append(lba)
        # Pad the relocation to whole write units with dead-sector copies
        # (their OOB marks them unowned, so they are invalid on arrival).
        pad = (-len(src)) % ws_min
        for extra in range(pad):
            src.append(src[-1])   # recopy an arbitrary sector as filler
            lbas.append(-1)
        for index in range(0, len(src), ws_min):
            unit_key, first = self.provisioner.allocate_unit(
                "gc", group=group)
            dst.extend(Ppa(*unit_key, first + i) for i in range(ws_min))
        completion = yield from self.media.copy_proc(src, dst)
        self.media.require_ok(completion, "GC relocation copy")
        yield from self.media.flush_proc()

        # Re-validate under the (held) dispatch lock and commit the moves.
        txn = self.next_txn_id()
        entries: List[Tuple[int, int, int]] = []
        for src_ppa, dst_ppa, lba in zip(src, dst, lbas):
            if lba < 0:
                continue
            old_linear = self.geometry.linearize(src_ppa)
            if self.page_map.lookup(lba) != old_linear:
                continue   # overwritten while we copied; copy is garbage
            new_linear = self.geometry.linearize(dst_ppa)
            self.page_map.update(lba, new_linear)
            self.chunk_table.add_valid(dst_ppa.chunk_key())
            self.chunk_table.invalidate(key)
            entries.append((lba, new_linear, old_linear))
            self.stats.sectors_relocated += 1
        if entries:
            self.wal.append_map_update(txn, entries)
            self.wal.append_commit(txn)
            yield from self.wal.flush_proc()
