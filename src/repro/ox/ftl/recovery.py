"""Crash recovery: checkpoint load + WAL replay + physical reconciliation.

After a failure "OX [relies] on recovery to reconstruct metadata and
mapping information and bring the Open-Channel SSD back to a consistent
state" (§4.3).  Recovery here:

1. reads the newest complete checkpoint (both slots, footer-validated);
2. replays the WAL of that checkpoint's epoch, applying *committed*
   transactions only — and only when every sector a transaction mapped is
   actually on media (below the post-crash write pointer).  Transactions
   whose data died in the controller cache are dropped whole, preserving
   atomicity; this is the paper's "some updates since last checkpoint
   might not be persisted";
3. reconciles the FTL chunk table with a device chunk scan and rebuilds
   the provisioner (adopting at most one partially-written chunk per PU,
   closing the rest early).

Every read is timed through the device, and replay pays a per-record CPU
cost, so the *recovery time* this module reports is the quantity Figure 3
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ocssd.address import Ppa
from repro.ocssd.chunk import ChunkState
from repro.ox.ftl.checkpoint import CheckpointManager
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkState
from repro.ox.ftl.provisioning import MetadataLayout, Provisioner
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import WalReader, committed_transactions
from repro.ox.media import MediaManager


@dataclass
class RecoveryReport:
    """What recovery did and how long it took (simulated seconds)."""

    duration: float = 0.0
    checkpoint_seq: int = 0
    wal_sectors_read: int = 0
    records_decoded: int = 0
    txns_applied: int = 0
    txns_dropped: int = 0
    #: LBAs whose mappings pointed into chunks that went offline (grown
    #: bad blocks): their data is gone, they read as zeroes from now on.
    lost_lbas: List[int] = field(default_factory=list)


@dataclass
class RecoveredState:
    page_map: PageMap
    chunk_table: ChunkTable
    provisioner: Provisioner
    next_txn_id: int
    epoch: int
    report: RecoveryReport


def recover_proc(media: MediaManager, layout: MetadataLayout,
                 replay_cpu_per_record: float = 2e-6,
                 map_backend: str = "array",
                 placement=None):
    """Process generator: rebuild FTL state from media; returns
    :class:`RecoveredState`.  *placement* (a
    :class:`repro.policies.PlacementPolicy`) seeds the rebuilt
    provisioner; None keeps the default striped policy."""
    sim = media.sim
    started = sim.now
    report = RecoveryReport()
    geometry = media.geometry

    # 1. Checkpoint.
    ckpt = CheckpointManager(media, layout.ckpt_slots)
    snapshot = yield from ckpt.read_latest_proc()
    page_map = PageMap(backend=map_backend)
    chunk_table = ChunkTable(geometry, iter(layout.data_chunk_keys()))
    epoch = 0
    next_txn_id = 1
    if snapshot is not None:
        page_map.load(iter(snapshot.map_entries))
        for row in snapshot.chunk_rows:
            chunk_table.load_row(*row)
        epoch = snapshot.seq
        next_txn_id = snapshot.next_txn_id
        report.checkpoint_seq = snapshot.seq

    # 2. WAL replay.
    reader = WalReader(media, layout.wal_chunks, epoch)
    records = yield from reader.read_proc()
    report.wal_sectors_read = reader.sectors_read
    report.records_decoded = len(records)
    data_keys = set(key for key, __ in chunk_table.items())

    def classify(linear_ppa: int) -> str:
        """Where did this entry's data end up?

        ``"ok"``: durably on media.  ``"offline"``: the txn persisted but
        its chunk has since gone bad — the data is destroyed, the lba
        reads as zeroes (same policy as a live async retirement).
        ``"gone"``: the data died in the volatile cache — the txn never
        fully persisted and must be dropped whole for atomicity.
        """
        ppa = geometry.delinearize(linear_ppa)
        if ppa.chunk_key() not in data_keys:
            return "gone"
        info = media.chunk_info(ppa)
        if info.state is ChunkState.OFFLINE:
            return "offline"
        return "ok" if ppa.sector < info.write_pointer else "gone"

    # Pass 1: collect the committed transactions (paying the replay CPU
    # cost) and index, per LBA, which transactions write it and in what
    # order.
    txns: List[Tuple[int, list]] = []
    writers: dict = {}   # lba -> [txn index, ...] in commit order
    for txn_id, entries in committed_transactions(iter(records)):
        next_txn_id = max(next_txn_id, txn_id + 1)
        if replay_cpu_per_record:
            yield sim.timeout(replay_cpu_per_record * max(1, len(entries)))
        index = len(txns)
        txns.append((txn_id, entries))
        for lba, __, _old in entries:
            writers.setdefault(lba, []).append(index)

    # Pass 2: decide which transactions to drop.  A txn whose data died
    # in the volatile cache ("gone") must be dropped whole — applying it
    # partially would tear an atomic write.  But "gone" alone is not
    # enough: GC relocations and overwrites legitimately leave stale
    # entries pointing into chunks that were since erased, with a later
    # committed record superseding them.  Only an entry that would be the
    # *final* word on its LBA forces the drop; dropping a txn can in turn
    # expose an older txn's gone entry as final, so iterate to a fixed
    # point (each round drops at least one txn, so this terminates).
    dropped: set = set()

    def final_writer(lba: int) -> Optional[int]:
        for index in reversed(writers[lba]):
            if index not in dropped:
                return index
        return None

    while True:
        newly = set()
        for index, (txn_id, entries) in enumerate(txns):
            if index in dropped:
                continue
            for lba, new, __ in entries:
                if new == NO_PPA:
                    continue   # a trim cannot lose data
                if final_writer(lba) != index:
                    continue   # superseded by a later committed record
                if classify(new) == "gone":
                    newly.add(index)
                    break
        if not newly:
            break
        dropped.update(newly)

    # Pass 3: apply the surviving transactions in commit order.  Gone
    # entries of surviving txns are skipped (a later survivor overwrites
    # them — that is why the txn survived); offline entries persisted but
    # their data died with the chunk, so the LBA reads as zeroes.
    report.txns_dropped = len(dropped)
    for index, (txn_id, entries) in enumerate(txns):
        if index in dropped:
            continue
        for lba, new, __ in entries:
            status = "trim" if new == NO_PPA else classify(new)
            if status == "gone":
                continue
            if status == "ok":
                previous = page_map.update(lba, new)
                chunk_table.add_valid(geometry.delinearize(new).chunk_key())
            else:   # trim, or data lost with its offline chunk
                previous = page_map.remove(lba)
                if status == "offline":
                    report.lost_lbas.append(lba)
            if previous is not None:
                chunk_table.invalidate(
                    geometry.delinearize(previous).chunk_key())
        report.txns_applied += 1

    # 3. Physical reconciliation + provisioner rebuild.
    open_candidates = []
    offline_keys = set()
    for descriptor in media.scan_chunks():
        key = descriptor.ppa.chunk_key()
        if key not in data_keys:
            continue
        info = chunk_table.get(key)
        if descriptor.state is ChunkState.OFFLINE:
            info.state = FtlChunkState.BAD
            info.valid_count = 0
            offline_keys.add(key)
        elif descriptor.state is ChunkState.FREE:
            info.state = FtlChunkState.FREE
            info.valid_count = 0
            info.write_next = 0
        elif descriptor.state is ChunkState.CLOSED:
            info.state = FtlChunkState.FULL
            info.write_next = descriptor.capacity
        else:  # OPEN
            info.state = FtlChunkState.FULL  # provisional: close early
            info.write_next = descriptor.write_pointer
            if descriptor.write_pointer % geometry.ws_min == 0:
                open_candidates.append((key, descriptor.write_pointer))
            # A torn write unit leaves the pointer mid-unit: the chunk
            # cannot be resumed (programs start at unit boundaries), so
            # it stays closed early and GC reclaims it eventually.

    if offline_keys:
        # The checkpoint may predate a retirement: drop mappings into
        # chunks that ended up offline, mirroring the live policy of
        # zero-reads for data lost with its chunk.  Validity counts were
        # zeroed with the chunk above, so only the map needs cleaning.
        dropped = [lba for lba, linear in list(page_map.items())
                   if geometry.delinearize(linear).chunk_key()
                   in offline_keys]
        for lba in dropped:
            page_map.remove(lba)
        report.lost_lbas.extend(dropped)

    provisioner = Provisioner(geometry, chunk_table, placement=placement)
    for key, write_pointer in open_candidates:
        provisioner.adopt_open_chunk(key, write_pointer, stream="user")

    report.duration = sim.now - started
    return RecoveredState(page_map=page_map, chunk_table=chunk_table,
                          provisioner=provisioner, next_txn_id=next_txn_id,
                          epoch=epoch, report=report)
