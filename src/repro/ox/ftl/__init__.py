"""The modular OX FTL: the components of Figure 2.

Each component is reusable across the OX-based FTLs (OX-Block, OX-ELEOS,
LightLSM): a page-granularity mapping table, chunk provisioning, a write
buffer, a write-ahead log, checkpointing, group-local garbage collection
and crash recovery.
"""

from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkInfo, FtlChunkState
from repro.ox.ftl.provisioning import MetadataLayout, Provisioner
from repro.ox.ftl.wal import WalAppender, WalReader, WalRecord
from repro.ox.ftl.checkpoint import CheckpointManager, CheckpointSnapshot
from repro.ox.ftl.gc import GarbageCollector, GcStats
from repro.ox.ftl.writebuffer import WriteBuffer

__all__ = [
    "PageMap",
    "ChunkTable",
    "FtlChunkInfo",
    "FtlChunkState",
    "MetadataLayout",
    "Provisioner",
    "WalAppender",
    "WalReader",
    "WalRecord",
    "CheckpointManager",
    "CheckpointSnapshot",
    "GarbageCollector",
    "GcStats",
    "WriteBuffer",
]
