"""Provisioning: metadata layout and physical space allocation.

Two concerns live here:

* :class:`MetadataLayout` carves the physical space into the WAL region,
  the two checkpoint slots, and the data region (recovery log and
  "mapping and block metadata" persistence need a home the FTL can find
  again after a crash — they get fixed chunks in group 0).
* :class:`Provisioner` hands out write space in the data region.  Space is
  allocated in ``ws_min`` *units*, round-robin across parallel units so
  large writes stripe across chips, with independent *streams* (user I/O
  vs. garbage collection) so GC relocation does not interleave into user
  chunks — the separation pblk calls user/GC lines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FTLError, OutOfSpaceError
from repro.ocssd.address import Ppa
from repro.ocssd.geometry import DeviceGeometry
from repro.ox.ftl.metadata import ChunkTable, FtlChunkInfo, FtlChunkState
from repro.policies.placement import PlacementPolicy, StripedPlacement

ChunkKey = Tuple[int, int, int]
PuKey = Tuple[int, int]


@dataclass(frozen=True)
class MetadataLayout:
    """Where the FTL keeps its own durable state.

    Checkpoint slots and WAL chunks are taken from the lowest chunk
    indexes of group 0, striped over that group's PUs; everything else is
    the data region.
    """

    geometry: DeviceGeometry
    wal_chunks: Tuple[ChunkKey, ...]
    ckpt_slots: Tuple[Tuple[ChunkKey, ...], Tuple[ChunkKey, ...]]

    @classmethod
    def build(cls, geometry: DeviceGeometry, wal_chunk_count: int = 4,
              ckpt_chunks_per_slot: int = 1) -> "MetadataLayout":
        needed = wal_chunk_count + 2 * ckpt_chunks_per_slot
        pool: List[ChunkKey] = []
        for chunk in range(geometry.chunks_per_pu):
            for pu in range(geometry.pus_per_group):
                pool.append((0, pu, chunk))
                if len(pool) == needed:
                    break
            if len(pool) == needed:
                break
        if len(pool) < needed:
            raise FTLError(
                f"group 0 has {geometry.pus_per_group * geometry.chunks_per_pu}"
                f" chunks; metadata layout needs {needed}")
        slot_a = tuple(pool[:ckpt_chunks_per_slot])
        slot_b = tuple(pool[ckpt_chunks_per_slot:2 * ckpt_chunks_per_slot])
        wal = tuple(pool[2 * ckpt_chunks_per_slot:needed])
        return cls(geometry=geometry, wal_chunks=wal,
                   ckpt_slots=(slot_a, slot_b))

    def metadata_chunk_keys(self) -> set[ChunkKey]:
        keys = set(self.wal_chunks)
        keys.update(self.ckpt_slots[0])
        keys.update(self.ckpt_slots[1])
        return keys

    def data_chunk_keys(self) -> List[ChunkKey]:
        reserved = self.metadata_chunk_keys()
        keys = []
        for group in range(self.geometry.num_groups):
            for pu in range(self.geometry.pus_per_group):
                for chunk in range(self.geometry.chunks_per_pu):
                    key = (group, pu, chunk)
                    if key not in reserved:
                        keys.append(key)
        return keys


@dataclass
class _StreamState:
    """Round-robin cursor plus the stream's open chunks and filling unit."""

    open_chunks: Dict[PuKey, ChunkKey] = field(default_factory=dict)
    pu_index: int = 0
    # Sector-granular allocation: the unit currently being filled.
    fill_key: Optional[ChunkKey] = None
    fill_next: int = 0
    fill_end: int = 0


class Provisioner:
    """Allocates data-region space in write units, per stream."""

    def __init__(self, geometry: DeviceGeometry, table: ChunkTable,
                 gc_headroom: int = 0,
                 placement: Optional[PlacementPolicy] = None):
        self.geometry = geometry
        self.table = table
        # Placement policy (repro.policies): owns the PU ordering of
        # every allocation.  The default striped policy reproduces the
        # legacy round-robin bit-for-bit.
        self.placement = placement if placement is not None \
            else StripedPlacement()
        # Free chunks per group that only the "gc" stream may open: GC
        # runs *because* space is low, so without a reservation the
        # collector can find victims but no destination to move their
        # live data into (the rationale Lomet & Luo give for reserving
        # reclamation space in log-structured stores).
        self.gc_headroom = gc_headroom
        self._all_pus: List[PuKey] = list(geometry.iter_pus())
        self._free: Dict[PuKey, deque[ChunkKey]] = {
            pu: deque() for pu in self._all_pus}
        # Running per-group totals of the deques above: the write path
        # checks headroom on every transaction, so these counters replace
        # a scan over all PUs with a dict lookup.
        self._group_free_count: Dict[int, int] = {
            group: 0 for group in range(geometry.num_groups)}
        for key, info in sorted(table.items()):
            if info.state is FtlChunkState.FREE:
                self._free[(key[0], key[1])].append(key)
                self._group_free_count[key[0]] += 1
        self._streams: Dict[str, _StreamState] = {}

    # -- stream helpers ---------------------------------------------------------

    def _stream(self, name: str) -> _StreamState:
        if name not in self._streams:
            self._streams[name] = _StreamState()
        return self._streams[name]

    def _pu_cycle(self, stream: str, state: _StreamState,
                  group: Optional[int]) -> List[PuKey]:
        return self.placement.pu_cycle(stream, state, group,
                                       self._all_pus, self)

    # -- allocation ---------------------------------------------------------------

    def allocate_unit(self, stream: str = "user",
                      group: Optional[int] = None) -> Tuple[ChunkKey, int]:
        """Reserve one ``ws_min`` unit; returns ``(chunk_key, first_sector)``.

        Successive calls rotate across parallel units (striping).  With
        *group* set, allocation is confined to that group (GC locality).
        """
        state = self._stream(stream)
        ws_min = self.geometry.ws_min
        headroom = self.gc_headroom if stream != "gc" else 0
        for pu in self._pu_cycle(stream, state, group):
            key = state.open_chunks.get(pu)
            if key is None:
                if not self._free[pu]:
                    continue
                if headroom and self._group_free(pu[0]) <= headroom:
                    continue      # reserved for GC relocation
                key = self._free[pu].popleft()
                self._group_free_count[pu[0]] -= 1
                info = self.table.get(key)
                info.state = FtlChunkState.OPEN
                info.write_next = 0
                state.open_chunks[pu] = key
            info = self.table.get(key)
            first = info.write_next
            info.write_next += ws_min
            if info.write_next >= self.geometry.sectors_per_chunk:
                info.state = FtlChunkState.FULL
                del state.open_chunks[pu]
            return key, first
        raise OutOfSpaceError(
            f"no free chunks available for stream {stream!r}"
            + (f" in group {group}" if group is not None else ""))

    def allocate_sector(self, stream: str = "user",
                        group: Optional[int] = None) -> Ppa:
        """Reserve a single sector; units fill sequentially, then the
        cursor moves to the next PU's unit."""
        state = self._stream(stream)
        if state.fill_key is None or state.fill_next >= state.fill_end:
            key, first = self.allocate_unit(stream, group)
            state.fill_key = key
            state.fill_next = first
            state.fill_end = first + self.geometry.ws_min
        group_, pu, chunk = state.fill_key
        ppa = Ppa(group_, pu, chunk, state.fill_next)
        state.fill_next += 1
        return ppa

    def current_unit_remaining(self, stream: str = "user") -> int:
        """Sectors left in the stream's currently-filling unit (0 if none).
        The write buffer uses this to decide how much padding a forced
        flush needs."""
        state = self._stream(stream)
        if state.fill_key is None:
            return 0
        return state.fill_end - state.fill_next

    # -- reclamation -----------------------------------------------------------------

    def release_chunk(self, key: ChunkKey) -> None:
        """Return a recycled (reset) chunk to the free pool."""
        info = self.table.get(key)
        if info.valid_count:
            raise FTLError(
                f"releasing chunk {key} with {info.valid_count} valid sectors")
        info.state = FtlChunkState.FREE
        info.write_next = 0
        info.erase_seq = self.table.clock()
        info.erase_count += 1
        self._free[(key[0], key[1])].append(key)
        self._group_free_count[key[0]] += 1

    def retire_chunk(self, key: ChunkKey) -> None:
        """Drop a chunk that went offline (grown bad block)."""
        info = self.table.get(key)
        info.state = FtlChunkState.BAD
        for stream in self._streams.values():
            for pu, open_key in list(stream.open_chunks.items()):
                if open_key == key:
                    del stream.open_chunks[pu]
            if stream.fill_key == key:
                stream.fill_key = None

    # -- occupancy --------------------------------------------------------------------

    def free_chunks(self) -> int:
        return sum(self._group_free_count.values())

    def _group_free(self, group: int) -> int:
        return self._group_free_count.get(group, 0)

    def group_free(self, group: int) -> int:
        """Free chunks currently in *group* (placement policies use
        this to steer their preference order)."""
        return self._group_free_count.get(group, 0)

    def units_available(self, stream: str = "user",
                        group: Optional[int] = None) -> int:
        """Write units *stream* could still allocate, without allocating.

        Counts the remaining units of the stream's open chunks plus whole
        free chunks.  GC uses this to check that a victim's live data fits
        in its group *before* starting a relocation it could not finish.
        """
        state = self._stream(stream)
        ws_min = self.geometry.ws_min
        sectors = self.geometry.sectors_per_chunk
        per_chunk = sectors // ws_min
        units = 0
        for pu, queue in self._free.items():
            if group is None or pu[0] == group:
                units += len(queue) * per_chunk
        for pu, key in state.open_chunks.items():
            if group is None or pu[0] == group:
                units += (sectors - self.table.get(key).write_next) // ws_min
        return units

    def sectors_available(self, stream: str = "user") -> int:
        """Sectors *stream* could still allocate without reclaiming space.

        Counts the currently-filling unit, the unreserved units of the
        stream's open chunks, and the free chunks the stream may open
        (minus the GC headroom reservation for non-GC streams).  The
        write path checks this *before* staging a transaction, so space
        reclamation never has to run in the middle of one.
        """
        state = self._stream(stream)
        sectors = self.geometry.sectors_per_chunk
        headroom = self.gc_headroom if stream != "gc" else 0
        total = self.current_unit_remaining(stream)
        for key in state.open_chunks.values():
            total += sectors - self.table.get(key).write_next
        for group in range(self.geometry.num_groups):
            usable = self._group_free(group) - headroom
            if usable > 0:
                total += usable * sectors
        return total

    def adopt_open_chunk(self, key: ChunkKey, write_next: int,
                         stream: str = "user") -> bool:
        """Recovery helper: resume writing a partially-written chunk.

        Only one open chunk per PU per stream is kept; returns False if the
        slot is taken (the caller then closes the chunk early instead).
        """
        state = self._stream(stream)
        pu = (key[0], key[1])
        if pu in state.open_chunks:
            return False
        info = self.table.get(key)
        info.state = FtlChunkState.OPEN
        info.write_next = write_next
        state.open_chunks[pu] = key
        return True
