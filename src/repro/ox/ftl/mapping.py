"""The page-granularity logical-to-physical mapping table.

OX-Block "maintains a 4KB-granularity page-level mapping table" (§4.2).
The table maps LBAs to linearized PPAs (see
:meth:`repro.ocssd.DeviceGeometry.linearize`) and tracks dirtiness in
fixed-size segments so checkpoints can persist incrementally and the
"mapping information may be read and persisted by caching mechanisms"
component of Figure 2 has a concrete unit of granularity.

Storage layout: a flat ``array('q')`` indexed by LBA with ``-1`` marking
unmapped slots — eight bytes per slot instead of a dict entry's boxed
key/value pair, and naturally ordered so checkpoint snapshots need no
sort.  The array grows on demand in whole segments as writes land; LBAs
past :data:`DENSE_LIMIT` (or negative, which no valid caller produces)
spill to a dict so a stray huge key can never balloon the array.  Dirty
segments are a bytearray bitmap parallel to the array.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

#: LBAs at or above this spill to the sparse overflow dict.  16 Mi slots
#: caps the dense array at 128 MB, far above any simulated device here.
DENSE_LIMIT = 1 << 24

_UNMAPPED = -1

# Shared 0..n-1 ramp for snapshot interleaving: slicing a cached array
# is a memcpy, versus boxing every index when building from range().
_IOTA_CACHE = array("q")


def _iota(count: int) -> array:
    if len(_IOTA_CACHE) < count:
        _IOTA_CACHE.extend(range(len(_IOTA_CACHE), count))
    return _IOTA_CACHE[:count]


#: Vector backends for the bulk snapshot paths.  Scalar lookups/updates
#: always use the plain ``array('q')`` table (numpy scalar indexing is
#: slower, not faster); the backend only changes how snapshots are
#: interleaved and serialized.
VECTOR_BACKENDS = ("array", "numpy")


class PageMap:
    """LBA -> linear PPA map with segment-level dirty tracking."""

    def __init__(self, segment_size: int = 1024, backend: str = "array"):
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        if backend not in VECTOR_BACKENDS:
            from repro.errors import ReproError
            raise ReproError(f"unknown vector backend {backend!r}; "
                             f"expected one of {VECTOR_BACKENDS}")
        self._np = None
        if backend == "numpy":
            try:
                import numpy
            except ImportError:
                from repro.errors import ReproError
                raise ReproError(
                    "vector_backend 'numpy' requires numpy, which is not "
                    "installed; use the default 'array' backend") from None
            self._np = numpy
        self.backend = backend
        self.segment_size = segment_size
        self._table = array("q")
        self._dirty = bytearray()       # one flag per dense segment
        self._dirty_count = 0
        self._count = 0                 # mapped entries in the dense table
        self._max_lba = -1              # upper bound on mapped dense LBAs
        self._sparse: Dict[int, int] = {}
        self._sparse_dirty: set = set()

    def __len__(self) -> int:
        return self._count + len(self._sparse)

    def __contains__(self, lba: int) -> bool:
        return self.lookup(lba) is not None

    def lookup(self, lba: int) -> Optional[int]:
        """The current physical location of *lba*, or None if unmapped.

        Never grows the table: GC probes it with whatever integers it
        finds in chunk OOB areas.
        """
        if 0 <= lba < len(self._table):
            ppa = self._table[lba]
            return None if ppa == _UNMAPPED else ppa
        if self._sparse:
            return self._sparse.get(lba)
        return None

    def update(self, lba: int, ppa: int) -> Optional[int]:
        """Point *lba* at *ppa*; returns the previous PPA (None if new)."""
        if 0 <= lba < DENSE_LIMIT:
            table = self._table
            if lba >= len(table):
                self._grow(lba)
                table = self._table
            previous = table[lba]
            table[lba] = ppa
            segment = lba // self.segment_size
            if not self._dirty[segment]:
                self._dirty[segment] = 1
                self._dirty_count += 1
            if lba > self._max_lba:
                self._max_lba = lba
            if previous == _UNMAPPED:
                self._count += 1
                return None
            return previous
        previous = self._sparse.get(lba)
        self._sparse[lba] = ppa
        self._sparse_dirty.add(lba // self.segment_size)
        return previous

    def update_run(self, lba: int, ppa0: int, count: int) -> array:
        """Bulk :meth:`update` of *count* LBAs mapped to the contiguous
        linear run starting at *ppa0* (a whole write unit, typically).

        Returns the previous linear PPAs as an ``array('q')`` with
        :data:`_UNMAPPED` (-1) for previously-unmapped slots — callers
        use it to invalidate overwritten chunks and to build WAL
        entries, exactly as they would the scalar return values.
        """
        end = lba + count
        if lba < 0 or end > DENSE_LIMIT:
            previous = array("q")
            for index in range(count):
                old = self.update(lba + index, ppa0 + index)
                previous.append(_UNMAPPED if old is None else old)
            return previous
        table = self._table
        if end > len(table):
            self._grow(end - 1)
            table = self._table
        previous = table[lba:end]
        table[lba:end] = array("q", range(ppa0, ppa0 + count))
        segment_size = self.segment_size
        dirty = self._dirty
        for segment in range(lba // segment_size,
                             (end - 1) // segment_size + 1):
            if not dirty[segment]:
                dirty[segment] = 1
                self._dirty_count += 1
        if end - 1 > self._max_lba:
            self._max_lba = end - 1
        self._count += previous.count(_UNMAPPED)
        return previous

    def remove(self, lba: int) -> Optional[int]:
        """Unmap *lba* (trim); returns the previous PPA (None if unmapped)."""
        if 0 <= lba < len(self._table):
            previous = self._table[lba]
            if previous == _UNMAPPED:
                return None
            self._table[lba] = _UNMAPPED
            self._count -= 1
            segment = lba // self.segment_size
            if not self._dirty[segment]:
                self._dirty[segment] = 1
                self._dirty_count += 1
            return previous
        previous = self._sparse.pop(lba, None)
        if previous is not None:
            self._sparse_dirty.add(lba // self.segment_size)
        return previous

    def items(self) -> Iterator[Tuple[int, int]]:
        for lba, ppa in enumerate(self._table):
            if ppa != _UNMAPPED:
                yield lba, ppa
        yield from self._sparse.items()

    def _grow(self, lba: int) -> None:
        """Extend the dense table (and dirty bitmap) to cover *lba*,
        rounding up to a whole segment."""
        segment_size = self.segment_size
        segments = lba // segment_size + 1
        self._table.extend(
            [_UNMAPPED] * (segments * segment_size - len(self._table)))
        self._dirty.extend(bytes(segments - len(self._dirty)))

    # -- checkpoint support ---------------------------------------------------

    @property
    def dirty_segment_count(self) -> int:
        return self._dirty_count + len(self._sparse_dirty)

    def mark_clean(self) -> None:
        """Called after a checkpoint has persisted the table."""
        self._dirty = bytearray(len(self._dirty))
        self._dirty_count = 0
        self._sparse_dirty.clear()

    def load(self, entries: Iterator[Tuple[int, int]]) -> None:
        """Bulk-load from a checkpoint (replaces current content, clean)."""
        self._table = array("q")
        self._dirty = bytearray()
        self._dirty_count = 0
        self._count = 0
        self._max_lba = -1
        self._sparse = {}
        self._sparse_dirty = set()
        for lba, ppa in entries:
            self.update(lba, ppa)
        self.mark_clean()

    def snapshot(self) -> List[Tuple[int, int]]:
        """A stable copy of all entries, sorted by LBA (for checkpoints).

        The dense table is sorted by construction, so the common case is a
        single linear scan with no sort at all.  When the mapped LBAs form
        an unbroken prefix (``_count == _max_lba + 1`` — the sequential-fill
        steady state), the scan collapses to a C-level ``zip``.
        """
        if not self._sparse and self._count == self._max_lba + 1:
            count = self._count
            return list(zip(range(count), self._table[:count]))
        result = [(lba, ppa) for lba, ppa in enumerate(self._table)
                  if ppa != _UNMAPPED]
        if self._sparse:
            overflow = sorted(self._sparse.items())
            # Negative keys (never produced by valid callers) would sort
            # before the dense range; merge correctly regardless.
            if overflow and overflow[0][0] < len(self._table):
                result = sorted(result + overflow)
            else:
                result.extend(overflow)
        return result

    def snapshot_flat(self) -> List[int]:
        """:meth:`snapshot` flattened to ``[lba0, ppa0, lba1, ppa1, ...]``.

        The checkpoint encoder consumes exactly this shape; a prefix-dense
        map builds it with two C-level slice assignments and no per-entry
        tuples at all.
        """
        if not self._sparse and self._count == self._max_lba + 1:
            count = self._count
            flat = [0] * (2 * count)
            flat[0::2] = range(count)
            flat[1::2] = self._table[:count]
            return flat
        from itertools import chain
        return list(chain.from_iterable(self.snapshot()))

    def snapshot_packed(self) -> bytes:
        """:meth:`snapshot_flat` packed to little-endian ``<QQ`` bytes.

        Byte-identical to ``struct.Struct("<QQ" * n).pack(*snapshot_flat())``
        — LBAs and PPAs are non-negative and below 2**63, so the signed
        ``array('q')`` buffer reads back the same bytes as unsigned ``Q``.
        The prefix-dense case interleaves with two C-level slice assignments
        (or two numpy column stores under the ``numpy`` backend) and
        serializes with one ``tobytes``; the checkpoint encoder then slices
        records out of the blob without ever touching per-entry ints.
        """
        np = self._np
        dense = not self._sparse and self._count == self._max_lba + 1
        if np is not None and dense:
            count = self._count
            out = np.empty((count, 2), dtype="<i8")
            out[:, 0] = np.arange(count)
            out[:, 1] = np.frombuffer(self._table, dtype=np.int64,
                                      count=count)
            return out.tobytes()
        import sys
        if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
            flat = self.snapshot_flat()
            from repro.ox.ftl.serial import _batch
            return _batch("QQ", len(flat) // 2).pack(*flat)
        if dense:
            count = self._count
            packed = array("q", bytes(16 * count))
            packed[0::2] = _iota(count)
            packed[1::2] = self._table[:count]
            return packed.tobytes()
        return array("q", self.snapshot_flat()).tobytes()

    def memory_bytes(self) -> int:
        """Approximate resident size of the table (perf harness metric)."""
        import sys
        # getsizeof(array) already counts the backing buffer.
        total = sys.getsizeof(self._table) + sys.getsizeof(self._dirty)
        if self._sparse:
            total += sys.getsizeof(self._sparse) + \
                len(self._sparse) * sys.getsizeof(0) * 2
        return total
