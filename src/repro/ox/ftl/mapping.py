"""The page-granularity logical-to-physical mapping table.

OX-Block "maintains a 4KB-granularity page-level mapping table" (§4.2).
The table maps LBAs to linearized PPAs (see
:meth:`repro.ocssd.DeviceGeometry.linearize`) and tracks dirtiness in
fixed-size segments so checkpoints can persist incrementally and the
"mapping information may be read and persisted by caching mechanisms"
component of Figure 2 has a concrete unit of granularity.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple


class PageMap:
    """LBA -> linear PPA map with segment-level dirty tracking."""

    def __init__(self, segment_size: int = 1024):
        if segment_size < 1:
            raise ValueError(f"segment_size must be >= 1, got {segment_size}")
        self.segment_size = segment_size
        self._map: Dict[int, int] = {}
        self._dirty_segments: Set[int] = set()

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, lba: int) -> bool:
        return lba in self._map

    def lookup(self, lba: int) -> Optional[int]:
        """The current physical location of *lba*, or None if unmapped."""
        return self._map.get(lba)

    def update(self, lba: int, ppa: int) -> Optional[int]:
        """Point *lba* at *ppa*; returns the previous PPA (None if new)."""
        previous = self._map.get(lba)
        self._map[lba] = ppa
        self._dirty_segments.add(lba // self.segment_size)
        return previous

    def remove(self, lba: int) -> Optional[int]:
        """Unmap *lba* (trim); returns the previous PPA (None if unmapped)."""
        previous = self._map.pop(lba, None)
        if previous is not None:
            self._dirty_segments.add(lba // self.segment_size)
        return previous

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._map.items())

    # -- checkpoint support ---------------------------------------------------

    @property
    def dirty_segment_count(self) -> int:
        return len(self._dirty_segments)

    def mark_clean(self) -> None:
        """Called after a checkpoint has persisted the table."""
        self._dirty_segments.clear()

    def load(self, entries: Iterator[Tuple[int, int]]) -> None:
        """Bulk-load from a checkpoint (replaces current content, clean)."""
        self._map = dict(entries)
        self._dirty_segments.clear()

    def snapshot(self) -> list[Tuple[int, int]]:
        """A stable copy of all entries, sorted by LBA (for checkpoints)."""
        return sorted(self._map.items())
