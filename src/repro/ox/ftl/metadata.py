"""FTL-side chunk bookkeeping: states, valid-sector counts, write cursors.

The device knows chunk write pointers and media states; the FTL
additionally needs *validity* (how many sectors in a chunk still back live
LBAs) to drive garbage collection, and its own free/open/full/bad view of
the data region.  This is the "block metadata" that checkpoints persist
(Figure 2: "mapping and block metadata may be persisted during checkpoint
process").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FTLError
from repro.ocssd.geometry import DeviceGeometry

ChunkKey = Tuple[int, int, int]


class FtlChunkState(enum.Enum):
    FREE = 0
    OPEN = 1
    FULL = 2
    BAD = 3





@dataclass
class FtlChunkInfo:
    """The FTL's view of one data-region chunk."""

    key: ChunkKey
    state: FtlChunkState = FtlChunkState.FREE
    valid_count: int = 0
    write_next: int = 0   # next sector the FTL will write in this chunk
    linear: int = 0       # linearized chunk index, fixed at registration
    # Age bookkeeping for victim-selection policies (repro.policies):
    # logical stamps from the table's clock, not simulated seconds — GC
    # cares about ordering, and integer ticks cost nothing on the write
    # path.  Stamps are volatile (not checkpointed): after recovery all
    # ages restart at zero and cost-benefit degrades to greedy until
    # new writes re-establish the ordering.
    write_seq: int = 0    # table clock when the chunk last absorbed a write
    erase_seq: int = 0    # table clock at the chunk's last erase (release)
    erase_count: int = 0  # erases survived (wear input for policies)


class ChunkTable:
    """All data-region chunks, indexed by chunk key."""

    def __init__(self, geometry: DeviceGeometry,
                 data_chunks: Iterator[ChunkKey]):
        self.geometry = geometry
        self._capacity = geometry.sectors_per_chunk
        pus = geometry.pus_per_group
        per_pu = geometry.chunks_per_pu
        self._chunks: Dict[ChunkKey, FtlChunkInfo] = {
            key: FtlChunkInfo(key=key,
                              linear=(key[0] * pus + key[1]) * per_pu + key[2])
            for key in data_chunks}
        # The logical clock behind chunk age: ticks once per validity
        # gain, so "age" means "writes ago", independent of timing model.
        self._seq = 0

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._chunks

    def get(self, key: ChunkKey) -> FtlChunkInfo:
        try:
            return self._chunks[key]
        except KeyError:
            raise FTLError(f"chunk {key} is not in the data region") from None

    def items(self) -> Iterator[Tuple[ChunkKey, FtlChunkInfo]]:
        return iter(self._chunks.items())

    def values(self) -> Iterator[FtlChunkInfo]:
        return iter(self._chunks.values())

    # -- the policy clock ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Sectors per chunk (the validity ceiling)."""
        return self._capacity

    def clock(self) -> int:
        """The current logical time (monotone, advances on writes)."""
        return self._seq

    def tick(self) -> int:
        self._seq += 1
        return self._seq

    # -- validity accounting ------------------------------------------------------

    def add_valid(self, key: ChunkKey, count: int = 1) -> None:
        info = self.get(key)
        info.valid_count += count
        self._seq += 1
        info.write_seq = self._seq
        capacity = self._capacity
        if info.valid_count > capacity:
            raise FTLError(
                f"chunk {key} valid count {info.valid_count} exceeds "
                f"capacity {capacity}")

    def invalidate(self, key: ChunkKey, count: int = 1) -> None:
        info = self.get(key)
        info.valid_count -= count
        if info.valid_count < 0:
            raise FTLError(f"chunk {key} valid count went negative")

    # -- GC support -------------------------------------------------------------------

    def gc_candidates(self, group: int) -> List[FtlChunkInfo]:
        """FULL chunks of *group* with at least one invalid sector, in
        table (linear) order — the raw pool a victim policy orders."""
        capacity = self.geometry.sectors_per_chunk
        return [info for key, info in self._chunks.items()
                if key[0] == group
                and info.state is FtlChunkState.FULL
                and info.valid_count < capacity]

    def victims_in_group(self, group: int) -> List[FtlChunkInfo]:
        """GC candidates of *group*, most invalid first — the greedy
        (default) victim-selection order.  The tie-break on the linear
        index is explicit so victim order — and therefore replay — is
        stable no matter how the candidate list was produced."""
        return sorted(self.gc_candidates(group),
                      key=lambda info: (info.valid_count, info.linear))

    def free_count(self) -> int:
        return sum(1 for info in self._chunks.values()
                   if info.state is FtlChunkState.FREE)

    # -- checkpoint support -------------------------------------------------------------

    def snapshot(self) -> List[Tuple[int, int, int]]:
        """``(chunk_linear, state, valid_count)`` rows for checkpointing."""
        # `.value` is a descriptor lookup; `_value_` is the plain
        # attribute underneath it, and thousands of rows go through here
        # per checkpoint.
        rows = [(info.linear, info.state._value_, info.valid_count)
                for info in self._chunks.values()]
        rows.sort()
        return rows

    def load_row(self, chunk_linear: int, state: int, valid: int) -> None:
        per_pu = self.geometry.chunks_per_pu
        pu_linear, chunk = divmod(chunk_linear, per_pu)
        group, pu = divmod(pu_linear, self.geometry.pus_per_group)
        key = (group, pu, chunk)
        if key not in self._chunks:
            # Layout changed between format and recovery; refuse silently
            # rebuilding the wrong world.
            raise FTLError(f"checkpoint row for unknown chunk {key}")
        info = self._chunks[key]
        info.state = FtlChunkState(state)
        info.valid_count = valid
