"""Binary serialization of FTL metadata: WAL records and checkpoints.

Everything the FTL persists is encoded with :mod:`struct` into sector-sized
frames:

* A **frame** is one sector: ``[u32 payload_length][payload][padding]``.
* A **record** inside a payload is ``[u8 type][u32 body_length][body]``.

Records never span sectors (writers start a new frame when a record would
not fit), so a torn tail — the normal case after a crash — costs at most
the records in the unwritten frames, never a mis-parse.
"""

from __future__ import annotations

import struct
import zlib
from itertools import chain
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import RecoveryError

_FRAME_HEADER = struct.Struct("<I")
_RECORD_HEADER = struct.Struct("<BI")

# Record types.
REC_MAP_UPDATE = 1     # txn_id, [(lba, new_ppa, old_ppa)]
REC_COMMIT = 2         # txn_id
REC_CKPT_HEADER = 3    # seq, map_entries, chunk_entries, next_lba
REC_CKPT_MAP = 4       # [(lba, ppa)]
REC_CKPT_CHUNK = 5     # [(chunk_linear, state, valid_count)]
REC_CKPT_FOOTER = 6    # seq, checksum of seq (completion marker)
REC_NOOP = 7           # padding
# OX-ELEOS records: variable-size page mapping + LSS segment lifecycle.
REC_VPAGE_UPDATE = 8   # txn_id, [(page_id, linear, offset, length)]
REC_SEGMENT_NEW = 9    # segment_id, [chunk_linear]
REC_SEGMENT_FREE = 10  # segment_id
REC_CKPT_VMAP = 11     # [(page_id, linear, offset, length)]
REC_CKPT_SEGMENT = 12  # segment_id, [chunk_linear]

_MAP_ENTRY = struct.Struct("<QQQ")     # lba, new_ppa, old_ppa
_CKPT_MAP_ENTRY = struct.Struct("<QQ")  # lba, ppa
_CKPT_CHUNK_ENTRY = struct.Struct("<QBI")  # chunk_linear, state, valid
_TXN = struct.Struct("<Q")
_CKPT_HEADER = struct.Struct("<QQQQ")
_CKPT_FOOTER = struct.Struct("<QI")

_VPAGE_ENTRY = struct.Struct("<QQII")  # page_id, linear, offset, length
_SEGMENT_HEADER = struct.Struct("<Q")  # segment_id

# Sentinel for "no previous mapping" in map-update records.
NO_PPA = 2**64 - 1

# Checkpoints pack hundreds of fixed-size entries per record; one batched
# struct call per record beats one call per entry by an order of magnitude.
# Formats stay explicitly little-endian, so the bytes are unchanged.
_BATCH_CACHE: dict = {}


def _batch(unit: str, count: int) -> struct.Struct:
    key = (unit, count)
    packer = _BATCH_CACHE.get(key)
    if packer is None:
        packer = _BATCH_CACHE[key] = struct.Struct("<" + unit * count)
    return packer


@dataclass(frozen=True)
class Record:
    """One decoded record: its type tag and raw body bytes."""

    rtype: int
    body: bytes


def encode_record(rtype: int, body: bytes) -> bytes:
    return _RECORD_HEADER.pack(rtype, len(body)) + body


def encode_map_update(txn_id: int,
                      entries: Sequence[Tuple[int, int, int]]) -> bytes:
    body = _TXN.pack(txn_id) + _batch("QQQ", len(entries)).pack(
        *chain.from_iterable(entries))
    return encode_record(REC_MAP_UPDATE, body)


def decode_map_update(body: bytes) -> Tuple[int, List[Tuple[int, int, int]]]:
    (txn_id,) = _TXN.unpack_from(body, 0)
    entries = list(_MAP_ENTRY.iter_unpack(memoryview(body)[_TXN.size:]))
    return txn_id, entries


def encode_commit(txn_id: int) -> bytes:
    return encode_record(REC_COMMIT, _TXN.pack(txn_id))


def decode_commit(body: bytes) -> int:
    (txn_id,) = _TXN.unpack(body)
    return txn_id


def encode_ckpt_header(seq: int, map_entries: int, chunk_entries: int,
                       next_lba: int) -> bytes:
    return encode_record(
        REC_CKPT_HEADER,
        _CKPT_HEADER.pack(seq, map_entries, chunk_entries, next_lba))


def decode_ckpt_header(body: bytes) -> Tuple[int, int, int, int]:
    return _CKPT_HEADER.unpack(body)


def encode_ckpt_map(entries: Sequence[Tuple[int, int]]) -> bytes:
    body = _batch("QQ", len(entries)).pack(*chain.from_iterable(entries))
    return encode_record(REC_CKPT_MAP, body)


def decode_ckpt_map(body: bytes) -> List[Tuple[int, int]]:
    return list(_CKPT_MAP_ENTRY.iter_unpack(body))


def encode_ckpt_chunk(entries: Sequence[Tuple[int, int, int]]) -> bytes:
    body = _batch("QBI", len(entries)).pack(*chain.from_iterable(entries))
    return encode_record(REC_CKPT_CHUNK, body)


def decode_ckpt_chunk(body: bytes) -> List[Tuple[int, int, int]]:
    return list(_CKPT_CHUNK_ENTRY.iter_unpack(body))


def encode_ckpt_footer(seq: int) -> bytes:
    checksum = zlib.crc32(_TXN.pack(seq))
    return encode_record(REC_CKPT_FOOTER, _CKPT_FOOTER.pack(seq, checksum))


def decode_ckpt_footer(body: bytes) -> int:
    seq, checksum = _CKPT_FOOTER.unpack(body)
    if checksum != zlib.crc32(_TXN.pack(seq)):
        raise RecoveryError(f"checkpoint footer checksum mismatch (seq {seq})")
    return seq


def encode_vpage_update(txn_id: int,
                        entries: Sequence[Tuple[int, int, int, int]]) -> bytes:
    body = _TXN.pack(txn_id) + b"".join(
        _VPAGE_ENTRY.pack(*entry) for entry in entries)
    return encode_record(REC_VPAGE_UPDATE, body)


def decode_vpage_update(body: bytes) -> Tuple[int, List[Tuple[int, int, int, int]]]:
    (txn_id,) = _TXN.unpack_from(body, 0)
    entries = [_VPAGE_ENTRY.unpack_from(body, offset)
               for offset in range(_TXN.size, len(body), _VPAGE_ENTRY.size)]
    return txn_id, entries


def split_vpage_update(txn_id: int,
                       entries: Sequence[Tuple[int, int, int, int]],
                       sector_size: int) -> List[bytes]:
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    per_record = max(1, (capacity - _TXN.size) // _VPAGE_ENTRY.size)
    return [encode_vpage_update(txn_id, entries[i:i + per_record])
            for i in range(0, len(entries), per_record)]


def _encode_segment(rtype: int, segment_id: int,
                    chunk_linears: Sequence[int]) -> bytes:
    body = _SEGMENT_HEADER.pack(segment_id) + b"".join(
        _TXN.pack(linear) for linear in chunk_linears)
    return encode_record(rtype, body)


def encode_segment_new(segment_id: int,
                       chunk_linears: Sequence[int]) -> bytes:
    return _encode_segment(REC_SEGMENT_NEW, segment_id, chunk_linears)


def encode_segment_free(segment_id: int) -> bytes:
    return _encode_segment(REC_SEGMENT_FREE, segment_id, [])


def encode_ckpt_segment(segment_id: int,
                        chunk_linears: Sequence[int]) -> bytes:
    return _encode_segment(REC_CKPT_SEGMENT, segment_id, chunk_linears)


def decode_segment(body: bytes) -> Tuple[int, List[int]]:
    (segment_id,) = _SEGMENT_HEADER.unpack_from(body, 0)
    linears = [_TXN.unpack_from(body, offset)[0]
               for offset in range(_SEGMENT_HEADER.size, len(body),
                                   _TXN.size)]
    return segment_id, linears


def encode_ckpt_vmap(entries: Sequence[Tuple[int, int, int, int]]) -> bytes:
    body = b"".join(_VPAGE_ENTRY.pack(*entry) for entry in entries)
    return encode_record(REC_CKPT_VMAP, body)


def decode_ckpt_vmap(body: bytes) -> List[Tuple[int, int, int, int]]:
    return [_VPAGE_ENTRY.unpack_from(body, offset)
            for offset in range(0, len(body), _VPAGE_ENTRY.size)]


def split_ckpt_vmap(entries: Sequence[Tuple[int, int, int, int]],
                    sector_size: int) -> List[bytes]:
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    per_record = max(1, capacity // _VPAGE_ENTRY.size)
    return [encode_ckpt_vmap(entries[i:i + per_record])
            for i in range(0, len(entries), per_record)]


class FrameWriter:
    """Packs records into sector-sized frames."""

    def __init__(self, sector_size: int):
        self.sector_size = sector_size
        self._frames: List[bytes] = []
        self._current = bytearray()

    @property
    def payload_capacity(self) -> int:
        return self.sector_size - _FRAME_HEADER.size

    def append(self, record: bytes) -> None:
        if len(record) > self.payload_capacity:
            raise RecoveryError(
                f"record of {len(record)} bytes exceeds frame capacity "
                f"{self.payload_capacity}; split it before encoding")
        if len(self._current) + len(record) > self.payload_capacity:
            self._seal()
        self._current.extend(record)

    def frame_count(self) -> int:
        """Frames a :meth:`frames` call would return, without draining."""
        return len(self._frames) + (1 if self._current else 0)

    def frames(self) -> List[bytes]:
        """Seal the current frame and return all frames (each one sector)."""
        if self._current:
            self._seal()
        frames, self._frames = self._frames, []
        return frames

    def _seal(self) -> None:
        payload = bytes(self._current)
        frame = _FRAME_HEADER.pack(len(payload)) + payload
        frame += b"\x00" * (self.sector_size - len(frame))
        self._frames.append(frame)
        self._current = bytearray()


def split_map_update(txn_id: int, entries: Sequence[Tuple[int, int, int]],
                     sector_size: int) -> List[bytes]:
    """Encode a map-update that may exceed one frame as several records."""
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    per_record = max(1, (capacity - _TXN.size) // _MAP_ENTRY.size)
    return [encode_map_update(txn_id, entries[i:i + per_record])
            for i in range(0, len(entries), per_record)]


def split_ckpt_map(entries: Sequence[Tuple[int, int]],
                   sector_size: int) -> List[bytes]:
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    per_record = max(1, capacity // _CKPT_MAP_ENTRY.size)
    return [encode_ckpt_map(entries[i:i + per_record])
            for i in range(0, len(entries), per_record)]


def split_ckpt_map_flat(flat: Sequence[int], sector_size: int) -> List[bytes]:
    """:func:`split_ckpt_map` over a pre-flattened ``[lba, ppa, ...]``
    sequence — the checkpoint hot path feeds the packer directly instead
    of building (and re-flattening) one tuple per map entry."""
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    step = max(1, capacity // _CKPT_MAP_ENTRY.size) * 2
    return [encode_record(REC_CKPT_MAP,
                          _batch("QQ", min(step, len(flat) - i) // 2)
                          .pack(*flat[i:i + step]))
            for i in range(0, len(flat), step)]


def split_ckpt_map_packed(packed: bytes, sector_size: int) -> List[bytes]:
    """:func:`split_ckpt_map_flat` over pre-packed ``<QQ`` entry bytes
    (:meth:`PageMap.snapshot_packed`) — record bodies are byte slices of
    the blob, so the checkpoint hot path never materializes per-entry
    integers at all.  Byte-identical to the flat variant."""
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    step = max(1, capacity // _CKPT_MAP_ENTRY.size) * _CKPT_MAP_ENTRY.size
    return [encode_record(REC_CKPT_MAP, packed[i:i + step])
            for i in range(0, len(packed), step)]


def split_ckpt_chunk(entries: Sequence[Tuple[int, int, int]],
                     sector_size: int) -> List[bytes]:
    capacity = sector_size - _FRAME_HEADER.size - _RECORD_HEADER.size
    per_record = max(1, capacity // _CKPT_CHUNK_ENTRY.size)
    return [encode_ckpt_chunk(entries[i:i + per_record])
            for i in range(0, len(entries), per_record)]


def decode_frame(sector: Optional[bytes]) -> Iterator[Record]:
    """Yield the records of one frame; an empty/None sector yields nothing.

    Raises :class:`RecoveryError` on a structurally corrupt frame — a
    record that claims to extend past the frame payload.
    """
    if not sector or len(sector) < _FRAME_HEADER.size:
        return
    (length,) = _FRAME_HEADER.unpack_from(sector, 0)
    if length == 0:
        return
    end = _FRAME_HEADER.size + length
    if end > len(sector):
        raise RecoveryError(
            f"frame claims {length} payload bytes in a "
            f"{len(sector)}-byte sector")
    offset = _FRAME_HEADER.size
    while offset < end:
        rtype, body_length = _RECORD_HEADER.unpack_from(sector, offset)
        offset += _RECORD_HEADER.size
        if offset + body_length > end:
            raise RecoveryError("record extends past frame payload")
        yield Record(rtype, sector[offset:offset + body_length])
        offset += body_length
