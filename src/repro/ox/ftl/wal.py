"""The write-ahead log.

"In all our designs, we use write-ahead logging (WAL) and checkpoints to
ensure atomicity and durability of FTL writes" (§4.3).  The log lives in a
fixed ring of chunks (see :class:`~repro.ox.ftl.provisioning.MetadataLayout`);
records are packed into sector frames, batches are padded to ``ws_min``
and written with FUA so a commit acknowledged to the caller is on NAND.

Each flushed sector carries ``("wal", epoch, seq)`` in its OOB: *epoch* is
the sequence number of the checkpoint the log is relative to, *seq* a
per-epoch monotone sector counter.  Recovery reads the ring in order and
stops at the first sector whose epoch/seq does not continue the chain —
which cleanly handles both a torn tail and a ring that was only partially
truncated when the crash hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import FTLError, RecoveryError
from repro.ocssd.address import Ppa
from repro.ox.ftl import serial
from repro.ox.media import MediaManager

ChunkKey = Tuple[int, int, int]


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record as seen by recovery."""

    rtype: int
    body: bytes


class WalAppender:
    """Append side of the log: buffer records, flush FUA batches."""

    def __init__(self, media: MediaManager, chunks: Sequence[ChunkKey],
                 epoch: int):
        if not chunks:
            raise FTLError("WAL needs at least one chunk")
        self.media = media
        self.sim = media.sim
        # Observability (repro.obs): inherited from the simulator; None
        # unless a hub was attached before the FTL stack was built.
        self.obs = media.sim.obs
        self.chunks = list(chunks)
        self.epoch = epoch
        geometry = media.geometry
        self.ws_min = geometry.ws_min
        self.sectors_per_chunk = geometry.sectors_per_chunk
        self.sector_size = geometry.sector_size
        self._writer = serial.FrameWriter(self.sector_size)
        # Padding frame, built once: every flush pads to a write unit.
        empty = serial.FrameWriter(self.sector_size)
        empty.append(serial.encode_record(serial.REC_NOOP, b""))
        self._noop_frame = empty.frames()[0]
        self._ring_index = 0      # which chunk in the ring
        self._next_sector = 0     # sector within that chunk
        self._seq = 0             # per-epoch sector sequence
        self.sectors_written = 0

    # -- capacity ------------------------------------------------------------------

    @property
    def capacity_sectors(self) -> int:
        return len(self.chunks) * self.sectors_per_chunk

    @property
    def used_sectors(self) -> int:
        return self._ring_index * self.sectors_per_chunk + self._next_sector

    def fill_fraction(self) -> float:
        return self.used_sectors / self.capacity_sectors

    # -- appending -------------------------------------------------------------------

    def append(self, record: bytes) -> None:
        """Buffer one encoded record (see :mod:`repro.ox.ftl.serial`)."""
        self._writer.append(record)

    def append_map_update(self, txn_id: int,
                          entries: Sequence[Tuple[int, int, int]]) -> None:
        for record in serial.split_map_update(txn_id, entries,
                                              self.sector_size):
            self.append(record)

    def append_commit(self, txn_id: int) -> None:
        self.append(serial.encode_commit(txn_id))

    def flush_proc(self, parent=None):
        """Process generator: write buffered frames durably (FUA).

        Pads the batch to a whole number of write units.  Raises
        :class:`FTLError` when the ring is exhausted — the caller must
        checkpoint (which truncates the ring) before this happens.  The
        check runs *before* anything is written, so a failed flush leaves
        the records buffered and the ring untouched: the caller can
        checkpoint and retry with no half-written batch in the log.
        """
        count = self._writer.frame_count()
        if not count:
            return 0
        padded = count + (-count) % self.ws_min
        if self.used_sectors + padded > self.capacity_sectors:
            raise FTLError(
                "WAL ring exhausted; checkpointing must truncate the "
                "log before it fills (records stay buffered)")
        frames = self._writer.frames()
        pad = padded - len(frames)
        if pad:
            frames.extend([self._noop_frame] * pad)

        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("ftl.wal", "flush", parent)
            flush_started = self.sim.now
        total = 0
        while frames:
            if self._next_sector >= self.sectors_per_chunk:
                self._ring_index += 1
                self._next_sector = 0
            if self._ring_index >= len(self.chunks):
                raise FTLError(
                    "WAL ring exhausted; checkpointing must truncate the "
                    "log before it fills")
            room = self.sectors_per_chunk - self._next_sector
            batch = frames[:room]
            frames = frames[room:]
            group, pu, chunk = self.chunks[self._ring_index]
            ppas = [Ppa(group, pu, chunk, self._next_sector + i)
                    for i in range(len(batch))]
            oob = [("wal", self.epoch, self._seq + i)
                   for i in range(len(batch))]
            completion = yield from self.media.write_proc(
                ppas, batch, oob=oob, fua=True, parent=span)
            self.media.require_ok(completion, "WAL flush")
            self._next_sector += len(batch)
            self._seq += len(batch)
            self.sectors_written += len(batch)
            total += len(batch)
        if obs is not None:
            obs.end(span, sectors=total)
            obs.metrics.histogram("ftl.wal.flush_s").record(
                self.sim.now - flush_started)
            obs.metrics.counter("ftl.wal.sectors").increment(total)
        return total

    # -- truncation --------------------------------------------------------------------

    def truncate_proc(self, new_epoch: int):
        """Process generator: reset the ring and restart at *new_epoch*.

        Only call after a checkpoint with sequence *new_epoch* is durable —
        everything in the old log is then redundant.
        """
        for key in self.chunks:
            info = self.media.chunk_info(Ppa(*key, 0))
            if info.write_pointer == 0 and info.state.value == "free":
                continue
            completion = yield from self.media.reset_proc(Ppa(*key, 0))
            self.media.require_ok(completion, "WAL truncate")
        self.epoch = new_epoch
        self._ring_index = 0
        self._next_sector = 0
        self._seq = 0


class WalReader:
    """Replay side: read the ring, yield the records of the given epoch."""

    def __init__(self, media: MediaManager, chunks: Sequence[ChunkKey],
                 epoch: int):
        self.media = media
        self.chunks = list(chunks)
        self.epoch = epoch
        self.sectors_read = 0
        self.records: List[WalRecord] = []

    def read_proc(self):
        """Process generator: read and decode the whole valid log.

        Returns the list of records (also stored in ``self.records``).
        Timing is real: every sector is fetched through the device.
        """
        expected_seq = 0
        for key in self.chunks:
            info = self.media.chunk_info(Ppa(*key, 0))
            if info.write_pointer == 0:
                break
            ppas = [Ppa(*key, s) for s in range(info.write_pointer)]
            completion = yield from self.media.read_proc(ppas)
            self.media.require_ok(completion, "WAL read")
            stop = False
            for sector_data, sector_oob in zip(completion.data,
                                               completion.oob):
                if (not isinstance(sector_oob, tuple)
                        or len(sector_oob) != 3
                        or sector_oob[0] != "wal"
                        or sector_oob[1] != self.epoch
                        or sector_oob[2] != expected_seq):
                    stop = True
                    break
                expected_seq += 1
                self.sectors_read += 1
                try:
                    for record in serial.decode_frame(sector_data):
                        if record.rtype != serial.REC_NOOP:
                            self.records.append(
                                WalRecord(record.rtype, record.body))
                except RecoveryError:
                    stop = True
                    break
            if stop:
                break
        return self.records


def committed_transactions(
        records: Iterator[WalRecord]
) -> List[Tuple[int, List[Tuple[int, int, int]]]]:
    """Fold a record stream into committed transactions, in commit order.

    Returns ``[(txn_id, [(lba, new_ppa, old_ppa), ...]), ...]``; map
    updates without a commit record (the crash window) are discarded —
    that is exactly the WAL's atomicity guarantee.
    """
    pending: dict[int, List[Tuple[int, int, int]]] = {}
    committed: List[Tuple[int, List[Tuple[int, int, int]]]] = []
    for record in records:
        if record.rtype == serial.REC_MAP_UPDATE:
            txn_id, entries = serial.decode_map_update(record.body)
            pending.setdefault(txn_id, []).extend(entries)
        elif record.rtype == serial.REC_COMMIT:
            txn_id = serial.decode_commit(record.body)
            if txn_id in pending:
                committed.append((txn_id, pending.pop(txn_id)))
    return committed
