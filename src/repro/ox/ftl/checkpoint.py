"""Checkpointing: bounded recovery time (the mechanism behind Figure 3).

A checkpoint persists the FTL's durable state into one of two alternating
slots, then the caller truncates the WAL.  Recovery reads both slots,
validates completeness via the footer record, and starts from the newest
complete one.  "The checkpoint process truncates the log at regular
intervals", which is why recovery time "oscillates up and down and remains
constant" instead of growing with runtime (§4.3).

The manager is FTL-agnostic: OX-Block persists page-map and chunk-metadata
records, OX-ELEOS persists variable-page-map and segment records; both go
through :meth:`CheckpointManager.write_payload_proc`, and
:meth:`read_latest_proc` decodes every known record type into a
:class:`CheckpointSnapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import FTLError, RecoveryError
from repro.ocssd.address import Ppa
from repro.ox.ftl import serial
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable
from repro.ox.media import MediaManager

ChunkKey = Tuple[int, int, int]


@dataclass
class CheckpointSnapshot:
    """A decoded checkpoint, as recovered from media."""

    seq: int
    next_txn_id: int
    map_entries: List[Tuple[int, int]] = field(default_factory=list)
    chunk_rows: List[Tuple[int, int, int]] = field(default_factory=list)
    vmap_entries: List[Tuple[int, int, int, int]] = field(default_factory=list)
    segments: List[Tuple[int, List[int]]] = field(default_factory=list)


class CheckpointManager:
    """Writes and recovers checkpoints in the two metadata slots."""

    def __init__(self, media: MediaManager,
                 slots: Sequence[Sequence[ChunkKey]]):
        if len(slots) != 2:
            raise FTLError("checkpointing uses exactly two slots")
        self.media = media
        self.slots = [list(slot) for slot in slots]
        geometry = media.geometry
        self.sector_size = geometry.sector_size
        self.ws_min = geometry.ws_min
        self.sectors_per_chunk = geometry.sectors_per_chunk
        self.checkpoints_written = 0

    # -- writing ---------------------------------------------------------------

    def write_proc(self, seq: int, page_map: PageMap, chunk_table: ChunkTable,
                   next_txn_id: int):
        """Persist an OX-Block-style checkpoint (page map + chunk table).

        The caller must hold the FTL dispatch lock (stop-the-world): the
        snapshot must be consistent with the WAL truncation that follows.
        """
        records: List[bytes] = []
        map_packed = page_map.snapshot_packed()
        chunk_snapshot = chunk_table.snapshot()
        records.extend(serial.split_ckpt_map_packed(map_packed,
                                                    self.sector_size))
        records.extend(serial.split_ckpt_chunk(chunk_snapshot,
                                               self.sector_size))
        yield from self.write_payload_proc(seq, next_txn_id, records,
                                           map_entries=len(map_packed) // 16,
                                           chunk_entries=len(chunk_snapshot))
        page_map.mark_clean()

    def write_payload_proc(self, seq: int, next_txn_id: int,
                           records: Sequence[bytes],
                           map_entries: int = 0, chunk_entries: int = 0):
        """Persist checkpoint *seq* with caller-provided records, durably
        (FUA), framed by a header and a checksummed footer."""
        slot = self.slots[seq % 2]
        writer = serial.FrameWriter(self.sector_size)
        writer.append(serial.encode_ckpt_header(
            seq, map_entries, chunk_entries, next_txn_id))
        for record in records:
            writer.append(record)
        writer.append(serial.encode_ckpt_footer(seq))
        frames = writer.frames()

        capacity = len(slot) * self.sectors_per_chunk
        padded = len(frames) + ((-len(frames)) % self.ws_min)
        if padded > capacity:
            raise FTLError(
                f"checkpoint needs {padded} sectors but the slot holds "
                f"{capacity}; enlarge ckpt_chunks_per_slot")

        for key in slot:
            info = self.media.chunk_info(Ppa(*key, 0))
            if info.write_pointer > 0 or info.state.value != "free":
                completion = yield from self.media.reset_proc(Ppa(*key, 0))
                self.media.require_ok(completion, "checkpoint slot reset")
        pad = padded - len(frames)
        if pad:
            empty = serial.FrameWriter(self.sector_size)
            empty.append(serial.encode_record(serial.REC_NOOP, b""))
            frames.extend([empty.frames()[0]] * pad)
        offset = 0
        for key in slot:
            if offset >= len(frames):
                break
            batch = frames[offset:offset + self.sectors_per_chunk]
            ppas = [Ppa(*key, s) for s in range(len(batch))]
            oob = [("ckpt", seq, offset + i) for i in range(len(batch))]
            completion = yield from self.media.write_proc(
                ppas, batch, oob=oob, fua=True)
            self.media.require_ok(completion, "checkpoint write")
            offset += len(batch)
        self.checkpoints_written += 1

    # -- recovery ------------------------------------------------------------------

    def read_latest_proc(self):
        """Return the newest complete :class:`CheckpointSnapshot`, or None
        if no complete checkpoint exists (freshly formatted device or
        first-checkpoint crash)."""
        best: Optional[CheckpointSnapshot] = None
        for slot in self.slots:
            snapshot = yield from self._read_slot_proc(slot)
            if snapshot is not None and (best is None
                                         or snapshot.seq > best.seq):
                best = snapshot
        return best

    def _read_slot_proc(self, slot: List[ChunkKey]):
        ppas: List[Ppa] = []
        for key in slot:
            info = self.media.chunk_info(Ppa(*key, 0))
            ppas.extend(Ppa(*key, s) for s in range(info.write_pointer))
        if not ppas:
            return None
        completion = yield from self.media.read_proc(ppas)
        if not completion.ok:
            return None
        snapshot = CheckpointSnapshot(seq=-1, next_txn_id=0)
        saw_header = False
        complete = False
        try:
            for sector in completion.data:
                for record in serial.decode_frame(sector):
                    if record.rtype == serial.REC_CKPT_HEADER:
                        seq, __, __, next_txn = serial.decode_ckpt_header(
                            record.body)
                        snapshot.seq = seq
                        snapshot.next_txn_id = next_txn
                        saw_header = True
                    elif record.rtype == serial.REC_CKPT_MAP:
                        snapshot.map_entries.extend(
                            serial.decode_ckpt_map(record.body))
                    elif record.rtype == serial.REC_CKPT_CHUNK:
                        snapshot.chunk_rows.extend(
                            serial.decode_ckpt_chunk(record.body))
                    elif record.rtype == serial.REC_CKPT_VMAP:
                        snapshot.vmap_entries.extend(
                            serial.decode_ckpt_vmap(record.body))
                    elif record.rtype == serial.REC_CKPT_SEGMENT:
                        snapshot.segments.append(
                            serial.decode_segment(record.body))
                    elif record.rtype == serial.REC_CKPT_FOOTER:
                        footer_seq = serial.decode_ckpt_footer(record.body)
                        complete = saw_header and footer_seq == snapshot.seq
        except RecoveryError:
            return None
        return snapshot if complete else None
