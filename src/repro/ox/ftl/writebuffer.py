"""The FTL write buffer.

"Data copies are necessary on the write path, as writes are buffered in
order to support write-back semantics and to deal with the constraints
imposed on flash (e.g., large unit of write)" (§4.3).  Sectors accumulate
here, pre-assigned to their final physical addresses, until a whole
``ws_min`` unit for some chunk is complete and can be submitted as one
vector write.  Reads consult the buffer first so buffered data is always
visible (read-your-writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FTLError
from repro.ocssd.address import Ppa

ChunkKey = Tuple[int, int, int]

# OOB marker for padding sectors (no owning LBA).
PAD_LBA = 2**64 - 1


@dataclass
class PendingUnit:
    """One write unit being assembled for a chunk."""

    key: ChunkKey
    first_sector: int
    ppas: List[Ppa] = field(default_factory=list)
    data: List[bytes] = field(default_factory=list)
    lbas: List[int] = field(default_factory=list)
    #: Contiguous view of the whole unit's payload when it was staged in
    #: one piece over an immutable buffer (zero-copy admission hint).
    whole: Optional[memoryview] = None


class WriteBuffer:
    """Staging area between the FTL write path and the device."""

    def __init__(self, ws_min: int, sector_size: int):
        self.ws_min = ws_min
        self.sector_size = sector_size
        self._units: Dict[Tuple[ChunkKey, int], PendingUnit] = {}
        # lba -> (sequence, payload); kept until the covering unit's device
        # write completes, so concurrent reads never miss buffered data.
        self._readable: Dict[int, Tuple[int, bytes]] = {}
        self._sequence = 0

    def __len__(self) -> int:
        return sum(len(unit.ppas) for unit in self._units.values())

    # -- staging --------------------------------------------------------------

    def stage(self, lba: int, ppa: Ppa, data: bytes) -> Optional[PendingUnit]:
        """Add one sector; returns the completed unit if this filled one."""
        if len(data) > self.sector_size:
            raise FTLError(
                f"payload of {len(data)} bytes exceeds sector size "
                f"{self.sector_size}")
        sector = ppa[3]
        unit_start = sector - sector % self.ws_min
        key = ppa[:3]
        slot = (key, unit_start)
        unit = self._units.get(slot)
        if unit is None:
            unit = PendingUnit(key=key, first_sector=unit_start)
            self._units[slot] = unit
        expected = unit.first_sector + len(unit.ppas)
        if sector != expected:
            raise FTLError(
                f"staged sector {sector} out of order in unit "
                f"{slot} (expected {expected})")
        unit.ppas.append(ppa)
        unit.data.append(data)
        unit.lbas.append(lba)
        self._sequence += 1
        if lba != PAD_LBA:
            self._readable[lba] = (self._sequence, data)
        if len(unit.ppas) == self.ws_min:
            del self._units[slot]
            return unit
        return None

    def stage_unit(self, lba0: int, ppas: List[Ppa], view: memoryview,
                   immutable: bool = False) -> PendingUnit:
        """Stage one whole, freshly-allocated write unit in a single call.

        The fused twin of ``ws_min`` successive :meth:`stage` calls for a
        unit-aligned PPA run backed by contiguous LBAs: *view* holds
        ``ws_min`` sectors of payload, ``ppas[i]`` receives sector ``i``.
        Returns the completed unit (it never passes through the partial
        table).
        """
        count = len(ppas)
        first = ppas[0][3]
        if count != self.ws_min or first % self.ws_min:
            raise FTLError(
                f"stage_unit needs a whole aligned unit, got {count} "
                f"sectors at {first}")
        sector_size = self.sector_size
        data = [view[index * sector_size:(index + 1) * sector_size]
                for index in range(count)]
        unit = PendingUnit(key=ppas[0][:3], first_sector=first, ppas=ppas,
                           data=data,
                           lbas=list(range(lba0, lba0 + count)),
                           whole=view if immutable else None)
        sequence = self._sequence
        readable = self._readable
        for index, payload in enumerate(data):
            sequence += 1
            readable[lba0 + index] = (sequence, payload)
        self._sequence = sequence
        return unit

    def partial_units(self) -> List[PendingUnit]:
        """The units still being assembled (for forced flush padding)."""
        return list(self._units.values())

    def take_partial_units(self) -> List[PendingUnit]:
        units = list(self._units.values())
        self._units.clear()
        return units

    # -- read-your-writes -------------------------------------------------------

    def lookup(self, lba: int) -> Optional[bytes]:
        entry = self._readable.get(lba)
        return entry[1] if entry else None

    def mark_written(self, unit: PendingUnit) -> None:
        """Called when the unit's device write completed: drop read-shadow
        entries that this unit was the latest writer of."""
        for lba, data in zip(unit.lbas, unit.data):
            if lba == PAD_LBA:
                continue
            entry = self._readable.get(lba)
            if entry is not None and entry[1] is data:
                del self._readable[lba]

    def discard(self, lba: int) -> None:
        """Stop exposing *lba* from the buffer (trim): the staged sector
        still reaches media as part of its unit, but as dead data."""
        self._readable.pop(lba, None)

    def restore_readable(self, lba: int, ppa: Ppa) -> bool:
        """Re-expose *lba* from the staged sector at *ppa*, if that sector
        is still in a pending unit.

        An aborted transaction rolls its lbas back to their previous
        mappings; when a previous copy was itself acked out of the buffer
        and is not yet programmed, dropping the newer shadow entry alone
        would leave reads with no copy at all (the media rejects reads
        above the write pointer).  Returns True when a staged copy was
        found and restored.
        """
        sector = ppa[3]
        unit = self._units.get((ppa[:3], sector - sector % self.ws_min))
        if unit is None:
            return False
        index = sector - unit.first_sector
        if not 0 <= index < len(unit.ppas) or unit.lbas[index] != lba:
            return False
        self._sequence += 1
        self._readable[lba] = (self._sequence, unit.data[index])
        return True

    def drop_chunk(self, key: ChunkKey) -> List[PendingUnit]:
        """Forget the partial units headed for *key*: its chunk was
        retired, so their sectors can never be programmed.  Returns the
        dropped units so the caller can account the lost LBAs."""
        slots = [slot for slot in self._units if slot[0] == key]
        dropped = [self._units.pop(slot) for slot in slots]
        for unit in dropped:
            for lba, data in zip(unit.lbas, unit.data):
                if lba == PAD_LBA:
                    continue
                entry = self._readable.get(lba)
                if entry is not None and entry[1] is data:
                    del self._readable[lba]
        return dropped

    def drop_all(self) -> None:
        """Crash: all buffered state is gone."""
        self._units.clear()
        self._readable.clear()
