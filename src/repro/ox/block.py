"""OX-Block: the generic FTL exposing the Open-Channel SSD as a block device.

"OX-Block exposes Open-Channel SSDs as block devices.  We assume 4 KB as
the minimum read granularity ... OX-Block maintains a 4KB-granularity
page-level mapping table" (§4.2).  Every operation of the API is a
transaction (§4.3): write-ahead logging makes multi-sector writes atomic,
checkpoints bound recovery time, and group-local GC keeps interference
confined.

Concurrency model: a single dispatch lock serializes the write path
(allocation, WAL, map mutation) — the paper's "single dispatch thread" —
while reads only look up the mapping table and go straight to the device.

Typical use::

    device = OpenChannelSSD(geometry=...)
    ftl = OXBlock.format(MediaManager(device), BlockConfig())
    ftl.write(lba=0, data=b"..." * 4096)
    assert ftl.read(0, 1) == b"..." * 4096
    ftl.crash()                       # kill -9 equivalent
    ftl2, report = OXBlock.recover(MediaManager(device), BlockConfig())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FTLError, OutOfSpaceError, ReproError
from repro.ocssd.address import Ppa
from repro.ocssd.chunk import pad_sector
from repro.ox.ftl.checkpoint import CheckpointManager
from repro.ox.ftl.gc import GarbageCollector
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable, FtlChunkState
from repro.ox.ftl.provisioning import MetadataLayout, Provisioner
from repro.ox.ftl.recovery import RecoveryReport, recover_proc
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import WalAppender
from repro.ox.ftl.writebuffer import PAD_LBA, PendingUnit, WriteBuffer
from repro.ox.media import MediaManager
from repro.policies import resolve_placement_policy, resolve_victim_policy
from repro.sim.resources import Resource


@dataclass(frozen=True)
class BlockConfig:
    """Tunables of the OX-Block FTL."""

    wal_chunk_count: int = 8
    ckpt_chunks_per_slot: int = 2
    checkpoint_interval: Optional[float] = None   # seconds; None = disabled
    gc_enabled: bool = True
    gc_low_watermark: int = 4        # free chunks that trigger GC
    gc_high_watermark: int = 8       # free chunks GC aims for
    # Free chunks per group only GC may open: keeps relocation possible
    # when user writes have consumed everything else.
    gc_headroom_chunks: int = 1
    replay_cpu_per_record: float = 2e-6
    wal_pressure_threshold: float = 0.6   # force a checkpoint beyond this
    #: Vector backend for the page map's bulk snapshot paths:
    #: "array" (stdlib, default) or "numpy" (errors if not installed).
    map_backend: str = "array"
    #: GC victim-selection policy (repro.policies): default | greedy |
    #: cost_benefit | age_partitioned.  "default" is greedy, bit-identical
    #: to the historical collector.
    gc_policy: str = "default"
    #: Allocation placement policy (repro.policies): default | striped |
    #: stream_partitioned | hotcold.  "default" is striped.
    placement_policy: str = "default"


@dataclass
class BlockStats:
    writes: int = 0
    reads: int = 0
    trims: int = 0
    sectors_written: int = 0
    sectors_read: int = 0
    checkpoints: int = 0
    forced_checkpoints: int = 0
    chunks_retired: int = 0
    sectors_lost: int = 0


class OXBlock:
    """The OX-Block FTL instance.  Construct via :meth:`format` (fresh
    device) or :meth:`recover` (after a crash or clean shutdown)."""

    def __init__(self, media: MediaManager, config: BlockConfig,
                 layout: MetadataLayout, page_map: PageMap,
                 chunk_table: ChunkTable, provisioner: Provisioner,
                 next_txn_id: int, epoch: int):
        self.media = media
        self.sim = media.sim
        self.config = config
        self.geometry = media.geometry
        self.layout = layout
        self.page_map = page_map
        self.chunk_table = chunk_table
        self.provisioner = provisioner
        provisioner.gc_headroom = (config.gc_headroom_chunks
                                   if config.gc_enabled else 0)
        # LBAs whose data was dropped after an async chunk retirement
        # (read as zeroes from then on); fault/crash harnesses use this to
        # tell "lost to a media fault" from "lost to a bug".
        self.lost_lbas: List[int] = []
        self.buffer = WriteBuffer(self.geometry.ws_min,
                                  self.geometry.sector_size)
        self.wal = WalAppender(media, layout.wal_chunks, epoch)
        self.checkpointer = CheckpointManager(media, layout.ckpt_slots)
        self._next_txn_id = next_txn_id
        self._epoch = epoch
        self._lock = Resource(self.sim, capacity=1, name="dispatch")
        self._alive = True
        self.stats = BlockStats()
        # Observability (repro.obs): inherited from the simulator at
        # construction — attach the hub to the device *before* building
        # the FTL stack, or this stays None (tracing disabled).
        self.obs = self.sim.obs
        self.gc = GarbageCollector(
            media, page_map, chunk_table, provisioner, self.wal,
            self._take_txn_id,
            volatile_pending=lambda: bool(self.buffer.partial_units()),
            stabilize_proc=self._gc_stabilize_proc,
            wal_relief_proc=self._checkpoint_on_pressure_proc,
            victim_policy=resolve_victim_policy(config.gc_policy),
            host_sectors_written=lambda: self.stats.sectors_written)
        self._gc_wakeup = self.sim.event()
        self._daemons = []
        if config.gc_enabled:
            self._daemons.append(
                self.sim.spawn(self._gc_daemon(), name="gc-daemon"))
        if config.checkpoint_interval is not None:
            self._daemons.append(
                self.sim.spawn(self._checkpoint_daemon(),
                               name="ckpt-daemon"))

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` this FTL's I/O is tagged
        with (from its media manager); None for untagged stacks."""
        return self.media.tenant

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def format(cls, media: MediaManager, config: BlockConfig,
               tenant=None) -> "OXBlock":
        """Initialize a fresh device: build the layout, write checkpoint #1,
        start with an empty WAL.  With *tenant*, every command this FTL
        submits (data, WAL, GC, checkpoints) carries that identity."""
        if tenant is not None:
            media = media.for_tenant(tenant)
        layout = MetadataLayout.build(
            media.geometry, wal_chunk_count=config.wal_chunk_count,
            ckpt_chunks_per_slot=config.ckpt_chunks_per_slot)
        page_map = PageMap(backend=config.map_backend)
        chunk_table = ChunkTable(media.geometry,
                                 iter(layout.data_chunk_keys()))
        provisioner = Provisioner(
            media.geometry, chunk_table,
            placement=resolve_placement_policy(config.placement_policy))
        ftl = cls(media, config, layout, page_map, chunk_table, provisioner,
                  next_txn_id=1, epoch=0)
        ftl.sim.run_until(ftl.sim.spawn(ftl._checkpoint_locked_proc()))
        return ftl

    @classmethod
    def recover(cls, media: MediaManager, config: BlockConfig,
                tenant=None) -> Tuple["OXBlock", RecoveryReport]:
        """Rebuild an FTL from media after a crash; returns the new
        instance and a :class:`RecoveryReport` whose ``duration`` is the
        simulated recovery time (the Figure 3 metric).  Recovery finishes
        with a fresh checkpoint so the WAL restarts empty."""
        if tenant is not None:
            media = media.for_tenant(tenant)
        sim = media.sim
        started = sim.now
        layout = MetadataLayout.build(
            media.geometry, wal_chunk_count=config.wal_chunk_count,
            ckpt_chunks_per_slot=config.ckpt_chunks_per_slot)
        state = sim.run_until(sim.spawn(recover_proc(
            media, layout,
            replay_cpu_per_record=config.replay_cpu_per_record,
            map_backend=config.map_backend,
            placement=resolve_placement_policy(config.placement_policy))))
        ftl = cls(media, config, layout, state.page_map, state.chunk_table,
                  state.provisioner, next_txn_id=state.next_txn_id,
                  epoch=state.epoch)
        sim.run_until(sim.spawn(ftl._checkpoint_locked_proc()))
        report = state.report
        report.duration = sim.now - started
        return ftl, report

    def crash(self) -> None:
        """Simulate ``kill -9`` of the OX process: volatile FTL state and
        the controller cache vanish; media stays as it is."""
        self._alive = False
        for daemon in self._daemons:
            daemon.interrupt("crash")
        self.buffer.drop_all()
        self.media.device.crash_volatile()

    def close(self) -> None:
        """Clean shutdown: flush everything and checkpoint."""
        self.flush()
        self.sim.run_until(self.sim.spawn(self._checkpoint_locked_proc()))
        self._alive = False
        for daemon in self._daemons:
            daemon.interrupt("close")

    # -- public synchronous API --------------------------------------------------------

    def write(self, lba: int, data: bytes) -> int:
        """Write *data* (a multiple of the 4 KB sector size, up to the
        paper's 1 MB transactions) at *lba*; returns the transaction id.
        Durable-on-return up to the device cache (see module docs)."""
        # Trace capture (repro.trace): the synchronous API is the raw-block
        # workload boundary; the proc API is not hooked, so a DB hosted on
        # this FTL records host ops only.  Slot read at call time — a
        # recorder can attach to an already-built stack.
        trace = self.sim.trace
        if trace is not None:
            trace.block_op("write", lba=lba,
                           sectors=len(data) // self.geometry.sector_size,
                           fill=(data[0] if data else 0))
        return self.sim.run_until(self.sim.spawn(self.write_proc(lba, data)))

    def read(self, lba: int, sectors: int = 1) -> bytes:
        """Read *sectors* sectors at *lba*; unmapped sectors read as
        zeroes (standard block-device semantics)."""
        trace = self.sim.trace
        if trace is not None:
            trace.block_op("read", lba=lba, sectors=sectors)
        return self.sim.run_until(self.sim.spawn(self.read_proc(lba,
                                                                sectors)))

    def trim(self, lba: int, sectors: int = 1) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.block_op("trim", lba=lba, sectors=sectors)
        self.sim.run_until(self.sim.spawn(self.trim_proc(lba, sectors)))

    def flush(self) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.block_op("flush")
        self.sim.run_until(self.sim.spawn(self.flush_proc()))

    # -- process API --------------------------------------------------------------------

    def write_proc(self, lba: int, data: bytes):
        self._check_alive()
        sector_size = self.geometry.sector_size
        if not data or len(data) % sector_size:
            raise FTLError(
                f"write of {len(data)} bytes is not a whole number of "
                f"{sector_size}-byte sectors")
        count = len(data) // sector_size
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("ftl", "write")
            op_started = self.sim.now
            lock_wait = obs.begin("ftl", "lock.wait", span)
        grant = self._lock.request()
        yield grant
        if obs is not None:
            obs.end(lock_wait)
            obs.metrics.histogram("ftl.lock.wait_s").record(
                self.sim.now - op_started)
        try:
            # Both of these run *before* the transaction mutates anything:
            # a checkpoint persists whatever the map says, and GC trusts
            # the map to tell live data from dead, so neither may observe
            # a transaction half-staged.  Relieving WAL pressure and
            # reclaiming space up front (instead of inline, mid-loop) is
            # what makes that ordering possible.
            yield from self._checkpoint_on_pressure_proc()
            if self.provisioner.sectors_available("user") < count:
                yield from self._reclaim_space_proc(count)
            txn_id = self._take_txn_id()
            entries: List[Tuple[int, int, int]] = []
            completed_units: List[PendingUnit] = []
            # Stage memoryview slices: the chunk store makes the single
            # copy of each sector, when the unit write reaches the device.
            view = memoryview(data)
            ws_min = self.geometry.ws_min
            if (count == ws_min
                    and self.provisioner.current_unit_remaining("user")
                    == 0):
                # A whole-unit transaction landing on a fresh unit (the
                # fill-heavy common shape): one allocation, one buffer
                # call, one mapping-run update instead of ws_min scalar
                # rounds.  Identical staged state to the loop below.
                key, first = self.provisioner.allocate_unit("user")
                group, pu, chunk_no = key
                ppas = [Ppa(group, pu, chunk_no, first + index)
                        for index in range(count)]
                completed_units.append(
                    self.buffer.stage_unit(lba, ppas, view,
                                           immutable=type(data) is bytes))
                linear0 = self.geometry.linearize(ppas[0])
                previous_run = self.page_map.update_run(lba, linear0, count)
                self.chunk_table.add_valid(key, count)
                for index in range(count):
                    previous = previous_run[index]
                    if previous < 0:      # was unmapped
                        entries.append((lba + index, linear0 + index,
                                        NO_PPA))
                    else:
                        self.chunk_table.invalidate(
                            self.geometry.delinearize(previous).chunk_key())
                        entries.append((lba + index, linear0 + index,
                                        previous))
            else:
                allocate = self.provisioner.allocate_sector
                stage = self.buffer.stage
                linearize = self.geometry.linearize
                update = self.page_map.update
                add_valid = self.chunk_table.add_valid
                for index in range(count):
                    try:
                        # Space was ensured above and the lock is held with no
                        # yields since, so this cannot run dry; the handler is
                        # insurance against accounting drift.
                        ppa = allocate("user")
                    except OutOfSpaceError:
                        # The txn dies before its WAL append: unwind the
                        # map/table mutations of the sectors already staged,
                        # or a later checkpoint would persist a torn
                        # transaction that was never acknowledged.
                        self._unwind_partial_txn(entries)
                        # Units the loop already completed left the buffer;
                        # they must still reach the device (as dead data) or
                        # the chunk write pointer falls behind the
                        # allocation cursor for good.
                        if completed_units:
                            yield self.sim.all_of(
                                [self.sim.spawn(self._write_unit_proc(u, span))
                                 for u in completed_units])
                        raise
                    cur = lba + index
                    payload = view[index * sector_size:(index + 1) * sector_size]
                    unit = stage(cur, ppa, payload)
                    linear = linearize(ppa)
                    previous = update(cur, linear)
                    add_valid(ppa.chunk_key())
                    if previous is not None:
                        self.chunk_table.invalidate(
                            self.geometry.delinearize(previous).chunk_key())
                    entries.append((cur, linear,
                                    previous if previous is not None else NO_PPA))
                    if unit is not None:
                        completed_units.append(unit)
            unit_procs = [self.sim.spawn(self._write_unit_proc(unit, span))
                          for unit in completed_units]
            self.wal.append_map_update(txn_id, entries)
            self.wal.append_commit(txn_id)
            try:
                yield from self.wal.flush_proc(parent=span)
            except ReproError as exc:
                # The txn was never acknowledged.  A WAL-ring exhaustion
                # (FTLError) leaves the media untouched, so the map
                # mutations must be unwound; a device-level failure
                # (power cut mid-flush) leaves commit durability unknown
                # and the mapping stays — recovery decides.  Either way
                # the in-flight unit writes must be joined, or their
                # (likely failing) completions surface as unhandled
                # events after the lock is gone.
                if isinstance(exc, FTLError):
                    self._unwind_partial_txn(entries)
                if unit_procs:
                    try:
                        yield self.sim.all_of(unit_procs)
                    except ReproError:
                        pass   # surface the original failure
                raise
            if len(unit_procs) == 1:
                # A Process is an Event: join it without an all_of wrapper.
                yield unit_procs[0]
            elif unit_procs:
                yield self.sim.all_of(unit_procs)
            # Only after this txn's units are admitted: a pressure
            # checkpoint drains the cache and must cover them.
            yield from self._checkpoint_on_pressure_proc()
        finally:
            self._lock.release()
        self.stats.writes += 1
        self.stats.sectors_written += count
        if obs is not None:
            obs.end(span, sectors=count)
            obs.metrics.histogram("ftl.write.latency_s").record(
                self.sim.now - op_started)
        self._absorb_notifications()
        self._poke_gc()
        return txn_id

    def read_proc(self, lba: int, sectors: int = 1):
        self._check_alive()
        if sectors < 1:
            raise FTLError(f"read of {sectors} sectors")
        sector_size = self.geometry.sector_size
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("ftl", "read")
            op_started = self.sim.now
        if sectors == 1:
            # The dominant shape (random point reads): same lookup order
            # and retry policy as the vector loop below, minus the
            # per-attempt list building.  With no tracing attached the
            # media round-trip takes the device's fused single-sector
            # lane (no command/Completion objects).
            piece = None
            for attempt in range(3):
                buffered = self.buffer.lookup(lba)
                if buffered is not None:
                    piece = pad_sector(buffered, sector_size)
                    break
                linear = self.page_map.lookup(lba)
                if linear is None:
                    piece = b"\x00" * sector_size
                    break
                if obs is None:
                    payloads = yield from self.media.read_single_proc(
                        self.geometry.delinearize(linear))
                    if payloads is not None:
                        piece = pad_sector(payloads[0], sector_size)
                        break
                else:
                    completion = yield from self.media.read_proc(
                        [self.geometry.delinearize(linear)], parent=span)
                    if completion.ok:
                        piece = pad_sector(completion.data[0], sector_size)
                        break
                # Racing relocation/reset: retry against the fresh mapping.
            else:
                raise FTLError(f"read at lba {lba} kept racing relocation")
            self.stats.reads += 1
            self.stats.sectors_read += 1
            if obs is not None:
                obs.end(span, sectors=1)
                obs.metrics.histogram("ftl.read.latency_s").record(
                    self.sim.now - op_started)
            return piece if type(piece) is bytes else bytes(piece)
        pieces: List[Optional[bytes]] = [None] * sectors
        for attempt in range(3):
            missing: List[Tuple[int, Ppa]] = []
            for index in range(sectors):
                if pieces[index] is not None:
                    continue
                buffered = self.buffer.lookup(lba + index)
                if buffered is not None:
                    pieces[index] = pad_sector(buffered, sector_size)
                    continue
                linear = self.page_map.lookup(lba + index)
                if linear is None:
                    pieces[index] = b"\x00" * sector_size
                    continue
                missing.append((index, self.geometry.delinearize(linear)))
            if not missing:
                break
            completion = yield from self.media.read_proc(
                [ppa for __, ppa in missing], parent=span)
            if completion.ok:
                for (index, __), payload in zip(missing, completion.data):
                    pieces[index] = pad_sector(payload, sector_size)
                break
            # A concurrent relocation/reset invalidated an address between
            # lookup and read: retry against the fresh mapping.
        else:
            raise FTLError(f"read at lba {lba} kept racing relocation")
        for index in range(sectors):
            if pieces[index] is None:
                # Retried loop exited via break with holes filled; this is
                # unreachable, but fail loudly rather than return garbage.
                raise FTLError(f"read hole at lba {lba + index}")
        self.stats.reads += 1
        self.stats.sectors_read += sectors
        if obs is not None:
            obs.end(span, sectors=sectors)
            obs.metrics.histogram("ftl.read.latency_s").record(
                self.sim.now - op_started)
        return b"".join(pieces)

    def trim_proc(self, lba: int, sectors: int = 1):
        self._check_alive()
        grant = self._lock.request()
        yield grant
        try:
            yield from self._checkpoint_on_pressure_proc()
            txn_id = self._take_txn_id()
            entries: List[Tuple[int, int, int]] = []
            for index in range(sectors):
                self.buffer.discard(lba + index)
                previous = self.page_map.remove(lba + index)
                if previous is None:
                    continue
                self.chunk_table.invalidate(
                    self.geometry.delinearize(previous).chunk_key())
                entries.append((lba + index, NO_PPA, previous))
            if entries:
                self.wal.append_map_update(txn_id, entries)
                self.wal.append_commit(txn_id)
                try:
                    yield from self.wal.flush_proc()
                except FTLError:
                    # Never acknowledged: put the mappings back so the
                    # in-memory state matches what recovery would build.
                    for cur, __, previous in reversed(entries):
                        self.page_map.update(cur, previous)
                        self.chunk_table.add_valid(
                            self.geometry.delinearize(previous).chunk_key())
                    raise
        finally:
            self._lock.release()
        self.stats.trims += 1

    def flush_proc(self):
        """Durability barrier: pad out the partial write unit, drain the
        WAL and the device cache.  After this returns, a crash loses
        nothing acknowledged before the flush."""
        self._check_alive()
        grant = self._lock.request()
        yield grant
        try:
            yield from self._flush_partial_unit_proc()
            yield from self.wal.flush_proc()
        finally:
            self._lock.release()
        yield from self.media.flush_proc()

    # -- internals ----------------------------------------------------------------------

    def _check_alive(self) -> None:
        if not self._alive:
            raise FTLError("FTL instance has crashed or been closed")

    def _absorb_notifications(self) -> None:
        """Process the device's asynchronous error reports (Figure 2:
        "bad block information may be updated at any time").

        A chunk that failed a program or reset is retired: it leaves the
        provisioner, and any mapping still pointing into it is dropped —
        with a write-back cache, data lost to an async program failure is
        genuinely gone, and surfacing it as unmapped (zero) reads beats
        surfacing it as I/O errors forever after.
        """
        for note in self.media.pop_notifications():
            key = note.ppa.chunk_key()
            if key not in self.chunk_table:
                continue   # metadata chunk failures handled elsewhere
            info = self.chunk_table.get(key)
            if info.state is FtlChunkState.BAD:
                continue
            lost = [lba for lba, linear in list(self.page_map.items())
                    if self.geometry.delinearize(linear).chunk_key() == key]
            for lba in lost:
                self.page_map.remove(lba)
            # Partial write units headed for the dead chunk can never be
            # programmed; drop them or the next forced flush would try.
            self.buffer.drop_chunk(key)
            info.valid_count = 0
            self.provisioner.retire_chunk(key)
            info.state = FtlChunkState.BAD
            self.stats.chunks_retired += 1
            self.stats.sectors_lost += len(lost)
            self.lost_lbas.extend(lost)
            if self.obs is not None:
                self.obs.error("ftl", "chunk-retired",
                               f"{note.kind} at {note.ppa}: "
                               f"{len(lost)} mapped sector(s) lost")

    def _take_txn_id(self) -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def _unwind_partial_txn(
            self, entries: List[Tuple[int, int, int]]) -> None:
        """Roll back the map/table effects of an aborted write txn.

        The staged sectors still reach media as dead data (their units
        flush with the txn's lbas in OOB, but nothing maps to them), which
        is exactly what the GC scan expects of superseded sectors.
        """
        for cur, linear, previous in reversed(entries):
            self.buffer.discard(cur)
            self.chunk_table.invalidate(
                self.geometry.delinearize(linear).chunk_key())
            if previous == NO_PPA:
                self.page_map.remove(cur)
            else:
                previous_ppa = self.geometry.delinearize(previous)
                self.page_map.update(cur, previous)
                self.chunk_table.add_valid(previous_ppa.chunk_key())
                # The previous copy may itself still be staged (acked from
                # the buffer, not yet programmed): re-expose it, or reads
                # of this lba have no copy anywhere until the unit lands.
                self.buffer.restore_readable(cur, previous_ppa)

    def _reclaim_space_proc(self, sectors: int):
        """Run GC under the (held) dispatch lock until the user stream
        can allocate *sectors* more sectors.

        Called before the transaction stages anything, so the collector
        sees a consistent mapping table and may even checkpoint between
        victims to relieve WAL pressure.  Raises
        :class:`OutOfSpaceError` when collection cannot free enough.
        """
        stalled = 0
        obs = self.obs
        stall_started = self.sim.now if obs is not None else 0.0
        try:
            while self.provisioner.sectors_available("user") < sectors:
                before = self.provisioner.sectors_available("user")
                progressed = yield from self.gc.collect_once_locked_proc()
                # "Recycled a chunk" is not the same as "freed space": on a
                # device full of live data GC can relocate a nearly-live
                # victim and spend as many sectors as it frees, forever.
                # Tolerate one zero-gain round (the gain can land a round
                # late when relocation opens a fresh gc chunk), then give up.
                if progressed \
                        and self.provisioner.sectors_available("user") > before:
                    stalled = 0
                    continue
                stalled += 1
                if not progressed or stalled > 1:
                    raise OutOfSpaceError(
                        f"cannot reclaim {sectors} sectors for stream 'user'")
        finally:
            if obs is not None:
                # The foreground GC stall (the write that paid for
                # reclamation inline) — what the policy ablation reports.
                obs.metrics.histogram("ftl.gc.stall_s").record(
                    self.sim.now - stall_started)

    def _gc_stabilize_proc(self):
        """Durability barrier for GC: after this, every acked transaction
        is fully on NAND, so recovery can never drop one and resurrect a
        mapping into a chunk GC is about to erase.  Runs under the
        dispatch lock (GC holds it), so no new txn can race in."""
        yield from self._flush_partial_unit_proc()
        yield from self.media.flush_proc()

    def _write_unit_proc(self, unit: PendingUnit, parent=None):
        completion = yield from self.media.write_proc(
            unit.ppas, unit.data, oob=list(unit.lbas), parent=parent,
            whole=unit.whole)
        self.media.require_ok(completion, "data unit write")
        self.buffer.mark_written(unit)

    def _flush_partial_unit_proc(self):
        remaining = self.provisioner.current_unit_remaining("user")
        if not self.buffer.partial_units() and remaining == 0:
            return
        pad_payload = b""
        units: List[PendingUnit] = []
        while remaining > 0:
            ppa = self.provisioner.allocate_sector("user")
            unit = self.buffer.stage(PAD_LBA, ppa, pad_payload)
            if unit is not None:
                units.append(unit)
            remaining -= 1
        leftovers = self.buffer.take_partial_units()
        if leftovers:
            # Padding fills exactly the provisioner's unit remainder, so
            # a surviving partial unit means the cursor and the buffer
            # disagree — fail loudly instead of writing a short unit.
            raise FTLError(
                f"{len(leftovers)} partial unit(s) survived flush "
                f"padding: write buffer and allocation cursor disagree")
        procs = [self.sim.spawn(self._write_unit_proc(unit))
                 for unit in units]
        if procs:
            yield self.sim.all_of(procs)

    def _checkpoint_on_pressure_proc(self):
        if self.wal.fill_fraction() <= self.config.wal_pressure_threshold:
            return
        self.stats.forced_checkpoints += 1
        yield from self._do_checkpoint_proc()

    def _checkpoint_locked_proc(self):
        grant = self._lock.request()
        yield grant
        try:
            yield from self._do_checkpoint_proc()
        finally:
            self._lock.release()

    def _do_checkpoint_proc(self):
        """Write a checkpoint and truncate the WAL; caller holds the lock.

        Ordering is load-bearing: every mapping the checkpoint persists
        must point at *durable* data, so the partial write-buffer unit is
        padded out and the controller cache drained before the snapshot
        is taken.  (Snapshotting first would leave the checkpoint pointing
        above on-media write pointers after a crash — dangling mappings
        with nothing left to verify them against.)
        """
        yield from self._flush_partial_unit_proc()
        yield from self.media.flush_proc()
        seq = self._epoch + 1
        yield from self.checkpointer.write_proc(
            seq, self.page_map, self.chunk_table, self._next_txn_id)
        yield from self.wal.truncate_proc(seq)
        self._epoch = seq
        self.stats.checkpoints += 1

    # -- daemons ------------------------------------------------------------------------

    def _poke_gc(self) -> None:
        if (self.config.gc_enabled
                and self.provisioner.free_chunks()
                < self.config.gc_low_watermark
                and not self._gc_wakeup.triggered):
            self._gc_wakeup.succeed()

    def _gc_daemon(self):
        from repro.sim.core import Interrupt
        try:
            while self._alive:
                yield self._gc_wakeup
                self._gc_wakeup = self.sim.event()
                if not self._alive:
                    return
                grant = self._lock.request()
                yield grant
                try:
                    yield from self.gc.collect_until_locked_proc(
                        self.config.gc_high_watermark)
                except ReproError as exc:
                    # A failed victim scan, copy or reset must not kill
                    # the collector for the rest of the FTL's life: the
                    # victim stays where it is and the next wakeup
                    # retries.  (Power loss lands here too; the daemon
                    # then parks until crash() interrupts it.)  Absorbed,
                    # but not silent: the hub counts it.
                    if self.obs is not None:
                        self.obs.error("ftl.gc", "daemon-absorbed", str(exc))
                finally:
                    self._lock.release()
        except Interrupt:
            return

    def _checkpoint_daemon(self):
        from repro.sim.core import Interrupt
        interval = self.config.checkpoint_interval
        try:
            while self._alive:
                yield self.sim.timeout(interval)
                if not self._alive:
                    return
                try:
                    yield from self._checkpoint_locked_proc()
                except ReproError as exc:
                    # Retry at the next interval — but surface the miss.
                    if self.obs is not None:
                        self.obs.error("ftl", "checkpoint-absorbed",
                                       str(exc))
        except Interrupt:
            return
