"""The OX storage-controller framework (§4 of the paper).

OX is organised in three layers:

* **media manager** (:mod:`repro.ox.media`) — abstracts the underlying
  Open-Channel SSD under a common physical-address representation;
* **modular FTL** (:mod:`repro.ox.ftl`) — mapping, provisioning, write
  buffering, write-ahead log, checkpoints, garbage collection, recovery
  (the component diagram of Figure 2);
* **host interface** — the FTL-specific public APIs: :class:`OXBlock`
  (generic block device), :class:`OXEleos` (log-structured storage for
  LLAMA) and LightLSM (:mod:`repro.lsm.lightlsm`).
"""

from repro.ox.media import MediaManager
from repro.ox.block import BlockConfig, OXBlock
from repro.ox.eleos import EleosConfig, OXEleos

__all__ = [
    "MediaManager",
    "BlockConfig",
    "OXBlock",
    "EleosConfig",
    "OXEleos",
]
