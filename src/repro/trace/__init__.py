"""``repro.trace``: deterministic workload capture, replay and calibration.

The paper's evaluation hinges on running the *same* workload across the
Figure-1 abstraction spectrum.  Seeded generators get most of the way,
but production-shaped traffic (bursty diurnal mixes, Zipf hotspots) has
to be captured once and replayed faithfully.  This package is that
evaluation layer, in three pillars:

* **Capture** — :class:`TraceRecorder`, a sidecar (slot ``trace``, same
  zero-cost-when-detached contract as faults/obs/qos) that records every
  op crossing the host/workload boundary into a versioned JSONL or
  binary trace (:mod:`repro.trace.format`).  ``python -m repro.stack
  --trace-out`` and ``python -m repro.cluster --trace-out`` emit traces.
* **Replay** — :class:`TraceWorkload`, a workload that plugs into
  ``StackSpec.workload`` (``kind="trace"``) and ``ClusterWorkloadSpec``
  and replays a recorded trace deterministically: the same trace through
  the same spec yields bit-identical non-wall metrics, and one trace
  replays across FTL personalities for apples-to-apples comparisons.
  Pacing is ``afap`` (closed loop) or ``recorded`` (open loop at the
  captured inter-arrival times).
* **Calibration** — :mod:`repro.trace.calibrate` fits the NAND timing
  model (including the optional seeded latency *distributions* of
  :class:`repro.nand.SampledNandTiming`) to a latency profile: a shipped
  data file, a calibration of a prior run's obs histograms, or a
  synthetic ground truth.  ``StackSpec.timing`` makes the fitted model
  declarative.
"""

from repro.trace.calibrate import (
    CalibrationResult,
    builtin_profiles,
    evaluate,
    fit_profile,
    load_profile,
    profile_from_registry,
    synth_profile,
)
from repro.trace.format import (
    TRACE_VERSION,
    TraceOp,
    read_trace,
    write_trace,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import TraceWorkload

__all__ = [
    "TRACE_VERSION",
    "TraceOp",
    "TraceRecorder",
    "TraceWorkload",
    "CalibrationResult",
    "builtin_profiles",
    "evaluate",
    "fit_profile",
    "load_profile",
    "profile_from_registry",
    "read_trace",
    "synth_profile",
    "write_trace",
]
