"""TraceWorkload: drive a built stack from a recorded trace.

Replay rebuilds the *structure* of the capture run, not just its op
list.  Host traces carry a stream label per op (which closed-loop
client issued it) and barrier records (where the capture run quiesced);
replay groups each phase's ops by stream, spawns one process per stream
in first-appearance order, and quiesces between phases — the same
processes, issuing the same ops, in the same spawn order, as the
DbBench run that was captured.  Because the simulator is deterministic,
the replay's event sequence is then *identical*: same ``sim_seconds``,
same ``events_processed``, same DB stats (the trace guard's
bit-identity gate).  Block traces replay as the synchronous
single-issue loop that produced them.

Time-warp: ``pacing="afap"`` (default) re-runs the closed loops as fast
as the simulated device allows — the fidelity mode; ``"recorded"``
holds each op until its captured issue time, preserving the original
inter-arrival gaps (useful when replaying against a *different* stack,
where afap would collapse the think time the original device induced).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.trace.format import TraceOp, read_trace

PACINGS = ("afap", "recorded")


class TraceWorkload:
    """Replays one recorded trace through a built stack."""

    def __init__(self, ops: List[TraceOp],
                 meta: Optional[Dict[str, object]] = None,
                 pacing: str = "afap"):
        if pacing not in PACINGS:
            raise ReproError(
                f"TraceWorkload: pacing must be one of {PACINGS}, "
                f"got {pacing!r}")
        self.ops = list(ops)
        self.meta = dict(meta or {})
        self.pacing = pacing
        layers = {op.layer for op in self.ops if op.kind != "barrier"}
        if "cluster" in layers:
            raise ReproError(
                "TraceWorkload replays single-stack traces; cluster "
                "traces replay through repro.cluster.run_cluster")
        if layers >= {"host", "block"}:
            raise ReproError(
                "TraceWorkload: mixed host+block trace; record with "
                "boundary='host' or boundary='block' to replay")
        self.layer = next(iter(layers)) if layers else "host"

    @classmethod
    def load(cls, path: str, pacing: str = "afap") -> "TraceWorkload":
        meta, ops = read_trace(path)
        return cls(ops, meta=meta, pacing=pacing)

    # -- driving ------------------------------------------------------------

    def run(self, stack) -> Dict[str, object]:
        """Replay through *stack*; returns replay metrics (op counts,
        phases, and — for host traces — the same DB-stat deltas the
        capture run reported, for bit-identity comparison)."""
        if self.layer == "host":
            return self._run_host(stack)
        return self._run_block(stack)

    def _paced(self, sim, op: TraceOp):
        """Recorded pacing: hold until the captured issue time."""
        if self.pacing == "recorded" and op.t > sim.now:
            yield sim.timeout(op.t - sim.now)

    def _run_host(self, stack) -> Dict[str, object]:
        db = stack.db
        if db is None:
            raise ReproError(
                f"host trace needs a DB-hosted stack; spec "
                f"{stack.spec.name!r} has ftl={stack.spec.ftl!r}, "
                f"host={stack.spec.resolved_host!r}")
        sim = stack.sim
        bench = stack.dbbench()
        stats = db.stats

        # Phases are the stretches between barrier records; the capture
        # run quiesced at each barrier, so replay does too.
        phases: List[List[TraceOp]] = [[]]
        barriers = 0
        for op in self.ops:
            if op.kind == "barrier":
                phases.append([])
                barriers += 1
            else:
                phases[-1].append(op)

        def client(ops: List[TraceOp]):
            for op in ops:
                yield from self._paced(sim, op)
                if op.kind == "put":
                    yield from db.put_proc(op.key_bytes(), op.payload(),
                                           stream=op.stream)
                elif op.kind == "get":
                    yield from db.get_proc(op.key_bytes(),
                                           stream=op.stream)
                elif op.kind == "delete":
                    yield from db.delete_proc(op.key_bytes(),
                                              stream=op.stream)
                elif op.kind == "scan":
                    yield from db.scan_proc(limit=op.size,
                                            stream=op.stream)
                else:
                    raise ReproError(
                        f"host trace op kind {op.kind!r} is not "
                        f"replayable")

        # The capture run's DB-stat deltas (_db_workload) cover the fill
        # workload only — everything before the first quiesce barrier.
        # Measure the same window so the deltas compare bit-for-bit.
        stalls_before = stats.stall_seconds
        compactions_before = stats.compactions
        flushes_before = stats.flushes
        deltas: Optional[Dict[str, object]] = None

        total = 0
        for index, phase in enumerate(phases):
            if index > 0:
                if deltas is None:
                    deltas = {
                        "stall_seconds":
                            round(stats.stall_seconds - stalls_before, 6),
                        "compactions":
                            stats.compactions - compactions_before,
                        "flushes": stats.flushes - flushes_before,
                    }
                bench.quiesce()
            if not phase:
                continue
            # One proc per stream, spawned in first-appearance order —
            # the order the capture run's clients first reached the DB.
            by_stream: Dict[str, List[TraceOp]] = {}
            for op in phase:
                by_stream.setdefault(op.stream, []).append(op)
            workers = [sim.spawn(client(ops), name=stream or "replay")
                       for stream, ops in by_stream.items()]
            sim.run_until(sim.all_of(workers))
            total += len(phase)
        if deltas is None:
            deltas = {
                "stall_seconds":
                    round(stats.stall_seconds - stalls_before, 6),
                "compactions": stats.compactions - compactions_before,
                "flushes": stats.flushes - flushes_before,
            }

        metrics: Dict[str, object] = {
            "replay_ops": total,
            "replay_phases": barriers + 1,
            "replay_streams": len({op.stream for op in self.ops
                                   if op.kind != "barrier"}),
        }
        metrics.update(deltas)
        return metrics

    def _run_block(self, stack) -> Dict[str, object]:
        ftl = stack.ftl
        if ftl is None or not hasattr(ftl, "write"):
            raise ReproError(
                f"block trace needs a block FTL; spec "
                f"{stack.spec.name!r} has ftl={stack.spec.ftl!r}")
        sim = stack.sim
        sector_size = stack.device.geometry.sector_size
        total = 0
        for op in self.ops:
            if op.kind == "barrier":
                continue
            if self.pacing == "recorded" and op.t > sim.now:
                sim.run(until=op.t)
            if op.kind == "write":
                ftl.write(op.lba, op.payload(sector_size))
            elif op.kind == "read":
                ftl.read(op.lba, op.sectors)
            elif op.kind == "trim":
                ftl.trim(op.lba, op.sectors)
            elif op.kind == "flush":
                ftl.flush()
            else:
                raise ReproError(
                    f"block trace op kind {op.kind!r} is not replayable")
            total += 1
        # The capture loop ends with a drain of in-flight background
        # work (_raw_workload's trailing run()); mirror it.
        sim.run()
        return {"replay_ops": total, "replay_phases": 1}
