"""The versioned on-disk trace format: one op record per workload op.

Two codecs carry the same logical records:

* **JSONL** (``.jsonl``/``.json``) — a header line ``{"format":
  "repro.trace", "version": 1, "meta": {...}}`` followed by one compact
  JSON object per op.  Default-valued fields are omitted, so a
  fill-sequential trace is ~60 bytes/op and diffs readably.
* **Binary** (any other suffix; ``.trace`` by convention) — magic
  ``RTRC``, a little-endian version, a JSON meta blob, then fixed-layout
  struct records with length-prefixed stream/key strings.  ~3x smaller
  and ~5x faster to decode than JSONL for million-op traces.

``read_trace`` sniffs the magic, so either codec round-trips through
either suffix.  Payload bytes are compressed to ``(fill, size)`` — every
workload in this repo writes constant-fill values, and replay fidelity
needs sizes and keys, not entropy; arbitrary-content values replay as
``bytes([fill]) * size``.

Record vocabulary (``layer`` / ``kind``):

* ``host`` — ``put`` / ``get`` / ``delete`` / ``scan`` (LSM K/V ops;
  ``key`` is the latin-1 decoded key, ``size`` the value size or scan
  limit, ``fill`` the value's fill byte) and ``barrier`` (a quiesce
  point splitting replay phases);
* ``block`` — ``write`` / ``read`` / ``trim`` / ``flush`` over the
  OX-Block LBA API (``lba``/``sectors``);
* ``cluster`` — ``write`` / ``read`` of a routed cluster key.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

TRACE_VERSION = 1
TRACE_MAGIC = b"RTRC"

LAYERS = ("host", "block", "cluster")
KINDS = ("put", "get", "delete", "scan", "write", "read", "trim",
         "flush", "barrier")

#: JSONL field abbreviations, in record order.
_JSON_KEYS = (("t", "t"), ("l", "layer"), ("k", "kind"), ("s", "stream"),
              ("key", "key"), ("lba", "lba"), ("n", "sectors"),
              ("sz", "size"), ("f", "fill"))
_DEFAULTS = {"stream": "", "key": "", "lba": -1, "sectors": 0,
             "size": 0, "fill": 0}

#: Binary record header: t, layer, kind, len(stream), len(key), lba,
#: sectors, size, fill — followed by the stream and key bytes.
_RECORD = struct.Struct("<dBBHHqiiB")
_HEADER = struct.Struct("<HI")   # version, meta-blob length


@dataclass(frozen=True)
class TraceOp:
    """One recorded workload operation (or barrier)."""

    t: float                 # sim time at issue
    layer: str               # host | block | cluster
    kind: str                # see KINDS
    stream: str = ""         # client/tenant label (replay concurrency)
    key: str = ""            # host/cluster key (latin-1 decoded)
    lba: int = -1            # block ops only
    sectors: int = 0         # block ops only
    size: int = 0            # value bytes (put) / scan limit
    fill: int = 0            # payload fill byte

    def key_bytes(self) -> bytes:
        return self.key.encode("latin-1")

    def payload(self, sector_size: int = 0) -> bytes:
        """The op's value/payload bytes, reconstructed from (fill, size).

        Host ops use ``size`` directly; block ops use ``sectors`` times
        *sector_size*.
        """
        if self.layer == "block":
            return bytes([self.fill]) * (self.sectors * sector_size)
        return bytes([self.fill]) * self.size

    def validate(self) -> "TraceOp":
        if self.layer not in LAYERS:
            raise ReproError(
                f"trace op: unknown layer {self.layer!r}; "
                f"expected one of {LAYERS}")
        if self.kind not in KINDS:
            raise ReproError(
                f"trace op: unknown kind {self.kind!r}; "
                f"expected one of {KINDS}")
        return self


def _encode_jsonl(ops: Iterable[TraceOp], meta: Dict[str, object]) -> bytes:
    header = {"format": "repro.trace", "version": TRACE_VERSION,
              "meta": meta}
    lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
    for op in ops:
        record = {}
        data = asdict(op)
        for short, field in _JSON_KEYS:
            value = data[field]
            if field in _DEFAULTS and value == _DEFAULTS[field]:
                continue
            record[short] = value
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    return ("\n".join(lines) + "\n").encode()


def _decode_jsonl(blob: bytes) -> Tuple[Dict[str, object], List[TraceOp]]:
    lines = blob.decode().splitlines()
    if not lines:
        raise ReproError("trace file is empty")
    header = json.loads(lines[0])
    if header.get("format") != "repro.trace":
        raise ReproError(
            f"not a repro.trace file (header {lines[0][:60]!r})")
    _check_version(header.get("version"))
    ops = []
    for line in lines[1:]:
        if not line.strip():
            continue
        raw = json.loads(line)
        fields = {field: raw.get(short, _DEFAULTS.get(field))
                  for short, field in _JSON_KEYS}
        ops.append(TraceOp(**fields).validate())
    return header.get("meta", {}), ops


def _encode_binary(ops: Iterable[TraceOp], meta: Dict[str, object]) -> bytes:
    meta_blob = json.dumps(meta, sort_keys=True,
                           separators=(",", ":")).encode()
    parts = [TRACE_MAGIC, _HEADER.pack(TRACE_VERSION, len(meta_blob)),
             meta_blob]
    for op in ops:
        stream = op.stream.encode("latin-1")
        key = op.key_bytes()
        parts.append(_RECORD.pack(
            op.t, LAYERS.index(op.layer), KINDS.index(op.kind),
            len(stream), len(key), op.lba, op.sectors, op.size, op.fill))
        parts.append(stream)
        parts.append(key)
    return b"".join(parts)


def _decode_binary(blob: bytes) -> Tuple[Dict[str, object], List[TraceOp]]:
    if blob[:4] != TRACE_MAGIC:
        raise ReproError(
            f"not a binary repro.trace file (magic {blob[:4]!r})")
    version, meta_len = _HEADER.unpack_from(blob, 4)
    _check_version(version)
    offset = 4 + _HEADER.size
    meta = json.loads(blob[offset:offset + meta_len].decode())
    offset += meta_len
    ops = []
    total = len(blob)
    while offset < total:
        try:
            (t, layer, kind, stream_len, key_len, lba, sectors, size,
             fill) = _RECORD.unpack_from(blob, offset)
        except struct.error:
            raise ReproError(
                f"truncated trace record at byte {offset}") from None
        offset += _RECORD.size
        stream = blob[offset:offset + stream_len].decode("latin-1")
        offset += stream_len
        key = blob[offset:offset + key_len].decode("latin-1")
        offset += key_len
        if layer >= len(LAYERS) or kind >= len(KINDS):
            raise ReproError(
                f"trace record at byte {offset}: unknown layer/kind "
                f"codes ({layer}, {kind})")
        ops.append(TraceOp(t=t, layer=LAYERS[layer], kind=KINDS[kind],
                           stream=stream, key=key, lba=lba,
                           sectors=sectors, size=size, fill=fill))
    return meta, ops


def _check_version(version: object) -> None:
    if version != TRACE_VERSION:
        raise ReproError(
            f"trace version {version!r} is not supported "
            f"(this build reads version {TRACE_VERSION})")


def write_trace(path: str, ops: Iterable[TraceOp],
                meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """Write *ops* to *path*; codec chosen by suffix (``.jsonl``/``.json``
    → JSONL, anything else → binary).  Returns the header meta dict."""
    meta = dict(meta or {})
    meta.setdefault("version", TRACE_VERSION)
    ops = list(ops)
    meta["op_count"] = len(ops)
    if path.endswith((".jsonl", ".json")):
        blob = _encode_jsonl(ops, meta)
    else:
        blob = _encode_binary(ops, meta)
    with open(path, "wb") as handle:
        handle.write(blob)
    return meta


def read_trace(path: str) -> Tuple[Dict[str, object], List[TraceOp]]:
    """Read a trace; the codec is sniffed from the magic, not the suffix.

    Returns ``(meta, ops)``; raises :class:`ReproError` on wrong magic,
    unsupported version, or truncated/invalid records.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[:4] == TRACE_MAGIC:
        return _decode_binary(blob)
    return _decode_jsonl(blob)
