"""TraceRecorder: the capture sidecar at the host/workload boundary.

Rides the :mod:`repro.sidecar` plane under the ``trace`` slot.  The
instrumented call sites — ``DB.put_proc``/``get_proc``/``delete_proc``/
``scan_proc`` (the K/V host boundary), the OX-Block synchronous LBA API
(the raw-block boundary), and ``DbBench.quiesce`` (phase barriers) —
read ``sim.trace`` at call time and guard with ``is None``, so the
detached cost is two attribute loads per op (priced by the 2% gate in
``scripts/trace_guard.py``).  Reading the slot at call time rather than
caching it at construction means a recorder can attach to an
already-built stack, which is how ``run_spec(..., trace_out=...)``
captures without a spec change.

The *boundary* filter keeps traces single-layer: a db-hosted stack
records ``host`` ops, a bare OX-Block stack records ``block`` ops, and
``"all"`` keeps both (each record carries its layer, and replay drives
the topmost recorded layer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.sidecar import TRACE_SLOT, Sidecar
from repro.trace.format import TraceOp, write_trace

if TYPE_CHECKING:
    from repro.ocssd.device import OpenChannelSSD

BOUNDARIES = ("host", "block", "all")


class TraceRecorder(Sidecar):
    """Records workload-boundary ops from one device stack."""

    slot = TRACE_SLOT

    def __init__(self, boundary: str = "all"):
        super().__init__()
        if boundary not in BOUNDARIES:
            raise ReproError(
                f"TraceRecorder: boundary must be one of {BOUNDARIES}, "
                f"got {boundary!r}")
        self.boundary = boundary
        self.ops: List[TraceOp] = []
        self.sim = None

    # -- wiring (Sidecar protocol) ------------------------------------------

    def sidecar_targets(self, device: "OpenChannelSSD"):
        # The simulator carries the slot the hot-path guards read;
        # the device slot keeps the attach/detach lifecycle inspectable.
        return (device, device.sim)

    def _sidecar_wire(self, device: "OpenChannelSSD") -> None:
        self.sim = device.sim

    # -- capture hooks (called from instrumented layers) --------------------

    def host_op(self, kind: str, key: bytes = b"",
                value: Optional[bytes] = None, size: int = 0,
                stream: str = "") -> None:
        """One K/V op at the LSM host boundary.

        *value* is compressed to ``(fill, size)`` — see
        :mod:`repro.trace.format`; *size* carries the scan limit when
        there is no value.
        """
        if self.boundary == "block":
            return
        if value is not None:
            size = len(value)
        self.ops.append(TraceOp(
            t=self.sim.now, layer="host", kind=kind,
            stream=stream, key=key.decode("latin-1"), size=size,
            fill=(value[0] if value else 0)))

    def block_op(self, kind: str, lba: int = -1, sectors: int = 0,
                 fill: int = 0, stream: str = "") -> None:
        """One op at the OX-Block LBA boundary."""
        if self.boundary == "host":
            return
        self.ops.append(TraceOp(
            t=self.sim.now, layer="block", kind=kind, stream=stream,
            lba=lba, sectors=sectors, fill=fill))

    def barrier(self, name: str = "quiesce") -> None:
        """A phase barrier: replay quiesces the stack here, exactly as
        the capture run did between its fill and read phases."""
        if self.boundary == "block":
            return
        self.ops.append(TraceOp(t=self.sim.now, layer="host",
                                kind="barrier", stream=name))

    # -- persistence --------------------------------------------------------

    def write(self, path: str,
              meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Write the recorded ops to *path* (codec by suffix)."""
        return write_trace(path, self.ops, meta=meta)
