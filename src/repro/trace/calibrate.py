"""Fit :class:`~repro.nand.NandTiming` to a measured latency profile.

A *timing profile* is a small JSON document of per-op latency samples —
the bridge between a real device (microbenchmark output, blktrace
digests, vendor sheets) and the simulator's timing model::

    {"format": "repro.timing_profile", "version": 1,
     "name": "tlc-reference",
     "ops": {"read":    {"samples_s": [7.4e-05, ...]},
             "program": {"samples_s": [9.1e-04, ...]},
             "erase":   {"samples_s": [3.5e-03, ...]}},
     "transfer": {"bytes": 65536, "seconds_s": [1.6e-04, ...]}}

:func:`fit_profile` estimates each base latency as the sample mean and
(optionally) a log-normal jitter sigma as the stdev of the log-samples,
returning a :class:`CalibrationResult` whose ``timing`` plugs straight
into ``StackSpec.timing`` / :class:`~repro.ocssd.OpenChannelSSD`.
:func:`evaluate` scores a timing against a (held-out) profile so the
trace guard can prove recovery within tolerance.  Profiles come from
three places: shipped data files (:func:`builtin_profiles`), an obs
histogram dump (:func:`profile_from_registry`), or synthetic ground
truth (:func:`synth_profile`) for self-tests.
"""

from __future__ import annotations

import json
import math
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.nand.timing import NandTiming, SampledNandTiming

PROFILE_FORMAT = "repro.timing_profile"
PROFILE_VERSION = 1

#: The media op kinds a profile may carry (matching obs' nand.* names).
OP_KINDS = ("read", "program", "erase")

#: Shipped profile data files live next to this module.
PROFILE_DIR = os.path.join(os.path.dirname(__file__), "profiles")


@dataclass
class CalibrationResult:
    """What :func:`fit_profile` recovered from a profile."""

    timing: NandTiming
    #: Fitted mean latency per op kind, seconds.
    latencies: Dict[str, float] = field(default_factory=dict)
    #: Fitted log-normal sigma per op kind (0.0 when jitter was off).
    sigmas: Dict[str, float] = field(default_factory=dict)
    #: Relative spread of each op's samples (stdev / mean) — how much
    #: of the profile a deterministic model cannot express.
    residual_spread: Dict[str, float] = field(default_factory=dict)
    #: Sample counts per op kind.
    sample_counts: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"calibrated {type(self.timing).__name__}:"]
        for kind in OP_KINDS:
            if kind not in self.latencies:
                continue
            lines.append(
                f"  {kind:8s} {self.latencies[kind] * 1e6:9.1f} us "
                f"(sigma {self.sigmas.get(kind, 0.0):.3f}, "
                f"spread {self.residual_spread.get(kind, 0.0):.3f}, "
                f"n={self.sample_counts.get(kind, 0)})")
        lines.append(f"  channel  {self.timing.channel_bandwidth / 2**20:.1f}"
                     " MiB/s")
        return "\n".join(lines)


def _check_profile(profile: Dict[str, object]) -> Dict[str, object]:
    if profile.get("format") != PROFILE_FORMAT:
        raise ReproError(
            f"not a timing profile (format={profile.get('format')!r}; "
            f"expected {PROFILE_FORMAT!r})")
    if profile.get("version") != PROFILE_VERSION:
        raise ReproError(
            f"timing profile version {profile.get('version')!r} is not "
            f"supported (this build reads version {PROFILE_VERSION})")
    ops = profile.get("ops")
    if not isinstance(ops, dict) or not ops:
        raise ReproError("timing profile carries no 'ops' samples")
    for kind, entry in ops.items():
        if kind not in OP_KINDS:
            raise ReproError(
                f"timing profile: unknown op kind {kind!r}; "
                f"expected one of {OP_KINDS}")
        samples = entry.get("samples_s")
        if not samples:
            raise ReproError(
                f"timing profile: op {kind!r} has no samples_s")
        if any(s <= 0 for s in samples):
            raise ReproError(
                f"timing profile: op {kind!r} has non-positive samples")
    return profile


def load_profile(name_or_path: str) -> Dict[str, object]:
    """Load a profile by builtin name or by file path."""
    path = name_or_path
    if not os.path.exists(path):
        builtin = os.path.join(PROFILE_DIR, f"{name_or_path}.json")
        if os.path.exists(builtin):
            path = builtin
        else:
            shipped = ", ".join(builtin_profiles()) or "none"
            raise ReproError(
                f"timing profile {name_or_path!r} is neither a file nor a "
                f"builtin profile (shipped: {shipped})")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            profile = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"timing profile {path!r} is not valid JSON: {exc}") \
                from None
    return _check_profile(profile)


def builtin_profiles() -> List[str]:
    """Names of the profile data files shipped with the package."""
    if not os.path.isdir(PROFILE_DIR):
        return []
    return sorted(entry[:-len(".json")]
                  for entry in os.listdir(PROFILE_DIR)
                  if entry.endswith(".json"))


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def _log_sigma(values: List[float]) -> float:
    if len(values) < 2:
        return 0.0
    logs = [math.log(v) for v in values]
    mu = _mean(logs)
    return math.sqrt(sum((x - mu) ** 2 for x in logs) / (len(logs) - 1))


def fit_profile(profile: Dict[str, object], jitter: bool = False,
                seed: int = 0) -> CalibrationResult:
    """Fit a timing model to *profile*.

    Each op's base latency is its sample mean (the estimator whose
    aggregate media time matches the profile's); with *jitter* the
    log-sample stdev becomes that op's log-normal sigma and the result
    is a seeded :class:`SampledNandTiming`.  Missing op kinds fall back
    to the TLC preset values so a partial profile still builds a device.
    Channel bandwidth comes from the optional ``transfer`` section
    (bytes / mean seconds); absent that, the 400 MiB/s default stands.
    """
    _check_profile(profile)
    from repro.nand.timing import timing_for
    from repro.nand.celltype import CellType
    fallback = timing_for(CellType[str(profile.get("cell", "tlc")).upper()])
    latencies: Dict[str, float] = {}
    sigmas: Dict[str, float] = {}
    spread: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    ops = profile["ops"]
    for kind in OP_KINDS:
        entry = ops.get(kind)
        if entry is None:
            continue
        samples = [float(s) for s in entry["samples_s"]]
        mean = _mean(samples)
        latencies[kind] = mean
        sigmas[kind] = _log_sigma(samples) if jitter else 0.0
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        spread[kind] = math.sqrt(variance) / mean
        counts[kind] = len(samples)

    bandwidth = fallback.channel_bandwidth
    transfer = profile.get("transfer")
    if transfer:
        seconds = [float(s) for s in transfer.get("seconds_s", [])]
        size = float(transfer.get("bytes", 0))
        if seconds and size > 0:
            bandwidth = size / _mean(seconds)

    base = dict(
        read_latency=latencies.get("read", fallback.read_latency),
        program_latency=latencies.get("program", fallback.program_latency),
        erase_latency=latencies.get("erase", fallback.erase_latency),
        channel_bandwidth=bandwidth)
    if jitter and any(sigmas.values()):
        timing: NandTiming = SampledNandTiming(
            read_sigma=sigmas.get("read", 0.0),
            program_sigma=sigmas.get("program", 0.0),
            erase_sigma=sigmas.get("erase", 0.0),
            seed=seed, **base)
    else:
        timing = NandTiming(**base)
    return CalibrationResult(timing=timing, latencies=latencies,
                             sigmas=sigmas, residual_spread=spread,
                             sample_counts=counts)


def evaluate(timing: NandTiming,
             profile: Dict[str, object]) -> Dict[str, float]:
    """Relative error of *timing*'s base latencies against *profile*'s
    per-op sample means (plus ``"max"``, the worst of them).

    This is the held-out score: fit on one profile, evaluate on another
    drawn from the same device, and the errors bound how well the fit
    generalises.
    """
    _check_profile(profile)
    model = {"read": timing.read_latency, "program": timing.program_latency,
             "erase": timing.erase_latency}
    errors: Dict[str, float] = {}
    for kind, entry in profile["ops"].items():
        target = _mean([float(s) for s in entry["samples_s"]])
        errors[kind] = abs(model[kind] - target) / target
    errors["max"] = max(errors.values())
    return errors


def synth_profile(timing: NandTiming, seed: int = 0,
                  samples_per_op: int = 200,
                  sigma: float = 0.08,
                  transfer_bytes: int = 64 * 1024,
                  name: str = "synthetic") -> Dict[str, object]:
    """A synthetic profile drawn around *timing* (ground truth known).

    Samples are mean-preserving log-normal around each base latency, the
    same family :class:`SampledNandTiming` draws from, so fitting this
    profile must recover *timing* to within sampling error — the
    self-test the trace guard runs.
    """
    rng = random.Random(seed)
    mu_shift = -0.5 * sigma * sigma

    def draw(base: float) -> List[float]:
        return [base * rng.lognormvariate(mu_shift, sigma)
                for __ in range(samples_per_op)]

    transfer_base = timing.transfer_time(transfer_bytes)
    return {
        "format": PROFILE_FORMAT, "version": PROFILE_VERSION,
        "name": name,
        "ops": {
            "read": {"samples_s": draw(timing.read_latency)},
            "program": {"samples_s": draw(timing.program_latency)},
            "erase": {"samples_s": draw(timing.erase_latency)},
        },
        "transfer": {"bytes": transfer_bytes,
                     "seconds_s": draw(transfer_base)},
    }


def profile_from_registry(registry, name: str = "obs") -> Dict[str, object]:
    """Build a (mean-only) profile from an obs metrics registry.

    The hub's media instrumentation records ``nand.<kind>.media_s``
    histograms and ``nand.<kind>.page_groups`` counters; total media
    time over total page groups is the mean per-unit latency.  One
    aggregate sample per op kind — enough to calibrate base latencies
    from any obs-enabled run, with no extra capture machinery.
    """
    ops: Dict[str, object] = {}
    for kind in OP_KINDS:
        hist = registry.histogram(f"nand.{kind}.media_s")
        units = registry.counter(f"nand.{kind}.page_groups").value
        if units <= 0:
            continue
        ops[kind] = {"samples_s": [hist.total() / units]}
    if not ops:
        raise ReproError(
            "profile_from_registry: the registry carries no nand.* media "
            "metrics (was the run obs-enabled, and did it touch media?)")
    return {"format": PROFILE_FORMAT, "version": PROFILE_VERSION,
            "name": name, "ops": ops}


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.trace.calibrate <profile> [--jitter] [--holdout P]``"""
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.trace.calibrate",
        description="Fit NandTiming to a latency profile.")
    parser.add_argument("profile",
                        help="profile path or builtin name "
                             f"(builtin: {', '.join(builtin_profiles())})")
    parser.add_argument("--jitter", action="store_true",
                        help="also fit per-op log-normal sigmas")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--holdout", default=None,
                        help="second profile to evaluate the fit against")
    args = parser.parse_args(argv)
    result = fit_profile(load_profile(args.profile), jitter=args.jitter,
                         seed=args.seed)
    print(result.summary())
    if args.holdout:
        errors = evaluate(result.timing, load_profile(args.holdout))
        print("held-out relative error: "
              + ", ".join(f"{kind}={err:.4f}"
                          for kind, err in sorted(errors.items())))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
