"""Shared builders and reporting for the benchmark harness.

Each benchmark regenerates one of the paper's figures.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capture; EXPERIMENTS.md indexes them.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Tuple

from repro.lsm import DB, DBConfig, DbBench, LightLSMEnv, PlacementPolicy
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import MediaManager
from repro.units import KIB, MIB

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "benchmarks", "results")


def report(name: str, lines: Iterable[str]) -> str:
    """Print *lines* and persist them under benchmarks/results/."""
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def evaluation_device(chunks_per_pu: int = 160) -> OpenChannelSSD:
    """The Figure 4 drive, scaled: 8 groups x 4 PUs, dual-plane TLC,
    96 KB write unit; chunks scaled from 24 MB to 192 KB (factor 128) so
    a pure-Python run stays tractable.  SSTable = one chunk per PU, as in
    the paper."""
    geometry = DeviceGeometry(
        num_groups=8, pus_per_group=4,
        flash=FlashGeometry(blocks_per_plane=chunks_per_pu,
                            pages_per_block=6))
    return OpenChannelSSD(geometry=geometry)


def lightlsm_db(placement: PlacementPolicy,
                chunks_per_pu: int = 160,
                write_buffer_bytes: int = 4 * MIB) -> Tuple[OpenChannelSSD,
                                                            LightLSMEnv, DB]:
    """The Figure 5/6 stack: RocksDB-lite over LightLSM over the scaled
    evaluation drive, 96 KB blocks, no compression, no block cache."""
    device = evaluation_device(chunks_per_pu)
    media = MediaManager(device)
    env = LightLSMEnv(media, placement)
    config = DBConfig(block_size=96 * KIB,
                      write_buffer_bytes=write_buffer_bytes)
    db = DB(env, config, device.sim)
    return device, env, db


def format_kops(value: float) -> str:
    return f"{value / 1e3:8.3f}"
