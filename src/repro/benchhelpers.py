"""Shared builders and reporting for the benchmark harness.

Each benchmark regenerates one of the paper's figures.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capture; EXPERIMENTS.md indexes them.
"""

from __future__ import annotations

import datetime
import json
import os
import re
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.lsm import DB, LightLSMEnv, PlacementPolicy
from repro.obs.metrics import MetricsRegistry
from repro.ocssd import OpenChannelSSD
from repro.stack import StackSpec, build_stack
from repro.units import KIB, MIB

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")

_SLUG_BAD = re.compile(r"[^A-Za-z0-9._-]+")


def result_slug(name: str) -> str:
    """*name* reduced to a filesystem-safe results-file slug.

    Spec names come straight from user JSON; a ``/`` (or ``..``) must
    not escape ``benchmarks/results/``, and an empty name would write
    ``.txt``.  Runs of unsafe characters collapse to one ``-``; edge
    dots and dashes are stripped so the slug can never be a dotfile or
    a path traversal.  Raises :class:`ReproError` when nothing safe
    remains.
    """
    slug = _SLUG_BAD.sub("-", name or "").strip("-.")
    if not slug:
        raise ReproError(
            f"result name {name!r} has no filesystem-safe characters; "
            f"give the spec a non-empty name")
    return slug


def report(name: str, lines: Iterable[str],
           metrics: Optional[Mapping[str, object]] = None) -> str:
    """Print *lines* and persist them under benchmarks/results/.

    *name* is sanitized via :func:`result_slug` before touching the
    filesystem.  With *metrics*, a machine-readable JSON twin is
    written next to the ``.txt`` via :func:`report_json`.
    """
    slug = result_slug(name)
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if metrics is not None:
        report_json(name, metrics)
    return path


def bench_entry(name: str, metrics: Mapping[str, object],
                sha: Optional[str] = None) -> dict:
    """One trajectory/result entry: ``{"name", "date", "metrics"}``,
    plus ``"sha"`` (the git commit measured) when known."""
    entry = {
        "name": name,
        "date": datetime.date.today().isoformat(),
        "metrics": dict(metrics),
    }
    if sha:
        entry["sha"] = sha
    return entry


def git_sha(repo_root: str = REPO_ROOT) -> Optional[str]:
    """The repo's short HEAD SHA, or None outside git / without git."""
    try:
        import subprocess
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def report_json(name: str, metrics: Mapping[str, object]) -> str:
    """Persist *metrics* as ``benchmarks/results/<name>.json``.

    Same entry schema as the BENCH_perf.json trajectory so downstream
    tooling can parse either file uniformly.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result_slug(name)}.json")
    with open(path, "w") as handle:
        json.dump(bench_entry(name, metrics, sha=git_sha()), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    return path


def report_registry(name: str, registry: MetricsRegistry,
                    header: Optional[str] = None) -> str:
    """Persist a bench's :class:`MetricsRegistry` under its name.

    Flattens the registry (histograms fan out to ``.count/.mean/.p50/...``)
    into one ``key = value`` line per instrument plus the JSON twin —
    the registry replaces ad-hoc metric dicts in the bench harness.
    """
    flat = registry.flat()
    lines = [header or f"Metrics: {name}"]
    width = max(18, max((len(key) for key in flat), default=0))
    lines.extend(f"  {key:>{width}s} = {value}"
                 for key, value in flat.items())
    return report(name, lines, metrics=flat)


def load_trajectory(path: str = TRAJECTORY_PATH) -> List[dict]:
    """Read the perf trajectory (a JSON list of entries); [] if absent."""
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ValueError(f"{path} must hold a JSON list of entries")
    return entries


def append_trajectory(name: str, metrics: Mapping[str, object],
                      path: str = TRAJECTORY_PATH,
                      sha: Optional[str] = None) -> dict:
    """Append one entry to the perf trajectory file and return it.

    Every new entry is stamped with the measured commit's ``sha`` (the
    current HEAD unless the caller passes one); legacy entries without
    the key keep loading fine."""
    entries = load_trajectory(path)
    entry = bench_entry(name, metrics, sha=sha or git_sha())
    entries.append(entry)
    with open(path, "w") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


def evaluation_spec(chunks_per_pu: int = 160, **overrides) -> StackSpec:
    """The Figure 4 drive, scaled, as a stack spec: 8 groups x 4 PUs,
    dual-plane TLC, 96 KB write unit; chunks scaled from 24 MB to 192 KB
    (factor 128) so a pure-Python run stays tractable.  SSTable = one
    chunk per PU, as in the paper."""
    return StackSpec(
        geometry={"num_groups": 8, "pus_per_group": 4,
                  "chunks_per_pu": chunks_per_pu, "pages_per_block": 6},
        **overrides)


def evaluation_device(chunks_per_pu: int = 160) -> OpenChannelSSD:
    """The bare Figure 4 drive (see :func:`evaluation_spec`)."""
    return build_stack(evaluation_spec(chunks_per_pu, ftl="none")).device


def lightlsm_db(placement: PlacementPolicy,
                chunks_per_pu: int = 160,
                write_buffer_bytes: int = 4 * MIB,
                flush_workers: int = 1,
                compaction_workers: int = 1,
                dispatch_workers: int = 1,
                dispatch_cpu: float = 0.0) -> Tuple[OpenChannelSSD,
                                                    LightLSMEnv, DB]:
    """The Figure 5/6 stack: RocksDB-lite over LightLSM over the scaled
    evaluation drive, 96 KB blocks, no compression, no block cache.

    The worker counts are the PR-10 concurrency axes; the defaults are
    the paper's configuration (one flush daemon, one compaction daemon,
    one dispatch thread with free submissions)."""
    stack = build_stack(evaluation_spec(
        chunks_per_pu, ftl="lightlsm", placement=placement.name,
        ftl_config={"dispatch_cpu": dispatch_cpu},
        lsm_flush_workers=flush_workers,
        lsm_compaction_workers=compaction_workers,
        lightlsm_dispatch_workers=dispatch_workers,
        db={"block_size": 96 * KIB,
            "write_buffer_bytes": write_buffer_bytes}))
    return stack.device, stack.env, stack.db


def format_kops(value: float) -> str:
    return f"{value / 1e3:8.3f}"
