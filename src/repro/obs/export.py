"""Trace exporters: Chrome trace-event JSON and a JSONL event log.

* :func:`write_chrome_trace` emits the Trace Event Format that
  ``chrome://tracing`` and Perfetto load directly: one complete ("X")
  event per finished span, timestamps in microseconds of simulated
  time, one pseudo-thread per layer so the per-layer lanes read like
  the paper's latency-attribution story.  Span/parent ids ride along in
  ``args`` so tooling can rebuild the tree from the exported file.
* :func:`write_jsonl` / :func:`read_jsonl` round-trip the full event
  log (spans, instants, metric summaries) one JSON object per line —
  the format ``python -m repro.obs.report`` consumes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.obs.trace import Instant, Span, Tracer

if TYPE_CHECKING:
    from repro.obs.hub import Obs

_SECONDS_TO_US = 1e6


def _layer_tids(tracer: Tracer) -> Dict[str, int]:
    layers = sorted({span.layer for span in tracer.spans}
                    | {instant.layer for instant in tracer.instants})
    return {layer: tid for tid, layer in enumerate(layers, start=1)}


def chrome_trace_events(tracer: Tracer, pid: int = 1) -> List[dict]:
    """The ``traceEvents`` list for one tracer's finished spans."""
    tids = _layer_tids(tracer)
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": "repro"},
    }]
    for layer, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": layer}})
    for span in tracer.spans:
        if span.end is None:
            continue
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.attrs:
            args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "ts": span.start * _SECONDS_TO_US,
            "dur": (span.end - span.start) * _SECONDS_TO_US,
            "pid": pid,
            "tid": tids[span.layer],
            "args": args,
        })
    for instant in tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.layer,
            "ph": "i",
            "s": "t",
            "ts": instant.time * _SECONDS_TO_US,
            "pid": pid,
            "tid": tids[instant.layer],
            "args": dict(instant.attrs) if instant.attrs else {},
        })
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the Chrome trace JSON; returns *path*."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(tracer.spans),
            "instants": len(tracer.instants),
            "dropped": tracer.dropped,
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return path


def write_jsonl(obs: "Obs", path: str) -> str:
    """Write the full event log (spans, instants, metrics) as JSONL."""
    with open(path, "w") as handle:
        for span in obs.tracer.spans:
            handle.write(json.dumps(span.to_dict()) + "\n")
        for instant in obs.tracer.instants:
            handle.write(json.dumps(instant.to_dict()) + "\n")
        for name, summary in obs.metrics.snapshot().items():
            # The summary's own "type" is the instrument kind; it must
            # not clobber the record discriminator read_jsonl switches on.
            record = dict(summary)
            record["kind"] = record.pop("type")
            record["type"] = "metric"
            record["name"] = name
            handle.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path: str) -> Tuple[List[Span], List[Instant], List[dict]]:
    """Parse a JSONL event log back into spans, instants and metric rows."""
    spans: List[Span] = []
    instants: List[Instant] = []
    metrics: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                span = Span(record["id"], record.get("parent"),
                            record["layer"], record["name"],
                            record["start"])
                span.end = record.get("end")
                span.attrs = record.get("attrs")
                spans.append(span)
            elif kind == "instant":
                instants.append(Instant(record["layer"], record["name"],
                                        record["time"],
                                        record.get("attrs")))
            elif kind == "metric":
                metrics.append(record)
    return spans, instants, metrics


def spans_from_chrome(path: str) -> List[Span]:
    """Rebuild spans from an exported Chrome trace (ids live in args)."""
    with open(path) as handle:
        document = json.load(handle)
    events = document["traceEvents"] if isinstance(document, dict) \
        else document
    spans: List[Span] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span = Span(args.get("span_id", 0), args.get("parent_id"),
                    event.get("cat", "?"), event["name"],
                    event["ts"] / _SECONDS_TO_US)
        span.end = (event["ts"] + event["dur"]) / _SECONDS_TO_US
        spans.append(span)
    return spans
