"""The span tracer: what happened, when, inside what.

A :class:`Span` is one timed interval on one *layer* (``lsm``, ``ftl``,
``ftl.gc``, ``ftl.wal``, ``ocssd``, ``nand``, ``zns``, ...), keyed on
simulated time.  Parentage is explicit — call sites thread the parent
span down the layer stack (host → FTL → controller → chip) — because a
discrete-event simulator interleaves dozens of processes and an ambient
"current span" would attribute one command's wait to another's work.

The tracer records three event kinds:

* spans (``begin``/``end`` or ``complete`` for intervals whose duration
  is known up front, like a NAND media operation);
* instants (errors, notifications — zero-duration marks);
* and nothing else: metrics live in the registry, not the trace.

Overhead discipline: the tracer exists only while an :class:`~
repro.obs.hub.Obs` hub is attached; instrumented hot paths guard with
``if self.obs is not None`` exactly like ``repro.faults``, so a
non-observed run pays one attribute load per operation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class Span:
    """One timed interval.  ``end`` is None until finished."""

    __slots__ = ("span_id", "parent_id", "layer", "name", "start", "end",
                 "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], layer: str,
                 name: str, start: float):
        self.span_id = span_id
        self.parent_id = parent_id
        self.layer = layer
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict:
        record = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "layer": self.layer,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Instant:
    """A zero-duration mark (error events, notifications)."""

    __slots__ = ("layer", "name", "time", "attrs")

    def __init__(self, layer: str, name: str, time: float,
                 attrs: Optional[Dict[str, Any]] = None):
        self.layer = layer
        self.name = name
        self.time = time
        self.attrs = attrs

    def to_dict(self) -> dict:
        record = {
            "type": "instant",
            "layer": self.layer,
            "name": self.name,
            "time": self.time,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class Tracer:
    """Collects spans and instants against one simulated clock.

    ``max_events`` bounds memory on long traced runs: past the cap new
    spans/instants are counted in ``dropped`` instead of stored, so an
    accidental trace of a macro benchmark degrades instead of OOMing.
    """

    def __init__(self, max_events: int = 2_000_000):
        self.sim = None                 # set by Obs.attach
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.max_events = max_events
        self.dropped = 0
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)

    def begin(self, layer: str, name: str,
              parent: Optional[Span] = None) -> Optional[Span]:
        """Open a span at the current simulated time.

        Returns None past the event cap — ``end()``/attribute updates
        accept None so call sites stay unconditional.
        """
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return None
        span = Span(self._next_id,
                    parent.span_id if parent is not None else None,
                    layer, name, self.sim.now)
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Optional[Span], **attrs: Any) -> None:
        if span is None:
            return
        span.end = self.sim.now
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)

    def complete(self, layer: str, name: str, start: float, end: float,
                 parent: Optional[Span] = None, **attrs: Any) -> Optional[Span]:
        """Record a span whose interval is already known."""
        span = self.begin(layer, name, parent)
        if span is None:
            return None
        span.start = start
        span.end = end
        if attrs:
            span.attrs = attrs
        return span

    def instant(self, layer: str, name: str, **attrs: Any) -> None:
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append(
            Instant(layer, name, self.sim.now, attrs or None))

    def finished_spans(self) -> List[Span]:
        return [span for span in self.spans if span.end is not None]


def validate_nesting(spans: List[Span]) -> List[str]:
    """Check every child span's interval lies within its parent's.

    Returns human-readable violations (empty = all nested correctly).
    Unfinished spans are skipped — they are in-flight work at export
    time, not errors.  A tiny epsilon absorbs float noise in simulated
    timestamps.
    """
    epsilon = 1e-12
    by_id = {span.span_id: span for span in spans}
    violations: List[str] = []
    for span in spans:
        if span.end is None or span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            violations.append(
                f"span {span.span_id} ({span.layer}/{span.name}) has "
                f"unknown parent {span.parent_id}")
            continue
        if parent.end is None:
            continue
        if span.start < parent.start - epsilon \
                or span.end > parent.end + epsilon:
            violations.append(
                f"span {span.span_id} ({span.layer}/{span.name}) "
                f"[{span.start:.9f}, {span.end:.9f}] escapes parent "
                f"{parent.span_id} ({parent.layer}/{parent.name}) "
                f"[{parent.start:.9f}, {parent.end:.9f}]")
    return violations
