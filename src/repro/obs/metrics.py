"""The metrics registry: counters, gauges and histograms, by name.

One registry per observed stack.  Instruments are created on first use
and memoized, so call sites can say ``registry.counter("ftl.gc.resets")``
without holding references; names are dot-separated with the owning
layer as the leading namespace (``nand.*``, ``ocssd.*``, ``ftl.gc.*``,
``ftl.wal.*``, ``lsm.compaction.*``, ...).

This module is dependency-free (it must not import the simulator): the
percentile implementation here is *the* one for the whole repo —
:class:`repro.sim.stats.LatencyRecorder` and the performance-contract
characterization both delegate to :class:`Histogram`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Union

Number = Union[int, float]


def percentile_of(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list.

    *q* in [0, 100]; an empty sample set reports 0.0 so summary tables
    never crash on instruments that were registered but not exercised.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not ordered:
        return 0.0
    rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
    return ordered[rank]


class Counter:
    """A named monotonically-increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def increment(self, amount: Number = 1) -> None:
        self.value += amount

    def summary(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A named point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def summary(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Collects individual samples and summarizes them (p50/p95/p99).

    Samples are kept raw — simulated runs are bounded and nearest-rank
    percentiles on the true sample set beat bucketing error in every
    table this repo prints.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    def total(self) -> float:
        return sum(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; *q* in [0, 100]."""
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return percentile_of(self._samples, q)

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def samples(self) -> Sequence[float]:
        return tuple(self._samples)

    def summary(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total(),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum(),
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument kind for the registry's
    lifetime; asking for the same name as a different kind is a bug at
    the call site and raises immediately.
    """

    def __init__(self):
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """``{name: summary dict}`` for every instrument, sorted by name."""
        return {name: self._instruments[name].summary()
                for name in sorted(self._instruments)}

    def flat(self) -> Dict[str, Number]:
        """Flatten to plain ``{name: number}`` — counters/gauges report
        their value, histograms fan out to ``name.count/mean/p50/...``.
        The shape ``repro.benchhelpers`` persists as result JSON."""
        out: Dict[str, Number] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                summary = instrument.summary()
                for key in ("count", "mean", "p50", "p95", "p99", "max"):
                    out[f"{name}.{key}"] = summary[key]
            else:
                out[name] = instrument.value
        return out

    # -- cross-process merge ------------------------------------------------

    def dump(self) -> Dict[str, dict]:
        """Full raw state, one dict per instrument, sorted by name.

        Unlike :meth:`snapshot`, histograms carry their *samples* (not
        just summaries), so dumps merge losslessly: percentiles of the
        merged registry equal percentiles over the union of samples.
        The shape is picklable/JSON-able — it is what cluster workers
        ship back to the parent process.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {"type": "histogram",
                             "samples": list(instrument.samples())}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {"type": "counter", "value": instrument.value}
        return out

    def merge(self, dump: Dict[str, dict], prefix: str = "") -> None:
        """Fold a :meth:`dump` into this registry under ``prefix``.

        Counters add, histograms extend with the dumped samples, gauges
        set (last merge wins — callers that need per-source gauges give
        each source a distinct prefix, as the cluster merge does with
        ``cluster.shard<i>.``).  Merging a name already bound to a
        different instrument kind raises ``TypeError``, same as
        first-use registration would.
        """
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name in sorted(dump):
            entry = dump[name]
            kind = entry["type"]
            if kind not in kinds:
                raise ValueError(
                    f"metric {name!r}: unknown instrument kind {kind!r}")
            instrument = self._get(prefix + name, kinds[kind])
            if kind == "histogram":
                instrument.extend(entry["samples"])
            elif kind == "gauge":
                instrument.set(entry["value"])
            else:
                instrument.increment(entry["value"])

    def namespace(self, prefix: str) -> Dict[str, dict]:
        """Summaries of every instrument under ``prefix.`` (or equal)."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {name: instrument.summary()
                for name, instrument in sorted(self._instruments.items())
                if name == prefix or name.startswith(dotted)}
