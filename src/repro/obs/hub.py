"""The observability hub: one tracer + one metrics registry per stack.

Wiring follows the ``repro.faults`` pattern: every instrumented object
carries an ``obs`` attribute that is ``None`` in normal operation, so
the disabled hot path costs one attribute load and identity check.
:meth:`Obs.attach` wires the device, its controller and chips, and the
shared :class:`~repro.sim.core.Simulator` — layers built *afterwards*
(OX-Block, OX-ZNS, the LSM engine, the WAL appender, the collector)
inherit the hub from ``sim.obs`` at construction.  Attach first, build
the stack second::

    device = OpenChannelSSD(geometry=...)
    obs = Obs().attach(device)
    ftl = OXBlock.format(MediaManager(device), BlockConfig())
    ...run a workload...
    write_chrome_trace(obs.tracer, "trace.json")
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.sidecar import OBS_SLOT, Sidecar

if TYPE_CHECKING:
    from repro.ocssd.device import OpenChannelSSD


class Obs(Sidecar):
    """Attaches tracing + metrics to one device stack."""

    slot = OBS_SLOT

    def __init__(self, max_events: int = 2_000_000):
        super().__init__()
        self.tracer = Tracer(max_events=max_events)
        self.metrics = MetricsRegistry()
        self.sim = None

    # -- wiring (Sidecar protocol) ------------------------------------------

    def sidecar_targets(self, device: "OpenChannelSSD"):
        # The simulator carries an obs slot too: layers built after attach
        # (FTLs, the LSM engine) inherit the hub from ``sim.obs``.
        return (device, device.controller, device.sim,
                *device.chips.values())

    def _sidecar_wire(self, device: "OpenChannelSSD") -> None:
        self.sim = device.sim
        self.tracer.sim = device.sim

    # -- tracing shortcuts ------------------------------------------------

    def begin(self, layer: str, name: str,
              parent: Optional[Span] = None) -> Optional[Span]:
        return self.tracer.begin(layer, name, parent)

    def end(self, span: Optional[Span], **attrs) -> None:
        self.tracer.end(span, **attrs)

    def complete(self, layer: str, name: str, start: float, end: float,
                 parent: Optional[Span] = None, **attrs) -> Optional[Span]:
        return self.tracer.complete(layer, name, start, end, parent, **attrs)

    def instant(self, layer: str, name: str, **attrs) -> None:
        self.tracer.instant(layer, name, **attrs)

    # -- cross-layer event vocabulary --------------------------------------

    def error(self, layer: str, name: str, detail: str = "") -> None:
        """An absorbed/background error: an instant in the trace plus a
        per-layer counter, so 'how many errors did the daemons swallow'
        is one metrics lookup instead of a log grep."""
        self.metrics.counter(f"{layer}.errors").increment()
        self.metrics.counter(f"{layer}.errors.{name}").increment()
        if detail:
            self.tracer.instant(layer, f"error:{name}", detail=detail)
        else:
            self.tracer.instant(layer, f"error:{name}")

    def on_media(self, kind: str, elapsed: float, units: int) -> None:
        """One NAND media operation (called by the chip; the controller
        records the corresponding span because it knows the parent)."""
        metrics = self.metrics
        metrics.counter(f"nand.{kind}.count").increment()
        metrics.counter(f"nand.{kind}.page_groups").increment(units)
        metrics.histogram(f"nand.{kind}.media_s").record(elapsed)

    def on_spawn(self, name: str) -> None:
        self.metrics.counter("sim.processes_spawned").increment()
