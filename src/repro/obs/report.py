"""Per-layer latency attribution: where did the simulated time go?

``python -m repro.obs.report trace.jsonl`` reads an event log exported
by :func:`repro.obs.export.write_jsonl` (or, with ``--chrome``, a Chrome
trace JSON) and prints one row per layer:

* **spans** — finished spans recorded on the layer;
* **total_s** — sum of span durations (inclusive of children);
* **excl_s** — *exclusive* time: duration minus time covered by child
  spans, i.e. the layer's own contribution.  Summed over all layers
  this equals the summed duration of the root spans, which is the
  consistency check the paper's §4.3 attribution figures rely on —
  every simulated second of a traced command is claimed by exactly one
  layer;
* **p50/p95/p99** — nearest-rank percentiles of span duration.

The same computation is importable (:func:`attribute`) so tests and the
CI guard assert the sum identity instead of eyeballing the table.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import percentile_of
from repro.obs.trace import Span


@dataclass
class LayerAttribution:
    layer: str
    spans: int = 0
    total: float = 0.0
    exclusive: float = 0.0
    durations: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        return percentile_of(sorted(self.durations), q)


@dataclass
class Attribution:
    """The per-layer breakdown plus the end-to-end reference."""

    layers: Dict[str, LayerAttribution]
    root_spans: int
    root_total: float          # end-to-end: summed root span durations
    exclusive_total: float     # must equal root_total (the identity)
    unfinished: int

    @property
    def consistent(self) -> bool:
        tolerance = max(1e-9, 1e-6 * max(self.root_total, 1e-12))
        return abs(self.exclusive_total - self.root_total) <= tolerance


def attribute(spans: List[Span]) -> Attribution:
    """Fold a span forest into per-layer inclusive/exclusive time.

    Exclusive time is duration minus the duration of direct children;
    each span is subtracted from exactly one parent, so layer exclusive
    times sum to the root durations no matter how layers interleave.
    (Children of an *unfinished* span are excluded from the forest —
    they have no finished root to be consistent against.)
    """
    finished = [span for span in spans if span.end is not None]
    by_id = {span.span_id: span for span in finished}
    child_time: Dict[int, float] = {}
    rooted: List[Span] = []
    for span in finished:
        # Walk to the root; drop spans whose ancestry leaves the
        # finished set (unfinished or unknown parent).
        cursor = span
        while cursor.parent_id is not None:
            parent = by_id.get(cursor.parent_id)
            if parent is None:
                break
            cursor = parent
        else:
            rooted.append(span)
            if span.parent_id is not None:
                child_time[span.parent_id] = \
                    child_time.get(span.parent_id, 0.0) + span.duration

    layers: Dict[str, LayerAttribution] = {}
    root_total = 0.0
    root_spans = 0
    exclusive_total = 0.0
    for span in rooted:
        layer = layers.get(span.layer)
        if layer is None:
            layer = layers[span.layer] = LayerAttribution(span.layer)
        duration = span.duration
        exclusive = duration - child_time.get(span.span_id, 0.0)
        layer.spans += 1
        layer.total += duration
        layer.exclusive += exclusive
        layer.durations.append(duration)
        exclusive_total += exclusive
        if span.parent_id is None:
            root_total += duration
            root_spans += 1
    return Attribution(layers=layers, root_spans=root_spans,
                       root_total=root_total,
                       exclusive_total=exclusive_total,
                       unfinished=len(spans) - len(finished))


def format_table(result: Attribution) -> List[str]:
    lines = [
        "Per-layer latency attribution (simulated seconds)",
        f"{'layer':<16s} {'spans':>7s} {'total_s':>12s} {'excl_s':>12s} "
        f"{'share':>7s} {'p50_s':>12s} {'p95_s':>12s} {'p99_s':>12s}",
    ]
    denominator = result.root_total or 1.0
    for name in sorted(result.layers,
                       key=lambda n: -result.layers[n].exclusive):
        layer = result.layers[name]
        lines.append(
            f"{name:<16s} {layer.spans:>7d} {layer.total:>12.6f} "
            f"{layer.exclusive:>12.6f} "
            f"{100 * layer.exclusive / denominator:>6.1f}% "
            f"{layer.percentile(50):>12.6f} {layer.percentile(95):>12.6f} "
            f"{layer.percentile(99):>12.6f}")
    lines.append(
        f"{'end-to-end':<16s} {result.root_spans:>7d} "
        f"{result.root_total:>12.6f} {result.exclusive_total:>12.6f} "
        f"{'100.0%' if result.consistent else 'DRIFT':>7s}")
    if result.unfinished:
        lines.append(f"  ({result.unfinished} unfinished span(s) excluded)")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Print the per-layer latency-attribution table "
                    "for a traced run.")
    parser.add_argument("trace", help="event log (JSONL from "
                        "repro.obs.export.write_jsonl, or a Chrome "
                        "trace JSON with --chrome)")
    parser.add_argument("--chrome", action="store_true",
                        help="input is Chrome trace-event JSON")
    args = parser.parse_args(argv)

    if args.chrome:
        from repro.obs.export import spans_from_chrome
        spans = spans_from_chrome(args.trace)
    else:
        from repro.obs.export import read_jsonl
        spans, __, __ = read_jsonl(args.trace)
    if not spans:
        print("no spans in trace", file=sys.stderr)
        return 1
    result = attribute(spans)
    print("\n".join(format_table(result)))
    if not result.consistent:
        print(f"FAIL: layer exclusive sum {result.exclusive_total:.9f} != "
              f"end-to-end {result.root_total:.9f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
