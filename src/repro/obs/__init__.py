"""End-to-end tracing, metrics and latency attribution (``repro.obs``).

The paper's §4.3 claims are about *where* time goes — channel
interference, controller copy cost, GC-vs-compaction overlap.  This
subsystem makes that visible for any run:

* :class:`Obs` — the hub: attach it to a device *before* building the
  FTL/LSM stack and every layer starts tracing spans and recording
  metrics; leave it off and the hot paths pay one ``is None`` check.
* :class:`MetricsRegistry` — counters, gauges, histograms (p50/p95/p99)
  under per-layer namespaces (``nand.*``, ``ocssd.*``, ``ftl.gc.*``,
  ``ftl.wal.*``, ``lsm.compaction.*``).
* Exporters — Chrome trace-event JSON (``chrome://tracing``/Perfetto)
  and a JSONL event log.
* ``python -m repro.obs.report run.jsonl`` — the per-layer latency
  attribution table, with the layer-sums-equal-end-to-end identity
  checked.
"""

from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    spans_from_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import Obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_of,
)
from repro.obs.report import Attribution, attribute, format_table
from repro.obs.trace import Instant, Span, Tracer, validate_nesting

__all__ = [
    "Attribution",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "Obs",
    "Span",
    "Tracer",
    "attribute",
    "chrome_trace_events",
    "format_table",
    "percentile_of",
    "read_jsonl",
    "spans_from_chrome",
    "validate_nesting",
    "write_chrome_trace",
    "write_jsonl",
]
