"""Bloom filters for SSTable point lookups.

"Each random read might traverse several SSTables, depending on the
performance of bloom filters" (§4.3) — read-random throughput hinges on
these.  Double hashing over two independent 64-bit hashes, as in RocksDB's
full filters.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

_U64 = struct.Struct("<QQ")
_HEADER = struct.Struct("<IQ")   # num_hashes, num_bits


def _hash_pair(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    return _U64.unpack(digest)


def hash_key(key: bytes) -> tuple[int, int]:
    """The (h1, h2) pair used for double hashing; builders collect these
    so the filter can be sized from the *actual* key count at finish."""
    return _hash_pair(key)


def build_from_hashes(hashes: list[tuple[int, int]],
                      bits_per_key: int = 10) -> "BloomFilter":
    """Construct a right-sized filter from pre-computed hash pairs."""
    bloom = BloomFilter.for_keys(max(1, len(hashes)), bits_per_key)
    for h1, h2 in hashes:
        bloom.add_hash(h1, h2)
    return bloom


class BloomFilter:
    """A fixed-size bloom filter with k probes by double hashing."""

    def __init__(self, num_bits: int, num_hashes: int):
        if num_bits < 8:
            raise ValueError(f"num_bits must be >= 8, got {num_bits}")
        if not 1 <= num_hashes <= 16:
            raise ValueError(f"num_hashes must be in [1, 16], got {num_hashes}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def for_keys(cls, expected_keys: int,
                 bits_per_key: int = 10) -> "BloomFilter":
        """RocksDB-style sizing: ~10 bits/key, k ~= 0.69 * bits/key."""
        num_bits = max(64, expected_keys * bits_per_key)
        num_hashes = max(1, min(16, int(bits_per_key * 0.69)))
        return cls(num_bits, num_hashes)

    def add(self, key: bytes) -> None:
        self.add_hash(*_hash_pair(key))

    def add_hash(self, h1: int, h2: int) -> None:
        """Insert a pre-computed hash pair (see :func:`hash_key`)."""
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def add_all(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        h1, h2 = _hash_pair(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    # -- serialization ------------------------------------------------------------

    def serialize(self) -> bytes:
        return _HEADER.pack(self.num_hashes, self.num_bits) + bytes(self._bits)

    @classmethod
    def deserialize(cls, blob: bytes) -> "BloomFilter":
        num_hashes, num_bits = _HEADER.unpack_from(blob, 0)
        bloom = cls(num_bits, num_hashes)
        bits = blob[_HEADER.size:_HEADER.size + len(bloom._bits)]
        bloom._bits = bytearray(bits)
        return bloom
