"""RocksDB-lite: the LSM engine tying memtable, SSTables, flush and
compaction together over a pluggable storage Env.

Matches the paper's evaluation configuration: no compression, no block
cache ("without any compression or caching enabled to put more stress on
SSD accesses"), leveled compaction ending up with "3 levels of SSTables
on disk (L0, L1, L2)".  Write stalls and the background-I/O rate limiter
produce the throughput fluctuation the paper attributes to "throttling
due to RocksDB rate limiter" (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.lsm.compaction import (
    MemCursor,
    TableCursor,
    TableRef,
    merge_into_proc,
    pick_compaction,
)
from repro.lsm.env import StorageEnv
from repro.lsm.memtable import TOMBSTONE, MemTable, _Tombstone
from repro.qos.tokenbucket import TokenBucket
from repro.lsm.sstable import SSTableBuilder, SSTableMeta, search_block
from repro.sim.core import Interrupt, Simulator
from repro.units import KIB, MIB


@dataclass(frozen=True)
class DBConfig:
    """Engine tunables (RocksDB option names where they exist)."""

    block_size: int = 96 * KIB          # must suit the env's write unit
    write_buffer_bytes: int = 2 * MIB   # memtable flush threshold
    sstable_data_bytes: int = 0         # 0 = derive from env/write buffer
    l0_compaction_trigger: int = 4
    l0_slowdown_trigger: int = 6
    l0_stop_trigger: int = 10
    level_size_multiplier: int = 4
    max_levels: int = 4
    bits_per_key: int = 10
    put_cpu: float = 2e-6               # CPU cost per put
    get_cpu: float = 2e-6               # CPU cost per point lookup
    scan_cpu: float = 15e-6             # CPU cost per iterator step (merge
                                        # + value copy, no block cache)
    slowdown_delay: float = 1e-3        # extra latency per put in slowdown
    rate_limit_bytes_per_sec: Optional[float] = None
    readahead: bool = True              # iterator/compaction block prefetch


@dataclass
class DBStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    flushes: int = 0
    compactions: int = 0
    stall_seconds: float = 0.0
    slowdown_puts: int = 0
    tables_written: int = 0
    blocks_read: int = 0


class DB:
    """An LSM key-value store over a :class:`StorageEnv`."""

    def __init__(self, env: StorageEnv, config: DBConfig, sim: Simulator):
        if config.block_size % max(1, env.min_block_size):
            raise ReproError(
                f"block_size {config.block_size} incompatible with the "
                f"env's minimum write unit {env.min_block_size}")
        self.env = env
        self.config = config
        self.sim = sim
        self.memtable = MemTable()
        self.immutable: Optional[List[Tuple[bytes, object]]] = None
        self.levels: List[List[TableRef]] = [
            [] for __ in range(config.max_levels)]
        self.limiter = TokenBucket(sim, config.rate_limit_bytes_per_sec)
        self.stats = DBStats()
        # Observability (repro.obs): inherited from the simulator; None
        # unless a hub was attached before the DB was built.
        self.obs = sim.obs
        # QoS (repro.qos): inherited the same way; when present,
        # compaction yields to backlogged foreground reads block by block.
        self.qos = sim.qos
        self._next_sstable_id = 1
        self._alive = True
        self._flush_wanted = sim.event()
        self._compact_wanted = sim.event()
        self._write_ok = sim.event()
        self._write_ok.succeed()
        self._flush_idle = True
        self._compacting = False
        self._pending_deletes = 0
        self._daemons = [
            sim.spawn(self._flush_daemon(), name="lsm-flush"),
            sim.spawn(self._compaction_daemon(), name="lsm-compact"),
        ]

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def open(cls, env: StorageEnv, config: DBConfig,
             sim: Simulator) -> "DB":
        """Open a DB, recovering any SSTables the env still holds."""
        db = cls(env, config, sim)
        tables = sim.run_until(sim.spawn(env.list_tables_proc()))
        for handle, meta_blob in tables:
            meta = SSTableMeta.deserialize(meta_blob)
            if hasattr(env, "set_block_sectors"):
                env.set_block_sectors(handle, meta.block_size)
            level = min(handle.level, config.max_levels - 1)
            db.levels[level].append(TableRef(handle=handle, meta=meta))
        for level_tables in db.levels:
            level_tables.sort(key=lambda t: -t.meta.sequence)
        for level in range(1, config.max_levels):
            db.levels[level].sort(key=lambda t: t.meta.first_key)
        return db

    def close(self) -> None:
        """Flush the memtable and stop background work."""
        self.flush()
        self._alive = False
        for daemon in self._daemons:
            daemon.interrupt("close")

    @property
    def sstable_data_bytes(self) -> int:
        if self.config.sstable_data_bytes:
            return self.config.sstable_data_bytes
        if self.env.max_table_bytes:
            return self.env.max_table_bytes
        return 2 * self.config.write_buffer_bytes

    # -- synchronous API -------------------------------------------------------------

    def put(self, key: bytes, value: bytes, *, stream: str = "") -> None:
        self.sim.run_until(self.sim.spawn(
            self.put_proc(key, value, stream=stream)))

    def get(self, key: bytes, *, stream: str = "") -> Optional[bytes]:
        return self.sim.run_until(self.sim.spawn(
            self.get_proc(key, stream=stream)))

    def delete(self, key: bytes, *, stream: str = "") -> None:
        self.sim.run_until(self.sim.spawn(
            self.delete_proc(key, stream=stream)))

    def flush(self) -> None:
        self.sim.run_until(self.sim.spawn(self.flush_proc()))

    def scan(self, limit: int = 0,
             on_entry: Optional[Callable] = None, *,
             stream: str = "") -> int:
        return self.sim.run_until(self.sim.spawn(
            self.scan_proc(limit, on_entry, stream=stream)))

    # -- write path --------------------------------------------------------------------

    def put_proc(self, key: bytes, value: bytes, *, stream: str = ""):
        # Trace capture (repro.trace): the slot is read at call time so a
        # recorder can attach to an already-built stack; detached cost is
        # these two loads.  *stream* is the replay-concurrency label — it
        # names the issuing client so replay can rebuild the same
        # closed-loop procs.
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("put", key=key, value=value, stream=stream)
        obs = self.obs
        if obs is not None:
            put_started = self.sim.now
        yield from self._write_gate_proc()
        if self.config.put_cpu:
            yield self.sim.timeout(self.config.put_cpu)
        self.memtable.put(key, value)
        self.stats.puts += 1
        self._maybe_rotate_memtable()
        if obs is not None:
            obs.metrics.counter("lsm.puts").increment()
            obs.metrics.histogram("lsm.put.latency_s").record(
                self.sim.now - put_started)

    def delete_proc(self, key: bytes, *, stream: str = ""):
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("delete", key=key, stream=stream)
        yield from self._write_gate_proc()
        if self.config.put_cpu:
            yield self.sim.timeout(self.config.put_cpu)
        self.memtable.delete(key)
        self.stats.deletes += 1
        self._maybe_rotate_memtable()

    def flush_proc(self):
        """Force the memtable to disk and wait for it."""
        if len(self.memtable) == 0 and self.immutable is None:
            return
        if self.immutable is None:
            self._rotate_memtable()
        while self.immutable is not None or not self._flush_idle:
            yield self.sim.timeout(1e-4)

    def _write_gate_proc(self):
        """RocksDB write controller: stop writes entirely when L0 is
        overwhelmed or a memtable switch is pending; slow them down when
        L0 approaches the trigger."""
        while True:
            stalled = (self.immutable is not None
                       and self.memtable.approximate_bytes
                       >= self.config.write_buffer_bytes) \
                or len(self.levels[0]) >= self.config.l0_stop_trigger
            if not stalled:
                break
            started = self.sim.now
            gate = self._write_ok
            if gate.triggered:
                gate = self.sim.event()
                self._write_ok = gate
            yield gate
            self.stats.stall_seconds += self.sim.now - started
            if self.obs is not None:
                self.obs.metrics.histogram("lsm.stall_s").record(
                    self.sim.now - started)
        if len(self.levels[0]) >= self.config.l0_slowdown_trigger:
            self.stats.slowdown_puts += 1
            yield self.sim.timeout(self.config.slowdown_delay)

    def _open_write_gate(self) -> None:
        if not self._write_ok.triggered:
            self._write_ok.succeed()

    def _maybe_rotate_memtable(self) -> None:
        if (self.memtable.approximate_bytes >= self.config.write_buffer_bytes
                and self.immutable is None):
            self._rotate_memtable()

    def _rotate_memtable(self) -> None:
        self.immutable = list(self.memtable.items_sorted())
        self.memtable = MemTable()
        if not self._flush_wanted.triggered:
            self._flush_wanted.succeed()

    # -- read path ---------------------------------------------------------------------

    def get_proc(self, key: bytes, *, stream: str = ""):
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("get", key=key, stream=stream)
        self.stats.gets += 1
        if self.config.get_cpu:
            yield self.sim.timeout(self.config.get_cpu)
        value = self.memtable.get(key)
        if value is None and self.immutable is not None:
            import bisect
            items = self.immutable
            index = bisect.bisect_left(items, (key, ))
            if index < len(items) and items[index][0] == key:
                value = items[index][1]
        if value is not None:
            return None if isinstance(value, _Tombstone) else value
        # L0: newest table first; deeper levels: at most one candidate.
        for level, tables in enumerate(self.levels):
            candidates = tables if level == 0 else [
                t for t in tables if t.meta.covers(key)]
            for table in candidates:
                value = yield from self._table_get_proc(table, key)
                if value is not None:
                    return None if isinstance(value, _Tombstone) else value
        return None

    def _table_get_proc(self, table: TableRef, key: bytes):
        block_index = table.meta.locate(key)
        if block_index is None:
            return None
        table.refs += 1
        try:
            block = yield from self.env.read_block_proc(
                table.handle, block_index, self.config.block_size)
            self.stats.blocks_read += 1
        finally:
            self._release(table)
        return search_block(block, key)

    def scan_proc(self, limit: int = 0,
                  on_entry: Optional[Callable] = None, *,
                  stream: str = ""):
        """Full-order scan (db_bench read-sequential): a k-way merge over
        the memtable and every table, streaming blocks with readahead."""
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("scan", size=limit, stream=stream)
        snapshot: List[TableRef] = []
        cursors = [MemCursor(list(self.memtable.items_sorted()))]
        if self.immutable is not None:
            cursors.append(MemCursor(list(self.immutable)))
        for level, tables in enumerate(self.levels):
            for table in tables:
                table.refs += 1
                snapshot.append(table)
                cursors.append(TableCursor(
                    self.env, table, self.config.block_size, self.sim,
                    readahead=self.config.readahead))
        count = 0

        def sink(key, value):
            nonlocal count
            count += 1
            if on_entry is not None:
                on_entry(key, value)
            if self.config.scan_cpu:
                yield self.sim.timeout(self.config.scan_cpu)

        try:
            if limit:
                yield from self._merge_limited_proc(cursors, sink, limit)
            else:
                yield from merge_into_proc(cursors, sink,
                                           drop_tombstones=True)
        finally:
            for table in snapshot:
                self._release(table)
        return count

    def _merge_limited_proc(self, cursors, sink, limit: int):
        emitted = 0

        def counting_sink(key, value):
            nonlocal emitted
            emitted += 1
            yield from sink(key, value)

        for cursor in cursors:
            yield from cursor.open_proc()
        while emitted < limit:
            best_key = None
            for cursor in cursors:
                if cursor.current is not None:
                    key = cursor.current[0]
                    if best_key is None or key < best_key:
                        best_key = key
            if best_key is None:
                return
            chosen = None
            seen = False
            for cursor in cursors:
                if cursor.current is not None \
                        and cursor.current[0] == best_key:
                    if not seen:
                        chosen = cursor.current[1]
                        seen = True
                    yield from cursor.advance_proc()
            if isinstance(chosen, _Tombstone):
                continue
            yield from counting_sink(best_key, chosen)

    # -- background: flush ------------------------------------------------------------

    def _flush_daemon(self):
        try:
            while self._alive:
                if self.immutable is None:
                    yield self._flush_wanted
                    self._flush_wanted = self.sim.event()
                    continue
                self._flush_idle = False
                items = self.immutable
                cursor = MemCursor(items)
                obs = self.obs
                if obs is not None:
                    # Background work: one root span per memtable flush.
                    span = obs.begin("lsm", "flush")
                    flush_started = self.sim.now
                yield from self._write_tables_proc([cursor], level=0,
                                                   drop_tombstones=False)
                if obs is not None:
                    obs.end(span, entries=len(items))
                    obs.metrics.counter("lsm.flush.count").increment()
                    obs.metrics.histogram("lsm.flush.duration_s").record(
                        self.sim.now - flush_started)
                self.immutable = None
                self._flush_idle = True
                self.stats.flushes += 1
                self._open_write_gate()
                self._poke_compaction()
        except Interrupt:
            return

    # -- background: compaction ----------------------------------------------------------

    def _poke_compaction(self) -> None:
        if pick_compaction(self.levels, self.config.l0_compaction_trigger,
                           self.config.level_size_multiplier) is not None:
            if not self._compact_wanted.triggered:
                self._compact_wanted.succeed()

    def _compaction_daemon(self):
        try:
            while self._alive:
                pick = pick_compaction(
                    self.levels, self.config.l0_compaction_trigger,
                    self.config.level_size_multiplier)
                if pick is None:
                    yield self._compact_wanted
                    self._compact_wanted = self.sim.event()
                    continue
                self._compacting = True
                try:
                    yield from self._run_compaction_proc(pick)
                finally:
                    self._compacting = False
                self.stats.compactions += 1
                self._open_write_gate()
        except Interrupt:
            return

    def _run_compaction_proc(self, pick):
        obs = self.obs
        span = None
        if obs is not None:
            # Background work: one root span per compaction.
            span = obs.begin("lsm.compaction", "compact")
            compact_started = self.sim.now
        for table in pick.inputs:
            table.refs += 1
        cursors = [TableCursor(self.env, table, self.config.block_size,
                               self.sim, readahead=self.config.readahead)
                   for table in pick.inputs]
        # Drop tombstones when nothing below the target level can hold an
        # older value for the key.
        deeper_occupied = any(self.levels[level]
                              for level in range(pick.target_level + 1,
                                                 self.config.max_levels))
        outputs = yield from self._write_tables_proc(
            cursors, level=pick.target_level,
            drop_tombstones=not deeper_occupied,
            yield_to_foreground=True)
        # Install the new version: remove inputs, outputs are already in.
        input_set = {id(t) for t in pick.inputs}
        for level in range(self.config.max_levels):
            self.levels[level] = [t for t in self.levels[level]
                                  if id(t) not in input_set]
        for table in pick.inputs:
            table.obsolete = True
            self.env.log_version_edit(("del", table.handle.sstable_id,
                                       table.handle.level))
            self._release(table)
        if obs is not None:
            obs.end(span, target_level=pick.target_level,
                    inputs=len(pick.inputs), outputs=len(outputs))
            obs.metrics.counter("lsm.compaction.count").increment()
            obs.metrics.counter("lsm.compaction.tables_in").increment(
                len(pick.inputs))
            obs.metrics.histogram("lsm.compaction.duration_s").record(
                self.sim.now - compact_started)

    # -- table writing (shared by flush and compaction) ------------------------------------

    def _write_tables_proc(self, cursors, level: int,
                           drop_tombstones: bool,
                           yield_to_foreground: bool = False):
        """Merge *cursors* into one or more new SSTables at *level*.

        *yield_to_foreground* (compaction only — flushes gate admission
        and must finish promptly) pauses before each block write while
        the QoS scheduler reports backlogged foreground reads.
        """
        outputs: List[TableRef] = []
        bg_gate = (self.qos.background_gate_proc
                   if yield_to_foreground and self.qos is not None else None)
        state = {"builder": None, "writer": None, "bytes": 0}
        target_bytes = self.sstable_data_bytes

        def start_table_proc():
            sstable_id = self._next_sstable_id
            self._next_sstable_id += 1
            writer = yield from self.env.create_writer_proc(
                sstable_id, level, self.config.block_size)
            expected = max(16, target_bytes // 64)
            builder = SSTableBuilder(
                sstable_id, sequence=sstable_id,
                block_size=self.config.block_size,
                expected_keys=expected,
                bits_per_key=self.config.bits_per_key)
            state["builder"] = builder
            state["writer"] = writer
            state["bytes"] = 0

        def finish_table_proc():
            builder = state["builder"]
            writer = state["writer"]
            if builder is None:
                return
            final_block, meta = builder.finish()
            if final_block is not None:
                yield from self.limiter.acquire_proc(len(final_block))
                yield from writer.append_block_proc(final_block)
            if builder.entry_count == 0:
                yield from writer.abort_proc()
            else:
                handle = yield from writer.finish_proc(meta.serialize())
                table = TableRef(handle=handle, meta=meta)
                self._install_table(table, level)
                outputs.append(table)
                self.stats.tables_written += 1
            state["builder"] = None
            state["writer"] = None

        def sink(key, value):
            if state["builder"] is None:
                yield from start_table_proc()
            block = state["builder"].add(key, value)
            if block is not None:
                if bg_gate is not None:
                    yield from bg_gate()
                yield from self.limiter.acquire_proc(len(block))
                yield from state["writer"].append_block_proc(block)
            entry_bytes = len(key) + (len(value)
                                      if isinstance(value, bytes) else 0)
            state["bytes"] += entry_bytes
            if state["bytes"] >= target_bytes:
                yield from finish_table_proc()

        yield from merge_into_proc(cursors, sink, drop_tombstones)
        yield from finish_table_proc()
        return outputs

    def _install_table(self, table: TableRef, level: int) -> None:
        self.env.log_version_edit(("add", table.handle.sstable_id, level))
        if level == 0:
            self.levels[0].insert(0, table)   # newest first
        else:
            self.levels[level].append(table)
            self.levels[level].sort(key=lambda t: t.meta.first_key)

    # -- table lifetime -----------------------------------------------------------------

    def _release(self, table: TableRef) -> None:
        table.refs -= 1
        if table.obsolete and table.refs == 0:
            self._pending_deletes += 1

            def delete_and_count():
                try:
                    yield from self.env.delete_table_proc(table.handle)
                finally:
                    self._pending_deletes -= 1

            self.sim.spawn(delete_and_count(), name="table-delete")

    # -- introspection -------------------------------------------------------------------

    def wait_idle(self, poll: float = 0.01) -> None:
        """Run the simulation until flush and compaction have settled."""
        while True:
            self.sim.run(until=self.sim.now + poll)
            pending = pick_compaction(self.levels,
                                      self.config.l0_compaction_trigger,
                                      self.config.level_size_multiplier)
            busy = (self.immutable is not None or not self._flush_idle
                    or self._compacting or pending is not None
                    or self._pending_deletes > 0)
            if not busy:
                return

    def level_sizes(self) -> List[int]:
        return [len(tables) for tables in self.levels]

    def total_entries_on_disk(self) -> int:
        return sum(t.meta.entry_count
                   for tables in self.levels for t in tables)
