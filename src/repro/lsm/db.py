"""RocksDB-lite: the LSM engine tying memtable, SSTables, flush and
compaction together over a pluggable storage Env.

Matches the paper's evaluation configuration: no compression, no block
cache ("without any compression or caching enabled to put more stress on
SSD accesses"), leveled compaction ending up with "3 levels of SSTables
on disk (L0, L1, L2)".  Write stalls and the background-I/O rate limiter
produce the throughput fluctuation the paper attributes to "throttling
due to RocksDB rate limiter" (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError
from repro.lsm.backpressure import OK, SLOWDOWN, STOP, BackpressureState
from repro.lsm.compaction import (
    CompactionExecutor,
    MemCursor,
    TableCursor,
    TableRef,
    level_max_tables,
    merge_into_proc,
    pick_compaction,
)
from repro.lsm.env import StorageEnv
from repro.lsm.memtable import (
    TOMBSTONE, ImmutableMemtable, MemTable, _Tombstone)
from repro.qos.tokenbucket import TokenBucket
from repro.lsm.sstable import SSTableBuilder, SSTableMeta, search_block
from repro.sim.core import Interrupt, Simulator
from repro.units import KIB, MIB


@dataclass(frozen=True)
class DBConfig:
    """Engine tunables (RocksDB option names where they exist)."""

    block_size: int = 96 * KIB          # must suit the env's write unit
    write_buffer_bytes: int = 2 * MIB   # memtable flush threshold
    sstable_data_bytes: int = 0         # 0 = derive from env/write buffer
    l0_compaction_trigger: int = 4
    l0_slowdown_trigger: int = 6
    l0_stop_trigger: int = 10
    level_size_multiplier: int = 4
    max_levels: int = 4
    bits_per_key: int = 10
    put_cpu: float = 2e-6               # CPU cost per put
    get_cpu: float = 2e-6               # CPU cost per point lookup
    scan_cpu: float = 15e-6             # CPU cost per iterator step (merge
                                        # + value copy, no block cache)
    slowdown_delay: float = 1e-3        # extra latency per put in slowdown
    rate_limit_bytes_per_sec: Optional[float] = None
    readahead: bool = True              # iterator/compaction block prefetch
    # -- concurrency plane (defaults reproduce the single-daemon engine
    # bit-identically; scripts/lsm_guard.py pins that) -----------------
    flush_workers: int = 1              # procs draining the frozen queue
    compaction_workers: int = 1         # max concurrent compactions
    max_immutable_memtables: int = 0    # frozen-queue depth (0 = workers)


@dataclass
class DBStats:
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    flushes: int = 0
    compactions: int = 0
    stall_seconds: float = 0.0
    slowdown_puts: int = 0
    tables_written: int = 0
    blocks_read: int = 0
    #: Transitions of the bottom level into budget overrun (there is no
    #: deeper level to compact into, so the overrun is silent otherwise).
    bottom_level_oversize: int = 0
    #: High-water mark of the frozen-memtable FIFO.
    max_flush_queue_depth: int = 0
    #: (sim_time, concurrent_compactions) at every compaction start/end
    #: — the concurrency timeline bench_fig6 renders.
    compaction_timeline: List[Tuple[float, int]] = field(
        default_factory=list)


class DB:
    """An LSM key-value store over a :class:`StorageEnv`."""

    def __init__(self, env: StorageEnv, config: DBConfig, sim: Simulator):
        if config.block_size % max(1, env.min_block_size):
            raise ReproError(
                f"block_size {config.block_size} incompatible with the "
                f"env's minimum write unit {env.min_block_size}")
        if config.flush_workers < 1:
            raise ReproError(
                f"DBConfig.flush_workers must be >= 1, "
                f"got {config.flush_workers}")
        if config.compaction_workers < 1:
            raise ReproError(
                f"DBConfig.compaction_workers must be >= 1, "
                f"got {config.compaction_workers}")
        if config.max_immutable_memtables < 0:
            raise ReproError(
                f"DBConfig.max_immutable_memtables must be >= 0 "
                f"(0 = flush_workers), got {config.max_immutable_memtables}")
        self.env = env
        self.config = config
        self.sim = sim
        self.memtable = MemTable()
        #: The frozen-memtable FIFO: rotation appends, flush workers
        #: claim front-to-back, completed entries retire from the front
        #: in order (so reads walking newest-first never see an older
        #: frozen memtable shadow a newer, already-flushed one).
        self.immutable_queue: List[ImmutableMemtable] = []
        self._immutable_cap = (config.max_immutable_memtables
                               or config.flush_workers)
        self.levels: List[List[TableRef]] = [
            [] for __ in range(config.max_levels)]
        self.limiter = TokenBucket(sim, config.rate_limit_bytes_per_sec)
        self.stats = DBStats()
        # Observability (repro.obs): inherited from the simulator; None
        # unless a hub was attached before the DB was built.
        self.obs = sim.obs
        # QoS (repro.qos): inherited the same way; when present,
        # compaction yields to backlogged foreground reads block by block.
        self.qos = sim.qos
        #: Explicit write-controller state machine (OK/SLOWDOWN/STOP).
        self.backpressure = BackpressureState(config, obs=self.obs)
        #: Admission control for up to M concurrent compactions.
        self.executor = CompactionExecutor(config.compaction_workers)
        self._next_sstable_id = 1
        self._memtable_seq = 0
        self._alive = True
        self._flush_wanted = sim.event()
        self._compact_wanted = sim.event()
        self._write_ok = sim.event()
        self._write_ok.succeed()
        self._flushes_active = 0
        self._bottom_oversize = False
        self._pending_deletes = 0
        self._daemons = [
            sim.spawn(self._flush_worker(), name=f"lsm-flush-{worker}")
            for worker in range(config.flush_workers)]
        self._daemons.extend(
            sim.spawn(self._compaction_worker(), name=f"lsm-compact-{worker}")
            for worker in range(config.compaction_workers))

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def open(cls, env: StorageEnv, config: DBConfig,
             sim: Simulator) -> "DB":
        """Open a DB, recovering any SSTables the env still holds."""
        db = cls(env, config, sim)
        tables = sim.run_until(sim.spawn(env.list_tables_proc()))
        for handle, meta_blob in tables:
            meta = SSTableMeta.deserialize(meta_blob)
            if hasattr(env, "set_block_sectors"):
                env.set_block_sectors(handle, meta.block_size)
            level = min(handle.level, config.max_levels - 1)
            db.levels[level].append(TableRef(handle=handle, meta=meta))
        for level_tables in db.levels:
            level_tables.sort(key=lambda t: -t.meta.sequence)
        for table in db.levels[0]:
            # Recovery has no freeze sequences; sstable sequence is the
            # same total order for tables written by one engine.
            table.l0_seq = table.meta.sequence
        for level in range(1, config.max_levels):
            db.levels[level].sort(key=lambda t: t.meta.first_key)
        return db

    def close(self) -> None:
        """Flush the memtable and stop background work."""
        self.flush()
        self._alive = False
        for daemon in self._daemons:
            daemon.interrupt("close")

    @property
    def sstable_data_bytes(self) -> int:
        if self.config.sstable_data_bytes:
            return self.config.sstable_data_bytes
        if self.env.max_table_bytes:
            return self.env.max_table_bytes
        return 2 * self.config.write_buffer_bytes

    # -- synchronous API -------------------------------------------------------------

    def put(self, key: bytes, value: bytes, *, stream: str = "") -> None:
        self.sim.run_until(self.sim.spawn(
            self.put_proc(key, value, stream=stream)))

    def get(self, key: bytes, *, stream: str = "") -> Optional[bytes]:
        return self.sim.run_until(self.sim.spawn(
            self.get_proc(key, stream=stream)))

    def delete(self, key: bytes, *, stream: str = "") -> None:
        self.sim.run_until(self.sim.spawn(
            self.delete_proc(key, stream=stream)))

    def flush(self) -> None:
        self.sim.run_until(self.sim.spawn(self.flush_proc()))

    def scan(self, limit: int = 0,
             on_entry: Optional[Callable] = None, *,
             stream: str = "") -> int:
        return self.sim.run_until(self.sim.spawn(
            self.scan_proc(limit, on_entry, stream=stream)))

    # -- write path --------------------------------------------------------------------

    def put_proc(self, key: bytes, value: bytes, *, stream: str = ""):
        # Trace capture (repro.trace): the slot is read at call time so a
        # recorder can attach to an already-built stack; detached cost is
        # these two loads.  *stream* is the replay-concurrency label — it
        # names the issuing client so replay can rebuild the same
        # closed-loop procs.
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("put", key=key, value=value, stream=stream)
        obs = self.obs
        if obs is not None:
            put_started = self.sim.now
        yield from self._write_gate_proc()
        if self.config.put_cpu:
            yield self.sim.timeout(self.config.put_cpu)
        self.memtable.put(key, value)
        self.stats.puts += 1
        self._maybe_rotate_memtable()
        if obs is not None:
            obs.metrics.counter("lsm.puts").increment()
            obs.metrics.histogram("lsm.put.latency_s").record(
                self.sim.now - put_started)

    def delete_proc(self, key: bytes, *, stream: str = ""):
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("delete", key=key, stream=stream)
        yield from self._write_gate_proc()
        if self.config.put_cpu:
            yield self.sim.timeout(self.config.put_cpu)
        self.memtable.delete(key)
        self.stats.deletes += 1
        self._maybe_rotate_memtable()

    def flush_proc(self):
        """Force the memtable to disk and wait for the queue to drain."""
        if len(self.memtable) == 0 and not self.immutable_queue:
            return
        if len(self.memtable) \
                and len(self.immutable_queue) < self._immutable_cap:
            self._rotate_memtable()
        while self.immutable_queue or self._flushes_active:
            yield self.sim.timeout(1e-4)

    def _write_gate_proc(self):
        """RocksDB write controller: STOP blocks the put on the write
        gate until a background completion reopens it; SLOWDOWN charges
        the put an extra delay so compaction can catch up."""
        bp = self.backpressure
        while True:
            state = bp.observe(self._classify_backpressure(), self.sim.now)
            if state != STOP:
                break
            started = self.sim.now
            gate = self._write_ok
            if gate.triggered:
                gate = self.sim.event()
                self._write_ok = gate
            yield gate
            self.stats.stall_seconds += self.sim.now - started
            if self.obs is not None:
                self.obs.metrics.histogram("lsm.stall_s").record(
                    self.sim.now - started)
        if state == SLOWDOWN:
            self.stats.slowdown_puts += 1
            yield self.sim.timeout(self.config.slowdown_delay)

    def _classify_backpressure(self) -> str:
        return self.backpressure.classify(
            len(self.immutable_queue) >= self._immutable_cap,
            self.memtable.approximate_bytes
            >= self.config.write_buffer_bytes,
            len(self.levels[0]))

    def _open_write_gate(self) -> None:
        # Background completions re-sample the controller so residency
        # reflects the release, not just the next gated put.
        self.backpressure.observe(self._classify_backpressure(),
                                  self.sim.now)
        if not self._write_ok.triggered:
            self._write_ok.succeed()

    def _maybe_rotate_memtable(self) -> None:
        if (self.memtable.approximate_bytes >= self.config.write_buffer_bytes
                and len(self.immutable_queue) < self._immutable_cap):
            self._rotate_memtable()

    def _rotate_memtable(self) -> None:
        self._memtable_seq += 1
        self.immutable_queue.append(self.memtable.freeze(self._memtable_seq))
        self.stats.max_flush_queue_depth = max(
            self.stats.max_flush_queue_depth, len(self.immutable_queue))
        self.memtable = MemTable()
        if self.obs is not None:
            self.obs.metrics.gauge("lsm.flush.queue_depth").set(
                len(self.immutable_queue))
        if not self._flush_wanted.triggered:
            self._flush_wanted.succeed()

    # -- read path ---------------------------------------------------------------------

    def get_proc(self, key: bytes, *, stream: str = ""):
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("get", key=key, stream=stream)
        self.stats.gets += 1
        if self.config.get_cpu:
            yield self.sim.timeout(self.config.get_cpu)
        value = self.memtable.get(key)
        if value is None:
            # Frozen memtables, newest first: a flush in flight must
            # stay readable until it (and everything older) retires.
            for entry in reversed(self.immutable_queue):
                value = entry.get(key)
                if value is not None:
                    break
        if value is not None:
            return None if isinstance(value, _Tombstone) else value
        # L0: newest table first; deeper levels: at most one candidate.
        for level, tables in enumerate(self.levels):
            candidates = tables if level == 0 else [
                t for t in tables if t.meta.covers(key)]
            for table in candidates:
                value = yield from self._table_get_proc(table, key)
                if value is not None:
                    return None if isinstance(value, _Tombstone) else value
        return None

    def _table_get_proc(self, table: TableRef, key: bytes):
        block_index = table.meta.locate(key)
        if block_index is None:
            return None
        table.refs += 1
        try:
            block = yield from self.env.read_block_proc(
                table.handle, block_index, self.config.block_size)
            self.stats.blocks_read += 1
        finally:
            self._release(table)
        return search_block(block, key)

    def scan_proc(self, limit: int = 0,
                  on_entry: Optional[Callable] = None, *,
                  stream: str = ""):
        """Full-order scan (db_bench read-sequential): a k-way merge over
        the memtable and every table, streaming blocks with readahead."""
        trace = self.sim.trace
        if trace is not None:
            trace.host_op("scan", size=limit, stream=stream)
        snapshot: List[TableRef] = []
        cursors = [MemCursor(list(self.memtable.items_sorted()))]
        for entry in reversed(self.immutable_queue):
            cursors.append(MemCursor(entry.items))
        for level, tables in enumerate(self.levels):
            for table in tables:
                table.refs += 1
                snapshot.append(table)
                cursors.append(TableCursor(
                    self.env, table, self.config.block_size, self.sim,
                    readahead=self.config.readahead))
        count = 0

        def sink(key, value):
            nonlocal count
            count += 1
            if on_entry is not None:
                on_entry(key, value)
            if self.config.scan_cpu:
                yield self.sim.timeout(self.config.scan_cpu)

        try:
            if limit:
                yield from self._merge_limited_proc(cursors, sink, limit)
            else:
                yield from merge_into_proc(cursors, sink,
                                           drop_tombstones=True)
        finally:
            for table in snapshot:
                self._release(table)
        return count

    def _merge_limited_proc(self, cursors, sink, limit: int):
        emitted = 0

        def counting_sink(key, value):
            nonlocal emitted
            emitted += 1
            yield from sink(key, value)

        for cursor in cursors:
            yield from cursor.open_proc()
        while emitted < limit:
            best_key = None
            for cursor in cursors:
                if cursor.current is not None:
                    key = cursor.current[0]
                    if best_key is None or key < best_key:
                        best_key = key
            if best_key is None:
                return
            chosen = None
            seen = False
            for cursor in cursors:
                if cursor.current is not None \
                        and cursor.current[0] == best_key:
                    if not seen:
                        chosen = cursor.current[1]
                        seen = True
                    yield from cursor.advance_proc()
            if isinstance(chosen, _Tombstone):
                continue
            yield from counting_sink(best_key, chosen)

    # -- background: flush ------------------------------------------------------------

    def _flush_worker(self):
        """One of N procs draining the frozen-memtable FIFO.

        Workers claim the oldest QUEUED entry; a flushed entry retires
        from the queue only once everything older has also flushed, so
        the read path's newest-first walk stays correct while flushes
        complete out of order.
        """
        try:
            while self._alive:
                entry = next((e for e in self.immutable_queue
                              if e.state == ImmutableMemtable.QUEUED), None)
                if entry is None:
                    gate = self._flush_wanted
                    yield gate
                    # First waiter to wake renews the shared event; the
                    # rest re-scan and converge on the renewed one.
                    if self._flush_wanted is gate:
                        self._flush_wanted = self.sim.event()
                    continue
                entry.state = ImmutableMemtable.FLUSHING
                self._flushes_active += 1
                obs = self.obs
                if obs is not None:
                    # Background work: one root span per memtable flush.
                    span = obs.begin("lsm", "flush")
                    flush_started = self.sim.now
                yield from self._write_tables_proc(
                    [MemCursor(entry.items)], level=0,
                    drop_tombstones=False, l0_seq=entry.seq)
                if obs is not None:
                    obs.end(span, entries=len(entry.items))
                    obs.metrics.counter("lsm.flush.count").increment()
                    obs.metrics.histogram("lsm.flush.duration_s").record(
                        self.sim.now - flush_started)
                entry.state = ImmutableMemtable.FLUSHED
                self._retire_flushed()
                self._flushes_active -= 1
                self.stats.flushes += 1
                self._open_write_gate()
                self._poke_compaction()
        except Interrupt:
            return

    def _retire_flushed(self) -> None:
        """Pop flushed entries from the FIFO front, in freeze order."""
        queue = self.immutable_queue
        while queue and queue[0].state == ImmutableMemtable.FLUSHED:
            queue.pop(0)
        if self.obs is not None:
            self.obs.metrics.gauge("lsm.flush.queue_depth").set(len(queue))

    # -- background: compaction ----------------------------------------------------------

    def _poke_compaction(self) -> None:
        if pick_compaction(self.levels, self.config.l0_compaction_trigger,
                           self.config.level_size_multiplier) is not None:
            if not self._compact_wanted.triggered:
                self._compact_wanted.succeed()

    def _compaction_worker(self):
        """One of M procs running admissible compactions concurrently.

        ``pick_compaction(busy=executor)`` skips candidates that share
        inputs or key ranges with an in-flight compaction, and
        :meth:`CompactionExecutor.acquire` re-asserts that before the
        merge starts.  Installs need no extra serialization: version
        edits happen between yields, atomically in sim time.
        """
        try:
            while self._alive:
                pick = None
                if not self.executor.saturated:
                    pick = pick_compaction(
                        self.levels, self.config.l0_compaction_trigger,
                        self.config.level_size_multiplier,
                        busy=self.executor)
                if pick is None:
                    gate = self._compact_wanted
                    yield gate
                    if self._compact_wanted is gate:
                        self._compact_wanted = self.sim.event()
                    continue
                lock = self.executor.acquire(pick)
                self._record_compaction_concurrency()
                try:
                    yield from self._run_compaction_proc(pick)
                finally:
                    self.executor.release(lock)
                    self._record_compaction_concurrency()
                self.stats.compactions += 1
                self._open_write_gate()
                if self.config.compaction_workers > 1:
                    # Inputs this merge consumed may have unblocked a
                    # pick a sibling skipped; wake the idle workers.
                    # (Skipped at M=1: the lone worker re-picks itself,
                    # and the legacy engine never self-poked — the
                    # bit-identity pin keeps it that way.)
                    self._poke_compaction()
        except Interrupt:
            return

    def _record_compaction_concurrency(self) -> None:
        self.stats.compaction_timeline.append(
            (self.sim.now, self.executor.in_flight))
        if self.obs is not None:
            self.obs.metrics.gauge("lsm.compaction.concurrent").set(
                self.executor.in_flight)

    def _run_compaction_proc(self, pick):
        obs = self.obs
        span = None
        if obs is not None:
            # Background work: one root span per compaction.
            span = obs.begin("lsm.compaction", "compact")
            compact_started = self.sim.now
        for table in pick.inputs:
            table.refs += 1
        cursors = [TableCursor(self.env, table, self.config.block_size,
                               self.sim, readahead=self.config.readahead)
                   for table in pick.inputs]
        # Drop tombstones when nothing below the target level can hold an
        # older value for the key.
        deeper_occupied = any(self.levels[level]
                              for level in range(pick.target_level + 1,
                                                 self.config.max_levels))
        outputs = yield from self._write_tables_proc(
            cursors, level=pick.target_level,
            drop_tombstones=not deeper_occupied,
            yield_to_foreground=True)
        # Install the new version: remove inputs, outputs are already in.
        input_set = {id(t) for t in pick.inputs}
        for level in range(self.config.max_levels):
            self.levels[level] = [t for t in self.levels[level]
                                  if id(t) not in input_set]
        for table in pick.inputs:
            table.obsolete = True
            self.env.log_version_edit(("del", table.handle.sstable_id,
                                       table.handle.level))
            self._release(table)
        self._update_level_obs()
        if obs is not None:
            obs.end(span, target_level=pick.target_level,
                    inputs=len(pick.inputs), outputs=len(outputs))
            obs.metrics.counter("lsm.compaction.count").increment()
            obs.metrics.counter("lsm.compaction.tables_in").increment(
                len(pick.inputs))
            obs.metrics.histogram("lsm.compaction.duration_s").record(
                self.sim.now - compact_started)

    # -- table writing (shared by flush and compaction) ------------------------------------

    def _write_tables_proc(self, cursors, level: int,
                           drop_tombstones: bool,
                           yield_to_foreground: bool = False,
                           l0_seq: int = 0):
        """Merge *cursors* into one or more new SSTables at *level*.

        *yield_to_foreground* (compaction only — flushes gate admission
        and must finish promptly) pauses before each block write while
        the QoS scheduler reports backlogged foreground reads.

        *l0_seq* (flush only) is the source memtable's freeze sequence:
        concurrent flushes can install out of order, so L0 ranks by
        freeze order, not install time.
        """
        outputs: List[TableRef] = []
        bg_gate = (self.qos.background_gate_proc
                   if yield_to_foreground and self.qos is not None else None)
        state = {"builder": None, "writer": None, "bytes": 0}
        target_bytes = self.sstable_data_bytes

        def start_table_proc():
            sstable_id = self._next_sstable_id
            self._next_sstable_id += 1
            writer = yield from self.env.create_writer_proc(
                sstable_id, level, self.config.block_size)
            expected = max(16, target_bytes // 64)
            builder = SSTableBuilder(
                sstable_id, sequence=sstable_id,
                block_size=self.config.block_size,
                expected_keys=expected,
                bits_per_key=self.config.bits_per_key)
            state["builder"] = builder
            state["writer"] = writer
            state["bytes"] = 0

        def finish_table_proc():
            builder = state["builder"]
            writer = state["writer"]
            if builder is None:
                return
            final_block, meta = builder.finish()
            if final_block is not None:
                yield from self.limiter.acquire_proc(len(final_block))
                yield from writer.append_block_proc(final_block)
            if builder.entry_count == 0:
                yield from writer.abort_proc()
            else:
                handle = yield from writer.finish_proc(meta.serialize())
                table = TableRef(handle=handle, meta=meta)
                self._install_table(table, level, l0_seq)
                outputs.append(table)
                self.stats.tables_written += 1
            state["builder"] = None
            state["writer"] = None

        def sink(key, value):
            if state["builder"] is None:
                yield from start_table_proc()
            block = state["builder"].add(key, value)
            if block is not None:
                if bg_gate is not None:
                    yield from bg_gate()
                yield from self.limiter.acquire_proc(len(block))
                yield from state["writer"].append_block_proc(block)
            entry_bytes = len(key) + (len(value)
                                      if isinstance(value, bytes) else 0)
            state["bytes"] += entry_bytes
            if state["bytes"] >= target_bytes:
                yield from finish_table_proc()

        yield from merge_into_proc(cursors, sink, drop_tombstones)
        yield from finish_table_proc()
        return outputs

    def _install_table(self, table: TableRef, level: int,
                       l0_seq: int = 0) -> None:
        self.env.log_version_edit(("add", table.handle.sstable_id, level))
        if level == 0:
            # Newest first by (freeze_seq, sstable_seq): an older frozen
            # memtable whose flush finishes late must not land in front
            # of tables holding newer versions of its keys.
            table.l0_seq = l0_seq
            rank = (l0_seq, table.meta.sequence)
            index = 0
            tables = self.levels[0]
            while index < len(tables) and (
                    tables[index].l0_seq,
                    tables[index].meta.sequence) > rank:
                index += 1
            tables.insert(index, table)
        else:
            self.levels[level].append(table)
            self.levels[level].sort(key=lambda t: t.meta.first_key)
        self._update_level_obs()

    def _update_level_obs(self) -> None:
        """Refresh per-level gauges and the bottom-level overrun counter
        (the bottom level is never a compaction source, so its budget
        overruns would otherwise be invisible)."""
        obs = self.obs
        if obs is not None:
            for level, tables in enumerate(self.levels):
                obs.metrics.gauge(f"lsm.level.{level}.tables").set(
                    len(tables))
        bottom = self.config.max_levels - 1
        oversize = len(self.levels[bottom]) > level_max_tables(
            bottom, self.config.level_size_multiplier)
        if oversize and not self._bottom_oversize:
            self.stats.bottom_level_oversize += 1
            if obs is not None:
                obs.metrics.counter(
                    "lsm.compaction.bottom_level_oversize").increment()
        self._bottom_oversize = oversize

    # -- table lifetime -----------------------------------------------------------------

    def _release(self, table: TableRef) -> None:
        table.refs -= 1
        if table.obsolete and table.refs == 0:
            self._pending_deletes += 1

            def delete_and_count():
                try:
                    yield from self.env.delete_table_proc(table.handle)
                finally:
                    self._pending_deletes -= 1

            self.sim.spawn(delete_and_count(), name="table-delete")

    # -- introspection -------------------------------------------------------------------

    def wait_idle(self, poll: float = 0.01) -> None:
        """Run the simulation until flush and compaction have settled."""
        while True:
            self.sim.run(until=self.sim.now + poll)
            pending = pick_compaction(self.levels,
                                      self.config.l0_compaction_trigger,
                                      self.config.level_size_multiplier)
            busy = (bool(self.immutable_queue) or self._flushes_active > 0
                    or self.executor.in_flight > 0 or pending is not None
                    or self._pending_deletes > 0)
            if not busy:
                return

    def level_sizes(self) -> List[int]:
        return [len(tables) for tables in self.levels]

    def total_entries_on_disk(self) -> int:
        return sum(t.meta.entry_count
                   for tables in self.levels for t in tables)
