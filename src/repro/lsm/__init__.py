"""RocksDB-lite: an LSM-tree engine with pluggable storage environments.

This is the data system driving the paper's main evaluation (Figures 5
and 6): memtable + leveled SSTables with bloom filters, background flush
and compaction, write stalls, and a storage ``Env`` abstraction with two
implementations — an in-memory one (tests, baselines) and **LightLSM**
(:mod:`repro.lsm.lightlsm`), the application-specific FTL that maps
SSTables directly onto Open-Channel SSD chunks with horizontal or
vertical placement (Figure 4).
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import MemTable, TOMBSTONE
from repro.lsm.sstable import SSTableBuilder, SSTableData, SSTableMeta
from repro.lsm.env import MemEnv, SSTableHandle, StorageEnv
from repro.lsm.lightlsm import (
    HorizontalPlacement,
    LightLSMEnv,
    PlacementPolicy,
    VerticalPlacement,
)
from repro.lsm.blockenv import BlockDevEnv
from repro.lsm.znsenv import ZnsEnv
from repro.lsm.db import DB, DBConfig
from repro.lsm.dbbench import BenchResult, DbBench

__all__ = [
    "BloomFilter",
    "MemTable",
    "TOMBSTONE",
    "SSTableBuilder",
    "SSTableData",
    "SSTableMeta",
    "MemEnv",
    "SSTableHandle",
    "StorageEnv",
    "HorizontalPlacement",
    "LightLSMEnv",
    "PlacementPolicy",
    "VerticalPlacement",
    "BlockDevEnv",
    "ZnsEnv",
    "DB",
    "DBConfig",
    "BenchResult",
    "DbBench",
]
