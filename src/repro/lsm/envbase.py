"""Shared machinery under the concrete storage environments.

:mod:`repro.lsm.env` defines *what* the LSM engine needs from storage;
this module holds the *how* that every on-device environment kept
re-implementing before the stack refactor:

* :class:`ManifestEnv` — the MANIFEST-governed visibility contract
  shared by :class:`~repro.lsm.blockenv.BlockDevEnv` and
  :class:`~repro.lsm.znsenv.ZnsEnv`: version-edit logging, the
  replay-then-read-meta recovery walk, and the handle lookup.
  (LightLSM deliberately does **not** inherit this: atomic SSTable
  flush makes the MANIFEST unnecessary, §5.)
* :func:`pad_to_sectors` — the meta-blob padding arithmetic (round up
  to whole sectors, optionally to whole write units).
* :class:`WriteDispatcher` — the paper's "single dispatch thread"
  (§4.2): one queue, strictly serialized submissions, overlapping
  completions.  LightLSM owns the only write pointers today, but the
  thread itself is environment-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.lsm.env import (
    SSTableHandle, StorageEnv, replay_manifest)
from repro.ocssd.address import Ppa
from repro.sim.resources import Store


def pad_to_sectors(blob: bytes, sector_size: int,
                   unit_sectors: int = 1) -> Tuple[int, bytes]:
    """Pad *blob* to whole sectors (and, with *unit_sectors* > 1, to
    whole write units); returns ``(sectors, padded)``."""
    sectors = -(-len(blob) // sector_size)
    sectors += (-sectors) % unit_sectors
    return sectors, blob.ljust(sectors * sector_size, b"\x00")


def split_sectors(padded: bytes, sector_size: int) -> List[memoryview]:
    """Zero-copy per-sector views of a sector-aligned blob.

    The write paths hand these straight to the device, whose chunk store
    copies them once into its slabs — so a meta blob or data block is
    never duplicated sector-by-sector on the way down.
    """
    view = memoryview(padded)
    return [view[at:at + sector_size]
            for at in range(0, len(padded), sector_size)]


class ManifestEnv(StorageEnv):
    """A storage env whose table visibility is governed by a MANIFEST.

    Subclasses own ``self._tables`` (id -> per-env layout record) and
    ``self.sector_size``; this base supplies the shared contract: the
    version-edit log, the recovery walk that replays it and reads each
    live table's meta, the writer-admission checks, and the strict
    handle lookup.
    """

    def __init__(self) -> None:
        self._tables: Dict[int, object] = {}
        self.manifest: List[Tuple[str, int, int]] = []

    def _admit_writer(self, sstable_id: int, block_size: int) -> None:
        """Both MANIFEST envs sit on sector-addressed FTLs: blocks need
        only sector alignment, and table ids must be fresh."""
        if block_size % self.sector_size:
            raise ReproError(f"block_size {block_size} not sector-aligned")
        if sstable_id in self._tables:
            raise ReproError(f"sstable {sstable_id} already exists")

    def list_tables_proc(self):
        """Visibility via the MANIFEST, as on any file system: a table
        exists iff its "add" edit survived replay."""
        live = replay_manifest(self.manifest)
        result = []
        for sstable_id in sorted(live):
            if sstable_id not in self._tables:
                continue
            handle = SSTableHandle(sstable_id, live[sstable_id])
            blob = yield from self.read_meta_proc(handle)
            result.append((handle, blob))
        return result

    def log_version_edit(self, edit: Tuple[str, int, int]) -> None:
        self.manifest.append(edit)

    def _require(self, handle: SSTableHandle):
        try:
            return self._tables[handle.sstable_id]
        except KeyError:
            raise ReproError(
                f"unknown sstable {handle.sstable_id}") from None


@dataclass
class _DispatchJob:
    ppas: List[Ppa]
    data: List[bytes]
    oob: List[object]
    fua: bool
    done: object   # Event


class WriteDispatcher:
    """The thread(s) owning the write pointers (§4.2): submissions are
    strictly serialized in queue order, completions overlap.

    The paper runs exactly one dispatch thread "so that there are no
    concurrent accesses to the write pointers" and names it the
    bottleneck keeping LightLSM from saturating the device.  *workers*
    makes that an axis: N loops drain the same queue, so up to N jobs
    can be paying *dispatch_cpu* (the per-submission CPU cost of the
    thread) at once.  The defaults — one worker, zero CPU — are the
    paper's configuration and are bit-identical to the historical
    single-loop dispatcher; the bottleneck only materializes when
    ``dispatch_cpu > 0`` *and* several writers contend, since each
    SSTable writer already serializes its own blocks.
    """

    def __init__(self, sim, media, name: str = "lsm", workers: int = 1,
                 dispatch_cpu: float = 0.0):
        if workers < 1:
            raise ReproError(
                f"WriteDispatcher: workers must be >= 1, got {workers}")
        if dispatch_cpu < 0:
            raise ReproError(
                f"WriteDispatcher: dispatch_cpu must be >= 0, "
                f"got {dispatch_cpu}")
        self.sim = sim
        self.media = media
        self.workers = workers
        self.dispatch_cpu = dispatch_cpu
        self.jobs_dispatched = 0
        self._queue = Store(sim, name=f"{name}-dispatch")
        for worker in range(workers):
            suffix = "" if worker == 0 else f"-{worker}"
            sim.spawn(self._dispatcher(),
                      name=f"{name}-dispatcher{suffix}")
        self._write_name = f"{name}-write"

    def submit(self, ppas: List[Ppa], data: List[bytes],
               oob: List[object], fua: bool = False):
        """Queue a write on the dispatch thread; returns the done event."""
        done = self.sim.event()
        self._queue.put(_DispatchJob(ppas, data, oob, fua, done))
        return done

    def _dispatcher(self):
        from repro.ocssd.commands import VectorWrite

        def completer(job: _DispatchJob):
            completion = yield from self.media.device.submit(
                VectorWrite(ppas=job.ppas, data=job.data, oob=job.oob,
                            fua=job.fua))
            job.done.succeed(completion)

        while True:
            job: _DispatchJob = yield self._queue.get()
            if self.dispatch_cpu:
                # The dispatch thread's own work: while it burns CPU on
                # this submission, queued jobs wait (unless another
                # worker is free) — the §4.2 bottleneck.
                yield self.sim.timeout(self.dispatch_cpu)
            self.jobs_dispatched += 1
            # Spawning admits the write synchronously on the process's
            # first step, in queue order: write pointers advance under a
            # single logical thread per worker.
            self.sim.spawn(completer(job), name=self._write_name)
