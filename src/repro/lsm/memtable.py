"""The memtable: the in-memory write stage of the LSM tree.

A plain dict plus size accounting; iteration sorts on demand (flush is
rare relative to inserts, so sort-at-flush beats a skiplist in Python).
Deletes insert :data:`TOMBSTONE`, which flows through SSTables until
compaction to the last level drops it.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple


class _Tombstone:
    """Sentinel marking a deleted key."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()

Value = object  # bytes | _Tombstone


class MemTable:
    """Sorted-on-demand in-memory key/value stage."""

    def __init__(self):
        self._entries: Dict[bytes, Value] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    def put(self, key: bytes, value: bytes) -> None:
        self._account(key, value)
        self._entries[key] = value

    def delete(self, key: bytes) -> None:
        self._account(key, b"")
        self._entries[key] = TOMBSTONE

    def get(self, key: bytes) -> Optional[Value]:
        """The value, TOMBSTONE if deleted here, or None if absent."""
        return self._entries.get(key)

    def items_sorted(self) -> Iterator[Tuple[bytes, Value]]:
        """All entries in key order (for flushing)."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    def freeze(self, seq: int) -> "ImmutableMemtable":
        """Snapshot this memtable as a frozen flush candidate."""
        return ImmutableMemtable(seq=seq, items=list(self.items_sorted()),
                                 approximate_bytes=self._bytes)

    def _account(self, key: bytes, value: bytes) -> None:
        # RocksDB arena semantics: every insert consumes memtable space,
        # including overwrites of a key already present (each write is a
        # new sequenced entry in the skiplist).  Only the newest version
        # per key survives the flush, but the *flush trigger* tracks the
        # cumulative insert volume — which is what makes N clients writing
        # the same key sequence generate N times the flush pressure.
        self._bytes += len(key) + len(value) + 16   # 16 B node overhead


class ImmutableMemtable:
    """A frozen memtable on the flush FIFO.

    LevelDB/RocksDB freeze the active memtable into an *immutable*
    memtable and hand it to a background flush; until the flush (and
    every older flush — installs are ordered) completes, reads must
    still see the frozen entries.  ``seq`` is the freeze order: the
    read path walks the queue newest-first, and a frozen memtable's L0
    output tables are ranked by this sequence so concurrent flushes
    can never let an older table shadow newer data.
    """

    __slots__ = ("seq", "items", "approximate_bytes", "state")

    #: Lifecycle: queued -> flushing -> flushed (awaiting ordered
    #: removal from the FIFO front).
    QUEUED, FLUSHING, FLUSHED = "queued", "flushing", "flushed"

    def __init__(self, seq: int, items: List[Tuple[bytes, Value]],
                 approximate_bytes: int = 0):
        self.seq = seq
        self.items = items
        self.approximate_bytes = approximate_bytes
        self.state = ImmutableMemtable.QUEUED

    def __len__(self) -> int:
        return len(self.items)

    def get(self, key: bytes) -> Optional[Value]:
        """The value (or TOMBSTONE) for *key*, None if absent."""
        index = bisect.bisect_left(self.items, (key,))
        if index < len(self.items) and self.items[index][0] == key:
            return self.items[index][1]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ImmutableMemtable seq={self.seq} "
                f"entries={len(self.items)} state={self.state}>")
