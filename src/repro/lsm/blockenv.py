"""BlockDevEnv: the LSM engine over the *generic* OX-Block FTL.

The paper's central contrast is between a generic block-device FTL
(pblk, SPDK, OX-Block) serving a legacy data system, and an
application-specific FTL (LightLSM) co-designed with it.  This env is
the generic side of that comparison: RocksDB-lite talks to OX-Block as
if it were a file system on a block device —

* SSTables are contiguous LBA extents from a bump/free-list allocator;
* every block write is an OX-Block *transaction* (page-map update + WAL
  commit — the generic FTL's tax on the write path);
* deleting an SSTable trims its extent, leaving invalid pages for the
  FTL's garbage collector to copy around later (LightLSM's chunk-aligned
  deletion needs no copies at all);
* table visibility needs a MANIFEST, like any file system client.

``bench_app_vs_generic.py`` measures the resulting throughput and
write-amplification gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import OutOfSpaceError, ReproError
from repro.lsm.env import SSTableHandle, SSTableWriter
from repro.lsm.envbase import ManifestEnv, pad_to_sectors
from repro.ox.block import OXBlock


@dataclass
class _Extent:
    start_lba: int
    sectors: int


class _BlockDevWriter(SSTableWriter):
    def __init__(self, env: "BlockDevEnv", sstable_id: int, level: int,
                 block_size: int):
        self.env = env
        self.sstable_id = sstable_id
        self.level = level
        self.block_size = block_size
        self.block_sectors = block_size // env.sector_size
        self._blocks_written = 0
        self._extent = None   # allocated lazily at first block

    def _ensure_extent(self) -> None:
        if self._extent is None:
            self._extent = self.env._allocate(self.env.max_table_sectors)

    def append_block_proc(self, block: bytes):
        self._ensure_extent()
        if (self._blocks_written + 1) * self.block_sectors \
                > self._extent.sectors:
            raise OutOfSpaceError(
                f"sstable {self.sstable_id} overflows its extent")
        lba = self._extent.start_lba \
            + self._blocks_written * self.block_sectors
        yield from self.env.ftl.write_proc(lba, block)
        self._blocks_written += 1

    def finish_proc(self, meta_blob: bytes):
        self._ensure_extent()
        meta_sectors, padded = pad_to_sectors(meta_blob,
                                              self.env.sector_size)
        data_sectors = self._blocks_written * self.block_sectors
        if data_sectors + meta_sectors > self._extent.sectors:
            raise OutOfSpaceError(
                f"sstable {self.sstable_id} meta overflows its extent")
        yield from self.env.ftl.write_proc(
            self._extent.start_lba + data_sectors, padded)
        handle = SSTableHandle(self.sstable_id, self.level)
        self.env._tables[self.sstable_id] = (
            self._extent, self._blocks_written, meta_sectors, len(meta_blob),
            self.level)
        return handle

    def abort_proc(self):
        if self._extent is not None:
            self.env._free(self._extent)
            self._extent = None
        return
        yield  # pragma: no cover - generator marker


class BlockDevEnv(ManifestEnv):
    """A minimal extent 'file system' over an OX-Block device."""

    def __init__(self, ftl: OXBlock, table_sectors: int):
        super().__init__()
        self.ftl = ftl
        self.sim = ftl.sim
        self.sector_size = ftl.geometry.sector_size
        self.max_table_sectors = table_sectors
        self._next_lba = 0
        self._free_list: List[_Extent] = []
        self._capacity_sectors = (len(ftl.layout.data_chunk_keys())
                                  * ftl.geometry.sectors_per_chunk)
        # ManifestEnv._tables maps
        # id -> (extent, data blocks, meta sectors, meta bytes, level)

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` of the underlying FTL;
        None when untagged."""
        return self.ftl.tenant

    # -- StorageEnv -----------------------------------------------------------

    @property
    def min_block_size(self) -> int:
        """A block device imposes only sector alignment."""
        return self.sector_size

    @property
    def max_table_bytes(self) -> int:
        # Reserve room for the meta blob plus a ~5 % margin for entry
        # encoding headers and block-tail padding.
        return int((self.max_table_sectors - 32) * self.sector_size * 0.95)

    def create_writer_proc(self, sstable_id: int, level: int,
                           block_size: int):
        self._admit_writer(sstable_id, block_size)
        self.note_block_size(block_size)
        return _BlockDevWriter(self, sstable_id, level, block_size)
        yield  # pragma: no cover - generator marker

    def read_block_proc(self, handle: SSTableHandle, block_index: int,
                        block_size: int):
        extent, blocks, __, __b, __l = self._require(handle)
        sectors = block_size // self.sector_size
        if not 0 <= block_index < blocks:
            raise ReproError(
                f"block {block_index} out of range for {handle}")
        lba = extent.start_lba + block_index * sectors
        data = yield from self.ftl.read_proc(lba, sectors)
        return data

    def read_meta_proc(self, handle: SSTableHandle):
        extent, blocks, meta_sectors, meta_bytes, __ = self._require(handle)
        # Meta sits right after the data blocks.
        data_sectors = blocks * self._block_sectors
        blob = yield from self.ftl.read_proc(
            extent.start_lba + data_sectors, meta_sectors)
        return blob[:meta_bytes]

    def delete_table_proc(self, handle: SSTableHandle):
        entry = self._tables.pop(handle.sstable_id, None)
        if entry is None:
            return
        extent = entry[0]
        # Trim invalidates the pages; the FTL's GC pays the copies later.
        yield from self.ftl.trim_proc(extent.start_lba, extent.sectors)
        self._free(extent)

    # list_tables_proc / log_version_edit / _require: ManifestEnv.

    # -- internals ----------------------------------------------------------------

    _block_sectors = 0   # the DB's (single) block size, in sectors

    def note_block_size(self, block_size: int) -> None:
        self._block_sectors = block_size // self.sector_size

    def _allocate(self, sectors: int) -> _Extent:
        for index, extent in enumerate(self._free_list):
            if extent.sectors >= sectors:
                del self._free_list[index]
                return extent
        if self._next_lba + sectors > self._capacity_sectors:
            raise OutOfSpaceError(
                f"extent allocator exhausted at lba {self._next_lba}")
        extent = _Extent(self._next_lba, sectors)
        self._next_lba += sectors
        return extent

    def _free(self, extent: _Extent) -> None:
        self._free_list.append(extent)
