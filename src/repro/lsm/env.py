"""The storage environment abstraction under the LSM engine.

RocksDB reaches storage through an ``Env``; swapping the Env is how
LightLSM plugs in ("LightLSM exposes Open-Channel SSDs as a RocksDB
environment supporting SSTable flush and block reads", §4.2).  The engine
only ever:

* streams the blocks of a new SSTable and finishes it with a meta blob
  (**SSTable flush** — atomic: a table exists only once its meta is
  durable);
* reads single blocks of existing SSTables (**block read**);
* deletes whole SSTables (compaction inputs);
* lists the SSTables on the medium (recovery).

:class:`MemEnv` is the in-memory implementation (unit tests and a
POSIX-like baseline with an explicit MANIFEST);
:class:`repro.lsm.lightlsm.LightLSMEnv` maps the same interface straight
onto Open-Channel SSD chunks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


def replay_manifest(
        manifest: List[Tuple[str, int, int]]) -> Dict[int, int]:
    """Replay ("add"/"del", sstable_id, level) version edits into the
    live table set, ``{sstable_id: level}``."""
    live: Dict[int, int] = {}
    for action, sstable_id, level in manifest:
        if action == "add":
            live[sstable_id] = level
        else:
            live.pop(sstable_id, None)
    return live


@dataclass(frozen=True)
class SSTableHandle:
    """An opaque reference to one on-medium SSTable."""

    sstable_id: int
    level: int


class SSTableWriter(abc.ABC):
    """Streams one SSTable onto the medium."""

    @abc.abstractmethod
    def append_block_proc(self, block: bytes):
        """Process generator: append one fixed-size data block."""

    @abc.abstractmethod
    def finish_proc(self, meta_blob: bytes):
        """Process generator: persist the meta blob and commit the table;
        returns the :class:`SSTableHandle`.  Before this completes the
        table does not exist (atomic flush)."""

    @abc.abstractmethod
    def abort_proc(self):
        """Process generator: discard a partially-written table."""


class StorageEnv(abc.ABC):
    """What the LSM engine requires from storage."""

    @property
    @abc.abstractmethod
    def min_block_size(self) -> int:
        """Smallest (and granularity of) legal SSTable block size."""

    @property
    @abc.abstractmethod
    def max_table_bytes(self) -> int:
        """Upper bound on one SSTable's data size (0 = unbounded)."""

    @abc.abstractmethod
    def create_writer_proc(self, sstable_id: int, level: int,
                           block_size: int):
        """Process generator returning an :class:`SSTableWriter`."""

    @abc.abstractmethod
    def read_block_proc(self, handle: SSTableHandle, block_index: int,
                        block_size: int):
        """Process generator returning the block's bytes."""

    @abc.abstractmethod
    def read_meta_proc(self, handle: SSTableHandle):
        """Process generator returning the meta blob."""

    @abc.abstractmethod
    def delete_table_proc(self, handle: SSTableHandle):
        """Process generator: reclaim the table's space."""

    @abc.abstractmethod
    def list_tables_proc(self):
        """Process generator returning ``[(handle, meta_blob), ...]`` of
        every committed table (recovery entry point)."""

    def log_version_edit(self, edit: Tuple[str, int, int]) -> None:
        """Record a version edit ("add"/"del", sstable_id, level).

        POSIX-style envs append this to a MANIFEST; LightLSM overrides it
        as a no-op — atomic SSTable flush makes the MANIFEST unnecessary
        (§5, "with LightLSM, RocksDB does not need MANIFEST")."""


class _MemWriter(SSTableWriter):
    def __init__(self, env: "MemEnv", sstable_id: int, level: int):
        self.env = env
        self.sstable_id = sstable_id
        self.level = level
        self.blocks: List[bytes] = []

    def append_block_proc(self, block: bytes):
        if self.env.write_latency:
            yield self.env.sim.timeout(self.env.write_latency)
        self.blocks.append(block)

    def finish_proc(self, meta_blob: bytes):
        if self.env.write_latency:
            yield self.env.sim.timeout(self.env.write_latency)
        handle = SSTableHandle(self.sstable_id, self.level)
        self.env._tables[self.sstable_id] = (self.level, self.blocks,
                                             meta_blob)
        return handle

    def abort_proc(self):
        self.blocks = []
        return
        yield  # pragma: no cover - generator marker


class MemEnv(StorageEnv):
    """In-memory environment with optional fixed per-block latencies.

    Models a conventional block-device file system: SSTable visibility is
    governed by the MANIFEST (``manifest_required=True``), so recovery
    returns only tables whose version edits were logged — the behaviour
    LightLSM renders unnecessary.
    """

    def __init__(self, sim, read_latency: float = 0.0,
                 write_latency: float = 0.0, manifest_required: bool = True):
        self.sim = sim
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.manifest_required = manifest_required
        self._tables: Dict[int, Tuple[int, List[bytes], bytes]] = {}
        self.manifest: List[Tuple[str, int, int]] = []

    # -- StorageEnv ------------------------------------------------------------

    @property
    def min_block_size(self) -> int:
        return 1

    @property
    def max_table_bytes(self) -> int:
        return 0

    def create_writer_proc(self, sstable_id: int, level: int,
                           block_size: int):
        if sstable_id in self._tables:
            raise ReproError(f"sstable {sstable_id} already exists")
        return _MemWriter(self, sstable_id, level)
        yield  # pragma: no cover - generator marker

    def read_block_proc(self, handle: SSTableHandle, block_index: int,
                        block_size: int):
        if self.read_latency:
            yield self.sim.timeout(self.read_latency)
        __, blocks, __m = self._require(handle)
        if not 0 <= block_index < len(blocks):
            raise ReproError(
                f"block {block_index} out of range for {handle}")
        return blocks[block_index]

    def read_meta_proc(self, handle: SSTableHandle):
        if self.read_latency:
            yield self.sim.timeout(self.read_latency)
        __, __b, meta = self._require(handle)
        return meta

    def delete_table_proc(self, handle: SSTableHandle):
        if self.write_latency:
            yield self.sim.timeout(self.write_latency)
        self._tables.pop(handle.sstable_id, None)

    def list_tables_proc(self):
        if self.read_latency:
            yield self.sim.timeout(self.read_latency)
        if self.manifest_required:
            ids = replay_manifest(self.manifest)
        else:
            ids = {sstable_id: level
                   for sstable_id, (level, __, __m) in self._tables.items()}
        result = []
        for sstable_id, level in sorted(ids.items()):
            if sstable_id in self._tables:
                __, __b, meta = self._tables[sstable_id]
                result.append((SSTableHandle(sstable_id, level), meta))
        return result

    def log_version_edit(self, edit: Tuple[str, int, int]) -> None:
        self.manifest.append(edit)

    # -- internals ---------------------------------------------------------------

    def _require(self, handle: SSTableHandle):
        try:
            return self._tables[handle.sstable_id]
        except KeyError:
            raise ReproError(f"unknown sstable {handle.sstable_id}") from None
