"""RocksDB-style rate limiter — now an alias of the repo's one token
bucket, :class:`repro.qos.tokenbucket.TokenBucket`.

RocksDB throttles flush/compaction bytes through a shared rate limiter;
the paper hypothesizes it is responsible for the throughput fluctuation
visible in Figure 6 ("Tuning RocksDB's rate limiter with LightLSM is a
topic for future work").  The QoS subsystem's per-tenant ingress
throttles are the same mechanism, so since the qos PR there is a single
implementation; this module keeps the RocksDB-flavoured name for the
LSM layer.
"""

from __future__ import annotations

from repro.qos.tokenbucket import TokenBucket

RateLimiter = TokenBucket

__all__ = ["RateLimiter"]
