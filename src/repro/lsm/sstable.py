"""SSTable format: fixed-size data blocks + bloom filter + block index.

"In RocksDB, a block is the unit of transfer for reads and writes.  The
size of an SSTable is a multiple of the RocksDB block size.  On a
dual-plane TLC drive, the size of a RocksDB block must be a multiple of
96KB" (§4.2) — so blocks here are exactly ``block_size`` bytes (the tail
of the last entry-bearing block is zero padding), and the LightLSM env
constrains ``block_size`` to a multiple of the device write unit.

Layout of one table::

    [block 0][block 1]...[block N-1]  +  meta (bloom, index, footer)

The meta section travels separately through the Env (it is what makes a
flushed SSTable self-describing, enabling MANIFEST-less recovery in
LightLSM).

Block encoding: back-to-back entries ``[u8 flag][u32 klen][key][u32 vlen]
[value]``; flag 1 marks a tombstone.  Entries never span blocks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.lsm.bloom import BloomFilter, build_from_hashes, hash_key
from repro.lsm.memtable import TOMBSTONE, _Tombstone

_ENTRY_HEADER = struct.Struct("<BI")
_U32 = struct.Struct("<I")
_FOOTER = struct.Struct("<QQIQI")   # sstable_id, entries, blocks, seq, magic
_MAGIC = 0x4C534D54   # "LSMT"

Value = Union[bytes, _Tombstone]


def encode_entry(key: bytes, value: Value) -> bytes:
    if isinstance(value, _Tombstone):
        return _ENTRY_HEADER.pack(1, len(key)) + key + _U32.pack(0)
    return (_ENTRY_HEADER.pack(0, len(key)) + key
            + _U32.pack(len(value)) + value)


def iter_block(block: bytes) -> Iterator[Tuple[bytes, Value]]:
    """Decode the entries of one data block (stops at zero padding)."""
    offset = 0
    limit = len(block)
    while offset + _ENTRY_HEADER.size <= limit:
        flag, klen = _ENTRY_HEADER.unpack_from(block, offset)
        if klen == 0:
            return   # padding reached
        offset += _ENTRY_HEADER.size
        key = block[offset:offset + klen]
        offset += klen
        (vlen,) = _U32.unpack_from(block, offset)
        offset += _U32.size
        if flag == 1:
            yield key, TOMBSTONE
        else:
            yield key, block[offset:offset + vlen]
            offset += vlen


def search_block(block: bytes, key: bytes) -> Optional[Value]:
    """Point lookup within one decoded block."""
    for entry_key, value in iter_block(block):
        if entry_key == key:
            return value
        if entry_key > key:
            return None
    return None


@dataclass
class SSTableMeta:
    """Self-describing metadata of one SSTable."""

    sstable_id: int
    sequence: int             # creation order; newer wins within a level
    block_size: int
    num_blocks: int
    entry_count: int
    first_keys: List[bytes]   # first key of each block
    last_key: bytes
    bloom: BloomFilter

    @property
    def first_key(self) -> bytes:
        return self.first_keys[0] if self.first_keys else b""

    def covers(self, key: bytes) -> bool:
        return bool(self.first_keys) and self.first_key <= key <= self.last_key

    def overlaps(self, first: bytes, last: bytes) -> bool:
        if not self.first_keys:
            return False
        return not (self.last_key < first or last < self.first_key)

    def locate(self, key: bytes) -> Optional[int]:
        """The index of the block that may hold *key* (None if out of
        range or the bloom filter rules it out)."""
        if not self.covers(key) or not self.bloom.may_contain(key):
            return None
        import bisect
        index = bisect.bisect_right(self.first_keys, key) - 1
        return max(0, index)

    # -- serialization -----------------------------------------------------------

    def serialize(self) -> bytes:
        parts = []
        parts.append(_U32.pack(self.block_size))
        parts.append(_U32.pack(len(self.first_keys)))
        for key in self.first_keys:
            parts.append(_U32.pack(len(key)))
            parts.append(key)
        parts.append(_U32.pack(len(self.last_key)))
        parts.append(self.last_key)
        bloom_blob = self.bloom.serialize()
        parts.append(_U32.pack(len(bloom_blob)))
        parts.append(bloom_blob)
        parts.append(_FOOTER.pack(self.sstable_id, self.entry_count,
                                  self.num_blocks, self.sequence, _MAGIC))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, blob: bytes) -> "SSTableMeta":
        try:
            offset = 0
            (block_size,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            (num_keys,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            first_keys = []
            for __ in range(num_keys):
                (klen,) = _U32.unpack_from(blob, offset)
                offset += _U32.size
                first_keys.append(blob[offset:offset + klen])
                offset += klen
            (llen,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            last_key = blob[offset:offset + llen]
            offset += llen
            (blen,) = _U32.unpack_from(blob, offset)
            offset += _U32.size
            bloom = BloomFilter.deserialize(blob[offset:offset + blen])
            offset += blen
            sstable_id, entries, blocks, sequence, magic = \
                _FOOTER.unpack_from(blob, offset)
        except struct.error as exc:
            raise ReproError(f"corrupt SSTable meta: {exc}") from exc
        if magic != _MAGIC:
            raise ReproError("corrupt SSTable meta: bad magic")
        if blocks != len(first_keys):
            raise ReproError("corrupt SSTable meta: block count mismatch")
        return cls(sstable_id=sstable_id, sequence=sequence,
                   block_size=block_size, num_blocks=blocks,
                   entry_count=entries, first_keys=first_keys,
                   last_key=last_key, bloom=bloom)


@dataclass
class SSTableData:
    """A fully materialized SSTable (used by tests and the MemEnv)."""

    meta: SSTableMeta
    blocks: List[bytes] = field(default_factory=list)

    def get(self, key: bytes) -> Optional[Value]:
        index = self.meta.locate(key)
        if index is None:
            return None
        return search_block(self.blocks[index], key)

    def items(self) -> Iterator[Tuple[bytes, Value]]:
        for block in self.blocks:
            yield from iter_block(block)


class SSTableBuilder:
    """Streams sorted entries into fixed-size blocks.

    ``add`` returns a finished block whenever one fills; ``finish``
    returns the final partial block (zero-padded to ``block_size``) plus
    the table's metadata.
    """

    def __init__(self, sstable_id: int, sequence: int, block_size: int,
                 expected_keys: int = 1024, bits_per_key: int = 10):
        if block_size < 64:
            raise ReproError(f"block_size {block_size} is too small")
        self.sstable_id = sstable_id
        self.sequence = sequence
        self.block_size = block_size
        self.bits_per_key = bits_per_key
        self._current = bytearray()
        self._blocks_emitted = 0
        self._first_keys: List[bytes] = []
        self._current_first: Optional[bytes] = None
        self._last_key: Optional[bytes] = None
        self._entry_count = 0
        # Hash pairs are collected so the bloom filter can be sized from
        # the actual key count at finish (RocksDB full-filter style).
        self._hashes: List[Tuple[int, int]] = []

    @property
    def entry_count(self) -> int:
        return self._entry_count

    def add(self, key: bytes, value: Value) -> Optional[bytes]:
        """Append an entry (keys must arrive in strictly increasing
        order); returns a completed block when one fills."""
        if self._last_key is not None and key <= self._last_key:
            raise ReproError(
                f"SSTable keys out of order: {key!r} after {self._last_key!r}")
        encoded = encode_entry(key, value)
        if len(encoded) > self.block_size:
            raise ReproError(
                f"entry of {len(encoded)} bytes exceeds block size "
                f"{self.block_size}")
        finished = None
        if len(self._current) + len(encoded) > self.block_size:
            finished = self._seal_block()
        if self._current_first is None:
            self._current_first = key
        self._current.extend(encoded)
        self._last_key = key
        self._entry_count += 1
        self._hashes.append(hash_key(key))
        return finished

    def finish(self) -> Tuple[Optional[bytes], SSTableMeta]:
        """Seal the final block and build the metadata."""
        final_block = self._seal_block() if self._current else None
        bloom = build_from_hashes(self._hashes, self.bits_per_key)
        meta = SSTableMeta(
            sstable_id=self.sstable_id, sequence=self.sequence,
            block_size=self.block_size, num_blocks=self._blocks_emitted,
            entry_count=self._entry_count, first_keys=self._first_keys,
            last_key=self._last_key or b"", bloom=bloom)
        return final_block, meta

    def _seal_block(self) -> bytes:
        block = bytes(self._current).ljust(self.block_size, b"\x00")
        self._first_keys.append(self._current_first or b"")
        self._blocks_emitted += 1
        self._current = bytearray()
        self._current_first = None
        return block


def build_sstable(sstable_id: int, sequence: int, block_size: int,
                  items: Iterator[Tuple[bytes, Value]],
                  expected_keys: int = 1024) -> SSTableData:
    """Convenience: materialize a whole SSTable in memory."""
    builder = SSTableBuilder(sstable_id, sequence, block_size,
                             expected_keys=expected_keys)
    blocks: List[bytes] = []
    for key, value in items:
        block = builder.add(key, value)
        if block is not None:
            blocks.append(block)
    final, meta = builder.finish()
    if final is not None:
        blocks.append(final)
    return SSTableData(meta=meta, blocks=blocks)
