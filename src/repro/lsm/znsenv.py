"""ZnsEnv: the LSM engine ported to Zoned Namespaces (OX-ZNS).

"How to best port legacy data systems from a block device abstraction to
ZNS is an open issue" (§2.3).  This env is one answer for the LSM case:
SSTables live on whole zones (append-only, reset-to-reclaim — a natural
fit for immutable tables), the FTL below hides ``ws_min``/paired-page
complexity, and the host keeps a MANIFEST for table visibility — unlike
LightLSM, the ZNS abstraction alone does not make the media
self-describing.

Together with :class:`repro.lsm.blockenv.BlockDevEnv` (generic block FTL)
and :class:`repro.lsm.lightlsm.LightLSMEnv` (application-specific FTL)
this completes the paper's Figure 1 abstraction spectrum for one data
system, measurable side by side in ``bench_abstraction_spectrum.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import OutOfSpaceError, ReproError
from repro.lsm.env import SSTableHandle, SSTableWriter
from repro.lsm.envbase import ManifestEnv, pad_to_sectors
from repro.zns.ftl import OXZns
from repro.zns.zone import ZoneState


@dataclass
class _ZnsTable:
    zones: List[int]
    data_blocks: int
    block_lbas: List[int]      # starting LBA of each data block
    meta_lba: int = -1
    meta_sectors: int = 0
    meta_bytes: int = 0


class _ZnsWriter(SSTableWriter):
    def __init__(self, env: "ZnsEnv", sstable_id: int, level: int,
                 block_size: int):
        self.env = env
        self.sstable_id = sstable_id
        self.level = level
        self.block_size = block_size
        self.block_sectors = block_size // env.sector_size
        self.table = _ZnsTable(zones=[], data_blocks=0, block_lbas=[])
        self._active_zone: int = -1

    def _zone_with_room_proc(self, sectors: int):
        """Return a zone id with at least *sectors* of room, sealing the
        active zone and taking a fresh one when it cannot fit the data."""
        zns = self.env.zns
        if self._active_zone >= 0:
            zone = zns.zone(self._active_zone)
            if zone.remaining >= sectors:
                return self._active_zone
            if zone.state is not ZoneState.FULL:
                yield from zns.finish_zone_proc(self._active_zone)
        zone_id = self.env._take_free_zone()
        self.table.zones.append(zone_id)
        self._active_zone = zone_id
        return zone_id

    def append_block_proc(self, block: bytes):
        zone_id = yield from self._zone_with_room_proc(self.block_sectors)
        lba = yield from self.env.zns.append_proc(zone_id, block)
        self.table.block_lbas.append(lba)
        self.table.data_blocks += 1

    def finish_proc(self, meta_blob: bytes):
        zns = self.env.zns
        meta_sectors, padded = pad_to_sectors(meta_blob,
                                              self.env.sector_size)
        zone_id = yield from self._zone_with_room_proc(meta_sectors)
        self.table.meta_lba = yield from zns.append_proc(zone_id, padded)
        self.table.meta_sectors = meta_sectors
        self.table.meta_bytes = len(meta_blob)
        if zns.zone(zone_id).state is not ZoneState.FULL:
            yield from zns.finish_zone_proc(zone_id)
        # Durability barrier: the table is acknowledged only once its data
        # and meta are on NAND (the fsync a real engine would issue).
        yield from zns.media.flush_proc()
        handle = SSTableHandle(self.sstable_id, self.level)
        self.env._tables[self.sstable_id] = self.table
        return handle

    def abort_proc(self):
        for zone_id in self.table.zones:
            zone = self.env.zns.zone(zone_id)
            if zone.state is not ZoneState.EMPTY:
                yield from self.env.zns.reset_zone_proc(zone_id)
            self.env._free_zones.append(zone_id)
        self.table.zones = []


class ZnsEnv(ManifestEnv):
    """SSTables on zones: append to flush, reset to reclaim."""

    def __init__(self, zns: OXZns):
        super().__init__()
        self.zns = zns
        self.sim = zns.sim
        self.sector_size = zns.geometry.sector_size
        self._free_zones: List[int] = list(range(zns.num_zones))

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` of the underlying
        namespace; None when untagged."""
        return self.zns.tenant

    # -- StorageEnv -------------------------------------------------------------

    @property
    def min_block_size(self) -> int:
        """ZNS hides ws_min: the host only needs sector alignment.  (The
        FTL pads each append internally — small appends waste capacity,
        which is the ZNS trade-off.)"""
        return self.sector_size

    @property
    def max_table_bytes(self) -> int:
        return 0   # tables may span any number of zones

    def create_writer_proc(self, sstable_id: int, level: int,
                           block_size: int):
        self._admit_writer(sstable_id, block_size)
        return _ZnsWriter(self, sstable_id, level, block_size)
        yield  # pragma: no cover - generator marker

    def read_block_proc(self, handle: SSTableHandle, block_index: int,
                        block_size: int):
        table = self._require(handle)
        if not 0 <= block_index < table.data_blocks:
            raise ReproError(f"block {block_index} out of range")
        data = yield from self.zns.read_proc(
            table.block_lbas[block_index],
            block_size // self.sector_size)
        return data

    def read_meta_proc(self, handle: SSTableHandle):
        table = self._require(handle)
        blob = yield from self.zns.read_proc(table.meta_lba,
                                             table.meta_sectors)
        return blob[:table.meta_bytes]

    def delete_table_proc(self, handle: SSTableHandle):
        table = self._tables.pop(handle.sstable_id, None)
        if table is None:
            return
        for zone_id in table.zones:
            yield from self.zns.reset_zone_proc(zone_id)
            self._free_zones.append(zone_id)

    # list_tables_proc / log_version_edit / _require: ManifestEnv.

    # -- internals ----------------------------------------------------------------

    def _take_free_zone(self) -> int:
        while self._free_zones:
            zone_id = self._free_zones.pop(0)
            if self.zns.zone(zone_id).state is ZoneState.EMPTY:
                return zone_id
        raise OutOfSpaceError("no empty zones left")
