"""A db_bench-equivalent workload driver (§4.3).

Reproduces the paper's three workloads with N concurrent clients:

* **fill-sequential** — every client writes the same key sequence in
  order ("each db bench thread submits the same workload; for
  fill-sequential, each thread writes [its data] sequentially");
* **read-sequential** — iterator scans over the populated database;
* **read-random** — uniform point lookups.

Keys are 16 bytes, values 1 KB, as in Figure 5.  Each completed operation
is bucketed into a throughput time series — the Figure 6 curves — and the
run reports average ops/sec — the Figure 5 bars.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.lsm.db import DB
from repro.sim.core import Simulator
from repro.sim.stats import ThroughputRecorder


@dataclass
class BenchResult:
    workload: str
    clients: int
    ops: int
    elapsed: float
    ops_per_sec: float
    series: List[Tuple[float, float]] = field(default_factory=list)
    stall_seconds: float = 0.0
    compactions: int = 0
    flushes: int = 0
    #: Puts that paid the SLOWDOWN delay during this phase.
    slowdown_puts: int = 0
    #: Simulated seconds per write-controller state over this phase
    #: ({"ok": ..., "slowdown": ..., "stop": ...}) — the *why* behind an
    #: ops/s move in a worker-count sweep.
    backpressure_residency: dict = field(default_factory=dict)

    def summary(self) -> str:
        residency = ""
        if self.backpressure_residency:
            residency = " bp[" + " ".join(
                f"{state}={seconds:.2f}s"
                for state, seconds in
                sorted(self.backpressure_residency.items())) + "]"
        return (f"{self.workload:16s} clients={self.clients}: "
                f"{self.ops_per_sec / 1e3:8.3f} kops/s "
                f"({self.ops} ops in {self.elapsed:.2f}s, "
                f"{self.compactions} compactions, "
                f"stall {self.stall_seconds:.2f}s, "
                f"{self.slowdown_puts} slowed{residency})")


class DbBench:
    """Drives one DB instance through the paper's workloads."""

    def __init__(self, db: DB, key_size: int = 16, value_size: int = 1024,
                 seed: int = 0, series_window: float = 1.0):
        self.db = db
        self.sim: Simulator = db.sim
        self.key_size = key_size
        self.value_size = value_size
        self.seed = seed
        self.series_window = series_window
        self.populated_keys = 0

    # -- keys and values -----------------------------------------------------------

    def key(self, index: int) -> bytes:
        return str(index).zfill(self.key_size).encode()

    def value(self, index: int) -> bytes:
        pattern = bytes([33 + (index % 90)])
        return pattern * self.value_size

    # -- workloads ------------------------------------------------------------------

    def fill_sequential(self, clients: int,
                        ops_per_client: int) -> BenchResult:
        """Every client writes keys 0..ops_per_client-1 in order."""
        recorder = ThroughputRecorder(self.series_window)
        stalls_before = self.db.stats.stall_seconds
        compactions_before = self.db.stats.compactions
        flushes_before = self.db.stats.flushes
        slowdowns_before = self.db.stats.slowdown_puts
        residency_before = self.db.backpressure.residency_summary(
            self.sim.now)
        started = self.sim.now

        def client(client_id: int):
            # The stream label rides into the trace recorder (when one is
            # attached) so replay can rebuild this client's closed loop.
            stream = f"fill-{client_id}"
            for index in range(ops_per_client):
                yield from self.db.put_proc(self.key(index),
                                            self.value(index),
                                            stream=stream)
                recorder.record(self.sim.now)

        workers = [self.sim.spawn(client(c), name=f"fill-{c}")
                   for c in range(clients)]
        self.sim.run_until(self.sim.all_of(workers))
        elapsed = self.sim.now - started
        self.populated_keys = max(self.populated_keys, ops_per_client)
        residency_after = self.db.backpressure.residency_summary(
            self.sim.now)
        return BenchResult(
            workload="fill-sequential", clients=clients,
            ops=clients * ops_per_client, elapsed=elapsed,
            ops_per_sec=recorder.average(elapsed),
            series=recorder.series(),
            stall_seconds=self.db.stats.stall_seconds - stalls_before,
            compactions=self.db.stats.compactions - compactions_before,
            flushes=self.db.stats.flushes - flushes_before,
            slowdown_puts=self.db.stats.slowdown_puts - slowdowns_before,
            backpressure_residency={
                state: round(residency_after[state]
                             - residency_before.get(state, 0.0), 9)
                for state in residency_after})

    def read_sequential(self, clients: int,
                        ops_per_client: int) -> BenchResult:
        """Each client advances an iterator over the first N entries."""
        recorder = ThroughputRecorder(self.series_window)
        started = self.sim.now

        def client(client_id: int):
            scanned = yield from self.db.scan_proc(
                limit=ops_per_client,
                on_entry=lambda __k, __v: recorder.record(self.sim.now),
                stream=f"readseq-{client_id}")
            return scanned

        workers = [self.sim.spawn(client(c), name=f"readseq-{c}")
                   for c in range(clients)]
        counts = self.sim.run_until(self.sim.all_of(workers))
        elapsed = self.sim.now - started
        return BenchResult(
            workload="read-sequential", clients=clients,
            ops=sum(counts), elapsed=elapsed,
            ops_per_sec=recorder.average(elapsed),
            series=recorder.series())

    def read_random(self, clients: int, ops_per_client: int,
                    key_space: Optional[int] = None) -> BenchResult:
        """Uniform point lookups over the populated key space."""
        space = key_space or self.populated_keys
        if space <= 0:
            raise ReproError(
                "DbBench.read_random: key_space must be positive "
                f"(got {space}); fill the database first or pass "
                "key_space explicitly")
        recorder = ThroughputRecorder(self.series_window)
        started = self.sim.now

        def client(client_id: int):
            rng = random.Random(self.seed * 1000 + client_id)
            stream = f"readrand-{client_id}"
            hits = 0
            for __ in range(ops_per_client):
                key = self.key(rng.randrange(space))
                value = yield from self.db.get_proc(key, stream=stream)
                if value is not None:
                    hits += 1
                recorder.record(self.sim.now)
            return hits

        workers = [self.sim.spawn(client(c), name=f"readrand-{c}")
                   for c in range(clients)]
        hits = self.sim.run_until(self.sim.all_of(workers))
        elapsed = self.sim.now - started
        result = BenchResult(
            workload="read-random", clients=clients,
            ops=clients * ops_per_client, elapsed=elapsed,
            ops_per_sec=recorder.average(elapsed),
            series=recorder.series())
        result.hits = sum(hits)   # type: ignore[attr-defined]
        return result

    def quiesce(self) -> None:
        """Let flush, compaction and the device cache settle (between the
        fill and the read workloads, as db_bench runs them back to back on
        a settled database)."""
        trace = self.sim.trace
        if trace is not None:
            # A recorded barrier: replay splits its phases here and
            # quiesces the stack exactly as this capture run did.
            trace.barrier("quiesce")
        self.db.flush()
        self.db.wait_idle()
        media = getattr(self.db.env, "media", None)
        if media is not None:
            media.flush()
        self.db.wait_idle()
