"""The write controller's backpressure state machine.

RocksDB's write controller is three explicit regimes, not an ad-hoc
pair of if-statements:

* **OK** — writes are admitted at full speed;
* **SLOWDOWN** — L0 has reached the slowdown trigger: every put pays an
  extra delay so compaction can catch up (RocksDB's delayed-write
  rate);
* **STOP** — the frozen-memtable queue is full while the active
  memtable also needs rotating, or L0 hit the stop trigger: puts block
  on the write gate until a flush or compaction reopens it.

:class:`BackpressureState` owns the classification and the transition
bookkeeping — residency per state (simulated seconds), a transition
log, and the ``lsm.backpressure.*`` obs instruments (state gauge +
transition instants) when a hub is attached.  It deliberately creates
no simulation events: the DB evaluates it at the points writes are
gated and backgrounds complete, so attaching it never moves the
timeline (the lsm_guard bit-identity pin depends on that).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: States, in escalation order; gauge values are the indices.
OK, SLOWDOWN, STOP = "ok", "slowdown", "stop"
STATES = (OK, SLOWDOWN, STOP)
_GAUGE_VALUE = {OK: 0, SLOWDOWN: 1, STOP: 2}


class BackpressureState:
    """Classifier + transition recorder for the write controller."""

    def __init__(self, config, obs=None):
        self.config = config
        self.obs = obs
        self.state = OK
        self._since = 0.0
        #: Simulated seconds spent in each state.
        self.residency: Dict[str, float] = {name: 0.0 for name in STATES}
        #: Transition log: (sim_time, from_state, to_state).
        self.transitions: List[Tuple[float, str, str]] = []

    # -- classification ------------------------------------------------------

    def classify(self, queue_full: bool, memtable_full: bool,
                 l0_count: int) -> str:
        """The regime the write controller is in right now."""
        if (queue_full and memtable_full) \
                or l0_count >= self.config.l0_stop_trigger:
            return STOP
        if l0_count >= self.config.l0_slowdown_trigger:
            return SLOWDOWN
        return OK

    # -- transition bookkeeping ----------------------------------------------

    def observe(self, state: str, now: float) -> str:
        """Record that the controller is in *state* at *now*.

        Called from the write gate and from background completions —
        the state is *sampled* at decision points, not continuously, so
        residency attributes each interval to the state that was
        current when the interval began.
        """
        if state == self.state:
            return state
        self.residency[self.state] += now - self._since
        self.transitions.append((now, self.state, state))
        previous, self.state, self._since = self.state, state, now
        obs = self.obs
        if obs is not None:
            obs.metrics.gauge("lsm.backpressure.state").set(
                _GAUGE_VALUE[state])
            obs.instant("lsm.backpressure", "transition",
                        frm=previous, to=state)
        return state

    def finish(self, now: float) -> Dict[str, float]:
        """Close the current interval and return the residency table."""
        self.residency[self.state] += now - self._since
        self._since = now
        return dict(self.residency)

    def residency_summary(self, now: Optional[float] = None) -> Dict[str, float]:
        """Residency including the still-open interval (non-mutating)."""
        summary = dict(self.residency)
        if now is not None:
            summary[self.state] += now - self._since
        return summary
