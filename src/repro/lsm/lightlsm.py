"""LightLSM: the application-specific FTL backing RocksDB-lite.

"LightLSM exposes Open-Channel SSDs as a RocksDB environment supporting
SSTable flush and block reads" (§4.2).  The design decisions all come
straight from the paper:

* **One SSTable = a fixed set of whole chunks** — "the rationale for this
  data placement position is that we do not want to consider several
  SSTables per chunk.  As SSTables are the unit of space reclamation in
  RocksDB, our mapping guarantees that garbage collection does not result
  in read and write operations of invalid pages within chunks.  Each
  SSTable deletion only causes chunk erases."
* **Horizontal placement** stripes the SSTable across every PU of the
  device; **vertical placement** confines it to a single group
  (Figure 4).  Placement is the independent variable of Figures 5 and 6.
* **Blocks are the unit of read and write**: ``block_size`` must be a
  multiple of the device write unit (96 KB on the dual-plane TLC drive).
* **A single dispatch thread** submits all writes "so that there are no
  concurrent accesses to the write pointers".
* **Atomic SSTable flush, no MANIFEST**: a table is committed by a final
  FUA *commit unit* written after its data and meta are durable; recovery
  lists tables by scanning chunk OOB and ignores (and reclaims) anything
  without a commit unit.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import OutOfSpaceError, ReproError
from repro.lsm.env import SSTableHandle, SSTableWriter, StorageEnv
from repro.lsm.envbase import WriteDispatcher, pad_to_sectors, split_sectors
from repro.ocssd.address import Ppa
from repro.ocssd.chunk import ChunkState, pad_sector
from repro.ox.media import MediaManager

ChunkKey = Tuple[int, int, int]
PuKey = Tuple[int, int]


class PlacementPolicy(abc.ABC):
    """Chooses the chunks of a new SSTable (Figure 4)."""

    name = "abstract"

    @abc.abstractmethod
    def allocate(self, env: "LightLSMEnv", count: int) -> List[ChunkKey]:
        """Take *count* free chunks; raises OutOfSpaceError when starved."""


class HorizontalPlacement(PlacementPolicy):
    """Stripe each SSTable across all parallel units of the device."""

    name = "horizontal"

    def __init__(self):
        self._cursor = 0

    def allocate(self, env: "LightLSMEnv", count: int) -> List[ChunkKey]:
        pus = env.all_pus
        chosen: List[ChunkKey] = []
        probes = 0
        while len(chosen) < count:
            if probes >= len(pus) and not any(env.free_pool[pu]
                                              for pu in pus):
                raise OutOfSpaceError(
                    f"horizontal placement: {count} chunks requested, "
                    f"pool exhausted after {len(chosen)}")
            pu = pus[self._cursor % len(pus)]
            self._cursor += 1
            probes += 1
            if env.free_pool[pu]:
                chosen.append(env.free_pool[pu].popleft())
                probes = 0
        return chosen


class VerticalPlacement(PlacementPolicy):
    """Confine each SSTable to a single group; groups rotate per table."""

    name = "vertical"

    def __init__(self):
        self._group_cursor = 0

    def allocate(self, env: "LightLSMEnv", count: int) -> List[ChunkKey]:
        groups = env.geometry.num_groups
        for __ in range(groups):
            group = self._group_cursor % groups
            self._group_cursor += 1
            pus = [pu for pu in env.all_pus if pu[0] == group]
            available = sum(len(env.free_pool[pu]) for pu in pus)
            if available < count:
                continue
            chosen: List[ChunkKey] = []
            cursor = 0
            while len(chosen) < count:
                pu = pus[cursor % len(pus)]
                cursor += 1
                if env.free_pool[pu]:
                    chosen.append(env.free_pool[pu].popleft())
            return chosen
        raise OutOfSpaceError(
            f"vertical placement: no group has {count} free chunks")


@dataclass
class _TableLayout:
    """Where one SSTable lives: striped data chunks plus one meta chunk.

    The meta chunk holds the serialized :class:`SSTableMeta` followed by
    the FUA *commit unit*; keeping it separate from the data stripe means
    meta/commit placement never collides with a full data chunk, while
    deletion is still nothing but chunk erases.
    """

    handle: SSTableHandle
    sequence: int
    chunks: List[ChunkKey]        # data chunks, stripe order
    meta_chunk: ChunkKey
    block_sectors: int
    data_blocks: int = 0
    meta_sectors: int = 0
    # Local write pointers, one per data chunk (the paper's "write pointer
    # per chunk", owned by the dispatch thread).
    write_next: List[int] = field(default_factory=list)

    def __post_init__(self):
        if not self.write_next:
            self.write_next = [0] * len(self.chunks)

    @property
    def all_chunks(self) -> List[ChunkKey]:
        return self.chunks + [self.meta_chunk]

    def block_location(self, block_index: int) -> Tuple[ChunkKey, int]:
        chunk_slot = block_index % len(self.chunks)
        stripe = block_index // len(self.chunks)
        return self.chunks[chunk_slot], stripe * self.block_sectors


@dataclass
class LightLSMStats:
    tables_flushed: int = 0
    tables_deleted: int = 0
    blocks_written: int = 0
    blocks_read: int = 0
    chunk_resets: int = 0


class LightLSMEnv(StorageEnv):
    """The Open-Channel SSD environment for RocksDB-lite."""

    def __init__(self, media: MediaManager, placement: PlacementPolicy,
                 chunks_per_sstable: Optional[int] = None,
                 tenant=None, pus: Optional[List[PuKey]] = None,
                 dispatch_workers: int = 1, dispatch_cpu: float = 0.0):
        if tenant is not None:
            media = media.for_tenant(tenant)
        self.media = media
        self.sim = media.sim
        self.geometry = media.geometry
        self.placement = placement
        # *pus* restricts the environment to a subset of parallel units —
        # a tenant's partition from repro.qos.plan_placement; default is
        # the whole device (shared striping).
        self.all_pus: List[PuKey] = (list(pus) if pus is not None
                                     else list(self.geometry.iter_pus()))
        # Figure 4: SSTable size = #groups x #PUs x chunk size, i.e. one
        # chunk per PU (of this env's partition) by default.
        self.chunks_per_sstable = chunks_per_sstable or len(self.all_pus)
        self.free_pool: Dict[PuKey, deque[ChunkKey]] = {
            pu: deque() for pu in self.all_pus}
        for group, pu in self.all_pus:
            for chunk in range(self.geometry.chunks_per_pu):
                self.free_pool[(group, pu)].append((group, pu, chunk))
        self._tables: Dict[int, _TableLayout] = {}
        self.stats = LightLSMStats()
        # The dispatch thread(s) (§4.2): the paper runs exactly one;
        # dispatch_workers > 1 is the counterfactual the bottleneck
        # claim is measured against (bench_fig5 worker sweep).
        self._dispatcher = WriteDispatcher(
            self.sim, media, name="lightlsm",
            workers=dispatch_workers, dispatch_cpu=dispatch_cpu)

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` this env's I/O is tagged
        with (from its media manager); None when untagged."""
        return self.media.tenant

    # -- StorageEnv surface -----------------------------------------------------

    @property
    def min_block_size(self) -> int:
        """Blocks must be a whole number of write units (96 KB on the
        evaluation drive)."""
        return self.geometry.ws_min * self.geometry.sector_size

    @property
    def max_table_bytes(self) -> int:
        # Data capacity of the stripe, less a ~5 % margin for per-entry
        # encoding headers and block-tail padding.
        total = self.chunks_per_sstable * self.geometry.chunk_size
        return int(total * 0.95)

    def create_writer_proc(self, sstable_id: int, level: int,
                           block_size: int):
        self._check_block_size(block_size)
        if sstable_id in self._tables:
            raise ReproError(f"sstable {sstable_id} already exists")
        chunks = self.placement.allocate(self, self.chunks_per_sstable + 1)
        layout = _TableLayout(
            handle=SSTableHandle(sstable_id, level),
            sequence=sstable_id,
            chunks=chunks[:-1],
            meta_chunk=chunks[-1],
            block_sectors=block_size // self.geometry.sector_size)
        self._tables[sstable_id] = layout
        return _LightLSMWriter(self, layout)
        yield  # pragma: no cover - generator marker

    def read_block_proc(self, handle: SSTableHandle, block_index: int,
                        block_size: int):
        layout = self._layout(handle)
        if not 0 <= block_index < layout.data_blocks:
            raise ReproError(
                f"block {block_index} out of range for table "
                f"{handle.sstable_id} ({layout.data_blocks} blocks)")
        key, first_sector = layout.block_location(block_index)
        ppas = [Ppa(*key, first_sector + i)
                for i in range(layout.block_sectors)]
        completion = yield from self.media.read_proc(ppas)
        self.media.require_ok(completion,
                              f"block read {handle.sstable_id}/{block_index}")
        self.stats.blocks_read += 1
        sector_size = self.geometry.sector_size
        return b"".join(pad_sector(payload, sector_size)
                        for payload in completion.data)

    def read_meta_proc(self, handle: SSTableHandle):
        layout = self._layout(handle)
        meta = yield from self._read_meta_of_layout(layout)
        if meta is None:
            raise ReproError(f"table {handle.sstable_id} has no meta")
        return meta

    def delete_table_proc(self, handle: SSTableHandle):
        """Reclaim a table: chunk erases only (the Figure 4 rationale)."""
        layout = self._tables.pop(handle.sstable_id, None)
        if layout is None:
            return
        for key in layout.all_chunks:
            completion = yield from self.media.reset_proc(Ppa(*key, 0))
            self.stats.chunk_resets += 1
            if completion.ok:
                self.free_pool[(key[0], key[1])].append(key)
        self.stats.tables_deleted += 1

    def list_tables_proc(self):
        """Recovery without a MANIFEST: scan chunk OOB, keep committed
        tables, reset the debris of uncommitted ones."""
        data_chunks: Dict[int, Dict[int, ChunkKey]] = {}
        meta_chunks: Dict[int, ChunkKey] = {}
        info_by_table: Dict[int, Tuple[int, int, int]] = {}
        debris: Dict[int, List[ChunkKey]] = {}
        for descriptor in self.media.scan_chunks():
            if descriptor.write_pointer == 0:
                continue
            first = yield from self.media.read_proc([descriptor.ppa])
            if not first.ok or not first.oob:
                continue
            tag = first.oob[0]
            if not isinstance(tag, tuple) or not tag:
                continue
            key = descriptor.ppa.chunk_key()
            if tag[0] == "sst":
                __, sstable_id, level, sequence, chunk_index, n_chunks = tag
                data_chunks.setdefault(sstable_id, {})[chunk_index] = key
                info_by_table[sstable_id] = (level, sequence, n_chunks)
                debris.setdefault(sstable_id, []).append(key)
            elif tag[0] == "sstmeta":
                sstable_id = tag[1]
                meta_chunks[sstable_id] = key
                debris.setdefault(sstable_id, []).append(key)

        self._tables.clear()
        result = []
        for sstable_id in sorted(set(data_chunks) | set(meta_chunks)):
            chunk_map = data_chunks.get(sstable_id, {})
            meta_key = meta_chunks.get(sstable_id)
            layout = None
            meta_blob = None
            if sstable_id in info_by_table and meta_key is not None:
                level, sequence, n_chunks = info_by_table[sstable_id]
                commit = yield from self._read_commit_proc(meta_key,
                                                           sstable_id)
                if commit is not None:
                    meta_sectors, data_blocks = commit
                    # A small table may never have written its later
                    # stripe slots; only the slots below data_blocks (or
                    # the full stripe once it wraps) must be present.
                    required = min(n_chunks, data_blocks)
                    if all(i in chunk_map for i in range(required)):
                        placeholder = (-1, -1, -1)
                        chunks = [chunk_map.get(i, placeholder)
                                  for i in range(n_chunks)]
                        layout = self._recover_layout(
                            sstable_id, level, sequence, chunks, meta_key)
                        layout.data_blocks = data_blocks
                        layout.meta_sectors = meta_sectors
                        meta_blob = yield from self._read_meta_proc(layout)
            if layout is not None and meta_blob is not None:
                self._tables[sstable_id] = layout
                result.append((layout.handle, meta_blob))
            # Torn flushes fall through: the free-pool rebuild below
            # resets and reclaims anything not owned by a live table.

        # Rebuild the free pool from the physical truth.
        for pu in self.all_pus:
            self.free_pool[pu].clear()
        live = {key for layout in self._tables.values()
                for key in layout.all_chunks if key[0] >= 0}
        for descriptor in self.media.scan_chunks():
            key = descriptor.ppa.chunk_key()
            if key in live or descriptor.state is ChunkState.OFFLINE:
                continue
            if descriptor.write_pointer > 0:
                completion = yield from self.media.reset_proc(
                    descriptor.ppa)
                if not completion.ok:
                    continue
            self.free_pool[(key[0], key[1])].append(key)
        return result

    def log_version_edit(self, edit: Tuple[str, int, int]) -> None:
        """No-op: atomic SSTable flush replaces the MANIFEST (§5)."""

    # -- dispatch thread -----------------------------------------------------------

    @property
    def dispatcher(self) -> WriteDispatcher:
        return self._dispatcher

    def submit_write(self, ppas: List[Ppa], data: List[bytes],
                     oob: List[object], fua: bool = False):
        """Queue a write on the dispatch thread; returns the done event."""
        return self._dispatcher.submit(ppas, data, oob, fua)

    # -- internals --------------------------------------------------------------------

    def _check_block_size(self, block_size: int) -> None:
        if block_size % self.min_block_size:
            raise ReproError(
                f"block_size {block_size} is not a multiple of the device "
                f"write unit ({self.min_block_size} bytes) — §4.2: 'the "
                "size of a RocksDB block must be a multiple of 96KB'")

    def _layout(self, handle: SSTableHandle) -> _TableLayout:
        try:
            return self._tables[handle.sstable_id]
        except KeyError:
            raise ReproError(
                f"unknown sstable {handle.sstable_id}") from None

    def _read_commit_proc(self, meta_key: ChunkKey, sstable_id: int):
        """Read and validate the commit unit at the tail of the meta
        chunk; returns ``(meta_sectors, data_blocks)`` or None."""
        ws_min = self.geometry.ws_min
        info = self.media.chunk_info(Ppa(*meta_key, 0))
        if info.write_pointer < 2 * ws_min:
            return None
        commit_ppa = Ppa(*meta_key, info.write_pointer - ws_min)
        completion = yield from self.media.read_proc([commit_ppa])
        if not completion.ok or not completion.oob:
            return None
        tag = completion.oob[0]
        if not isinstance(tag, tuple) or not tag or tag[0] != "sstcommit":
            return None
        (__, tag_id, __level, __seq, meta_sectors, data_blocks,
         __n_chunks) = tag
        if tag_id != sstable_id:
            return None
        return meta_sectors, data_blocks

    def _read_meta_proc(self, layout: _TableLayout):
        """Read the meta bytes from the meta chunk."""
        key = layout.meta_chunk
        ppas = [Ppa(*key, i) for i in range(layout.meta_sectors)]
        completion = yield from self.media.read_proc(ppas)
        if not completion.ok:
            return None
        sector_size = self.geometry.sector_size
        return b"".join(pad_sector(payload, sector_size)
                        for payload in completion.data)

    def _read_meta_of_layout(self, layout: _TableLayout):
        """Commit validation + meta read for an in-memory layout."""
        commit = yield from self._read_commit_proc(
            layout.meta_chunk, layout.handle.sstable_id)
        if commit is None:
            return None
        layout.meta_sectors, layout.data_blocks = commit
        blob = yield from self._read_meta_proc(layout)
        return blob

    def _recover_layout(self, sstable_id: int, level: int, sequence: int,
                        chunks: List[ChunkKey],
                        meta_chunk: ChunkKey) -> _TableLayout:
        layout = _TableLayout(
            handle=SSTableHandle(sstable_id, level), sequence=sequence,
            chunks=chunks, meta_chunk=meta_chunk, block_sectors=0)
        # block_sectors comes from the meta (block_size): the DB calls
        # set_block_sectors after parsing.  Write pointers come from the
        # device (recovered tables are immutable anyway).
        for index, key in enumerate(chunks):
            if key[0] < 0:
                continue   # placeholder for a never-written stripe slot
            info = self.media.chunk_info(Ppa(*key, 0))
            layout.write_next[index] = info.write_pointer
        return layout

    def set_block_sectors(self, handle: SSTableHandle,
                          block_size: int) -> None:
        """Recovery hook: the DB tells the env each table's block size
        after parsing its meta."""
        self._layout(handle).block_sectors = \
            block_size // self.geometry.sector_size


class _LightLSMWriter(SSTableWriter):
    """Streams one SSTable's blocks onto its chunks."""

    def __init__(self, env: LightLSMEnv, layout: _TableLayout):
        self.env = env
        self.layout = layout
        self._next_block = 0
        self._pending = []   # done events of in-flight block writes

    def append_block_proc(self, block: bytes):
        layout = self.layout
        geometry = self.env.geometry
        sector_size = geometry.sector_size
        expected = layout.block_sectors * sector_size
        if len(block) != expected:
            raise ReproError(
                f"block of {len(block)} bytes; expected {expected}")
        key, first_sector = layout.block_location(self._next_block)
        chunk_slot = self._next_block % len(layout.chunks)
        if first_sector != layout.write_next[chunk_slot]:
            raise ReproError(
                f"write pointer mismatch on chunk {key}: "
                f"{first_sector} != {layout.write_next[chunk_slot]}")
        if first_sector + layout.block_sectors > geometry.sectors_per_chunk:
            raise OutOfSpaceError(
                f"table {layout.handle.sstable_id} overflows its chunks")
        ppas = [Ppa(*key, first_sector + i)
                for i in range(layout.block_sectors)]
        data = split_sectors(block, sector_size)
        oob = [("sst", layout.handle.sstable_id, layout.handle.level,
                layout.sequence, chunk_slot, len(layout.chunks))
               for __ in range(layout.block_sectors)]
        done = self.env.submit_write(ppas, data, oob)
        self._pending.append(done)
        layout.write_next[chunk_slot] = first_sector + layout.block_sectors
        self._next_block += 1
        self.env.stats.blocks_written += 1
        # Wait for admission of this block before returning (back-pressure
        # at controller-cache speed, which is the write-back behaviour the
        # evaluation drive exhibits).
        completion = yield done
        if not completion.ok:
            raise ReproError(
                f"block write failed: {completion.error or completion.status}")

    def finish_proc(self, meta_blob: bytes):
        env = self.env
        geometry = env.geometry
        layout = self.layout
        sector_size = geometry.sector_size
        ws_min = geometry.ws_min
        layout.data_blocks = self._next_block

        # Meta: written at the start of the dedicated meta chunk, padded
        # to whole write units.
        meta_sectors, padded = pad_to_sectors(meta_blob, sector_size,
                                              unit_sectors=ws_min)
        if meta_sectors + ws_min > geometry.sectors_per_chunk:
            raise OutOfSpaceError(
                f"meta of table {layout.handle.sstable_id} "
                f"({len(meta_blob)} bytes) exceeds the meta chunk")
        layout.meta_sectors = meta_sectors
        key = layout.meta_chunk
        ppas = [Ppa(*key, i) for i in range(meta_sectors)]
        data = split_sectors(padded, sector_size)
        oob = [("sstmeta", layout.handle.sstable_id, i)
               for i in range(meta_sectors)]
        done = env.submit_write(ppas, data, oob)
        completion = yield done
        if not completion.ok:
            raise ReproError(f"meta write failed: {completion.error}")

        # Durability barrier, then the FUA commit unit right after the
        # meta on the same chunk.  Atomic flush: the table exists iff this
        # unit does.
        yield from env.media.flush_proc()
        ppas = [Ppa(*key, meta_sectors + i) for i in range(ws_min)]
        data = [b""] * ws_min
        oob = [("sstcommit", layout.handle.sstable_id,
                layout.handle.level, layout.sequence, meta_sectors,
                layout.data_blocks, len(layout.chunks))
               for __ in range(ws_min)]
        done = env.submit_write(ppas, data, oob, fua=True)
        completion = yield done
        if not completion.ok:
            raise ReproError(f"commit write failed: {completion.error}")
        env.stats.tables_flushed += 1
        return layout.handle

    def abort_proc(self):
        """Discard the partial table: reset its chunks, return them."""
        env = self.env
        layout = env._tables.pop(self.layout.handle.sstable_id, None)
        if layout is None:
            return
        yield from env.media.flush_proc()
        for key in layout.all_chunks:
            info = env.media.chunk_info(Ppa(*key, 0))
            if info.write_pointer > 0:
                completion = yield from env.media.reset_proc(Ppa(*key, 0))
                if not completion.ok:
                    continue
            env.free_pool[(key[0], key[1])].append(key)
