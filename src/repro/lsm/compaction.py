"""Compaction: cursors, k-way merge, and the level-picking policy.

Leveled compaction in the RocksDB style: L0 holds whole memtable flushes
(overlapping key ranges, newest first); deeper levels are sorted runs of
non-overlapping tables.  When L0 reaches its trigger, all of L0 merges
with the overlapping part of L1; when a deeper level exceeds its size
budget, one table merges down.  In LightLSM "garbage collection is a
side-effect of compaction" (§4.3): deleting the input SSTables is pure
chunk erasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.lsm.memtable import TOMBSTONE, _Tombstone
from repro.lsm.sstable import SSTableMeta, iter_block


@dataclass
class TableRef:
    """An SSTable as the DB tracks it: handle + parsed meta + refcount."""

    handle: object            # SSTableHandle
    meta: SSTableMeta
    refs: int = 0
    obsolete: bool = False


class TableCursor:
    """Streams one SSTable's entries in key order, with one-block
    readahead so sequential scans overlap I/O with consumption."""

    def __init__(self, env, table: TableRef, block_size: int, sim,
                 readahead: bool = True):
        self.env = env
        self.table = table
        self.block_size = block_size
        self.sim = sim
        self.readahead = readahead
        self._block_index = 0
        self._entries: Optional[Iterator] = None
        self._prefetch = None     # Process reading the next block
        self.current: Optional[Tuple[bytes, object]] = None

    def open_proc(self):
        yield from self._load_block_proc()
        yield from self.advance_proc()

    def advance_proc(self):
        """Move to the next entry (None at end-of-table)."""
        while True:
            if self._entries is not None:
                try:
                    self.current = next(self._entries)
                    return self.current
                except StopIteration:
                    self._entries = None
            if self._block_index >= self.table.meta.num_blocks:
                self.current = None
                return None
            yield from self._load_block_proc()

    def _load_block_proc(self):
        if self._block_index >= self.table.meta.num_blocks:
            return
        if self._prefetch is not None:
            block = yield self._prefetch
            self._prefetch = None
        else:
            block = yield from self.env.read_block_proc(
                self.table.handle, self._block_index, self.block_size)
        self._entries = iter_block(block)
        self._block_index += 1
        if self.readahead and self._block_index < self.table.meta.num_blocks:
            self._prefetch = self.sim.spawn(
                self.env.read_block_proc(self.table.handle,
                                         self._block_index,
                                         self.block_size),
                name="readahead")


class MemCursor:
    """Cursor over an in-memory sorted item list (memtable snapshots)."""

    def __init__(self, items: List[Tuple[bytes, object]]):
        self._items = items
        self._index = 0
        self.current: Optional[Tuple[bytes, object]] = None

    def open_proc(self):
        return self.advance_proc()

    def advance_proc(self):
        if self._index < len(self._items):
            self.current = self._items[self._index]
            self._index += 1
        else:
            self.current = None
        return self.current
        yield  # pragma: no cover - generator marker


def merge_into_proc(cursors: List, sink, drop_tombstones: bool):
    """Process generator: k-way merge of *cursors* (newest first) into
    ``sink(key, value)``, which may itself be a process generator factory
    (``yield from sink(key, value)``).

    Returns the number of entries emitted.
    """
    for cursor in cursors:
        yield from cursor.open_proc()
    emitted = 0
    while True:
        best_key = None
        for cursor in cursors:
            if cursor.current is not None:
                key = cursor.current[0]
                if best_key is None or key < best_key:
                    best_key = key
        if best_key is None:
            return emitted
        chosen_value = None
        seen = False
        for cursor in cursors:
            if cursor.current is not None and cursor.current[0] == best_key:
                if not seen:
                    chosen_value = cursor.current[1]
                    seen = True
                yield from cursor.advance_proc()
        if drop_tombstones and isinstance(chosen_value, _Tombstone):
            continue
        yield from sink(best_key, chosen_value)
        emitted += 1


@dataclass
class CompactionPick:
    """What to compact: inputs (newest first) and the target level."""

    inputs: List[TableRef]
    target_level: int
    reason: str


def level_max_tables(level: int, multiplier: int) -> int:
    """Size budget of a level, in tables: L1 holds `multiplier`, L2
    `multiplier**2`, ..."""
    return multiplier ** level


def pick_compaction(levels: List[List[TableRef]], l0_trigger: int,
                    multiplier: int) -> Optional[CompactionPick]:
    """RocksDB-style priority: L0 first, then the most oversized level."""
    if len(levels[0]) >= l0_trigger:
        inputs = list(levels[0])                      # newest first already
        first = min(t.meta.first_key for t in inputs if t.meta.first_keys)
        last = max(t.meta.last_key for t in inputs if t.meta.first_keys)
        if len(levels) > 1:
            overlapping = [t for t in levels[1]
                           if t.meta.overlaps(first, last)]
        else:
            overlapping = []
        return CompactionPick(inputs=inputs + overlapping, target_level=1,
                              reason="l0")
    for level in range(1, len(levels) - 1):
        if len(levels[level]) > level_max_tables(level, multiplier):
            victim = levels[level][0]                 # oldest range first
            overlapping = [t for t in levels[level + 1]
                           if t.meta.overlaps(victim.meta.first_key,
                                              victim.meta.last_key)]
            return CompactionPick(inputs=[victim] + overlapping,
                                  target_level=level + 1,
                                  reason=f"l{level}-size")
    return None
