"""Compaction: cursors, k-way merge, and the level-picking policy.

Leveled compaction in the RocksDB style: L0 holds whole memtable flushes
(overlapping key ranges, newest first); deeper levels are sorted runs of
non-overlapping tables.  When L0 reaches its trigger, all of L0 merges
with the overlapping part of L1; when a deeper level exceeds its size
budget, one table merges down.  In LightLSM "garbage collection is a
side-effect of compaction" (§4.3): deleting the input SSTables is pure
chunk erasing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.lsm.memtable import TOMBSTONE, _Tombstone
from repro.lsm.sstable import SSTableMeta, iter_block


@dataclass
class TableRef:
    """An SSTable as the DB tracks it: handle + parsed meta + refcount."""

    handle: object            # SSTableHandle
    meta: SSTableMeta
    refs: int = 0
    obsolete: bool = False
    #: Freeze sequence of the source memtable (L0 only): L0 ranks by
    #: (l0_seq, meta.sequence) descending so concurrent flushes that
    #: install out of order still read newest-first.
    l0_seq: int = 0


class TableCursor:
    """Streams one SSTable's entries in key order, with one-block
    readahead so sequential scans overlap I/O with consumption."""

    def __init__(self, env, table: TableRef, block_size: int, sim,
                 readahead: bool = True):
        self.env = env
        self.table = table
        self.block_size = block_size
        self.sim = sim
        self.readahead = readahead
        self._block_index = 0
        self._entries: Optional[Iterator] = None
        self._prefetch = None     # Process reading the next block
        self.current: Optional[Tuple[bytes, object]] = None

    def open_proc(self):
        yield from self._load_block_proc()
        yield from self.advance_proc()

    def advance_proc(self):
        """Move to the next entry (None at end-of-table)."""
        while True:
            if self._entries is not None:
                try:
                    self.current = next(self._entries)
                    return self.current
                except StopIteration:
                    self._entries = None
            if self._block_index >= self.table.meta.num_blocks:
                self.current = None
                return None
            yield from self._load_block_proc()

    def _load_block_proc(self):
        if self._block_index >= self.table.meta.num_blocks:
            return
        if self._prefetch is not None:
            block = yield self._prefetch
            self._prefetch = None
        else:
            block = yield from self.env.read_block_proc(
                self.table.handle, self._block_index, self.block_size)
        self._entries = iter_block(block)
        self._block_index += 1
        if self.readahead and self._block_index < self.table.meta.num_blocks:
            self._prefetch = self.sim.spawn(
                self.env.read_block_proc(self.table.handle,
                                         self._block_index,
                                         self.block_size),
                name="readahead")


class MemCursor:
    """Cursor over an in-memory sorted item list (memtable snapshots)."""

    def __init__(self, items: List[Tuple[bytes, object]]):
        self._items = items
        self._index = 0
        self.current: Optional[Tuple[bytes, object]] = None

    def open_proc(self):
        return self.advance_proc()

    def advance_proc(self):
        if self._index < len(self._items):
            self.current = self._items[self._index]
            self._index += 1
        else:
            self.current = None
        return self.current
        yield  # pragma: no cover - generator marker


def merge_into_proc(cursors: List, sink, drop_tombstones: bool):
    """Process generator: k-way merge of *cursors* (newest first) into
    ``sink(key, value)``, which may itself be a process generator factory
    (``yield from sink(key, value)``).

    A heap of ``(key, cursor_index)`` keeps each emission O(log k)
    instead of the old O(k) scan over every cursor.  Ties pop in cursor-
    index order, so the newest cursor (lowest index) still supplies the
    value and duplicate holders advance in exactly the order the linear
    scan advanced them — :func:`merge_into_linear_proc` is kept as the
    executable spec and the identity test pins the two together.

    Returns the number of entries emitted.
    """
    for cursor in cursors:
        yield from cursor.open_proc()
    heap: List[Tuple[bytes, int]] = [
        (cursor.current[0], index)
        for index, cursor in enumerate(cursors)
        if cursor.current is not None]
    heapq.heapify(heap)
    emitted = 0
    while heap:
        best_key, index = heapq.heappop(heap)
        holders = [index]
        while heap and heap[0][0] == best_key:
            holders.append(heapq.heappop(heap)[1])
        # Equal keys pop by ascending cursor index, so holders[0] is the
        # newest cursor; every holder advances (in that same order)
        # before the emission, exactly as the linear scan did.
        chosen_value = cursors[holders[0]].current[1]
        for holder in holders:
            yield from cursors[holder].advance_proc()
            if cursors[holder].current is not None:
                heapq.heappush(heap,
                               (cursors[holder].current[0], holder))
        if drop_tombstones and isinstance(chosen_value, _Tombstone):
            continue
        yield from sink(best_key, chosen_value)
        emitted += 1
    return emitted


def merge_into_linear_proc(cursors: List, sink, drop_tombstones: bool):
    """The original O(k)-per-entry merge, kept as the executable spec
    for :func:`merge_into_proc`'s bit-identity test."""
    for cursor in cursors:
        yield from cursor.open_proc()
    emitted = 0
    while True:
        best_key = None
        for cursor in cursors:
            if cursor.current is not None:
                key = cursor.current[0]
                if best_key is None or key < best_key:
                    best_key = key
        if best_key is None:
            return emitted
        chosen_value = None
        seen = False
        for cursor in cursors:
            if cursor.current is not None and cursor.current[0] == best_key:
                if not seen:
                    chosen_value = cursor.current[1]
                    seen = True
                yield from cursor.advance_proc()
        if drop_tombstones and isinstance(chosen_value, _Tombstone):
            continue
        yield from sink(best_key, chosen_value)
        emitted += 1


@dataclass
class CompactionPick:
    """What to compact: inputs (newest first) and the target level."""

    inputs: List[TableRef]
    target_level: int
    reason: str

    @property
    def source_level(self) -> int:
        return self.target_level - 1

    def key_range(self) -> Optional[Tuple[bytes, bytes]]:
        """The key span this compaction reads and writes (None when every
        input is empty of keys)."""
        firsts = [t.meta.first_key for t in self.inputs
                  if t.meta.first_keys]
        lasts = [t.meta.last_key for t in self.inputs
                 if t.meta.first_keys]
        if not firsts:
            return None
        return min(firsts), max(lasts)


@dataclass
class CompactionLock:
    """One in-flight compaction's claim: its input tables plus the key
    range it reads at the source level and writes at the target level.

    ``tables`` keeps the inputs alive for the lock's lifetime: the busy
    set is keyed on ``id()``, which is only stable while the object is
    — a collected input's id could be reused and alias a fresh table.
    """

    levels: Tuple[int, int]            # (source, target)
    first_key: Optional[bytes]
    last_key: Optional[bytes]
    table_ids: frozenset
    tables: Tuple[TableRef, ...] = ()

    def covers_range(self, level: int, first: Optional[bytes],
                     last: Optional[bytes]) -> bool:
        if level not in self.levels:
            return False
        if self.first_key is None or first is None:
            # An empty-keyed pick still owns its level pair: without a
            # comparable range, be conservative and conflict.
            return True
        return self.first_key <= last and first <= self.last_key


class CompactionExecutor:
    """Admission control for up to *workers* concurrent compactions.

    A picked compaction pins its input tables and locks its key range on
    both the source and target level; :func:`pick_compaction` consults
    the executor (its ``busy`` parameter) so concurrent picks never
    share inputs and never write overlapping ranges into the same
    sorted-run level.  :meth:`acquire` re-asserts the invariant in the
    engine: two in-flight compactions holding overlapping inputs is a
    bug, not a scheduling outcome.
    """

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ReproError(
                f"CompactionExecutor: workers must be >= 1, got {workers}")
        self.workers = workers
        self._locks: List[CompactionLock] = []
        self._busy_tables: set = set()
        #: High-water mark of concurrent compactions (introspection).
        self.max_in_flight = 0

    @property
    def in_flight(self) -> int:
        return len(self._locks)

    @property
    def saturated(self) -> bool:
        return len(self._locks) >= self.workers

    def conflicts(self, pick: CompactionPick) -> bool:
        """Would *pick* overlap an in-flight compaction?"""
        if any(id(t) in self._busy_tables for t in pick.inputs):
            return True
        key_range = pick.key_range()
        first, last = key_range if key_range else (None, None)
        for lock in self._locks:
            for level in (pick.source_level, pick.target_level):
                if lock.covers_range(level, first, last):
                    return True
        return False

    def acquire(self, pick: CompactionPick) -> CompactionLock:
        if self.saturated:
            raise ReproError(
                f"CompactionExecutor: acquire beyond {self.workers} "
                f"workers")
        if self.conflicts(pick):
            raise ReproError(
                "CompactionExecutor: concurrent compactions would share "
                f"inputs or target ranges (reason={pick.reason!r}, "
                f"target={pick.target_level})")
        key_range = pick.key_range()
        first, last = key_range if key_range else (None, None)
        lock = CompactionLock(
            levels=(pick.source_level, pick.target_level),
            first_key=first, last_key=last,
            table_ids=frozenset(id(t) for t in pick.inputs),
            tables=tuple(pick.inputs))
        self._locks.append(lock)
        self._busy_tables |= lock.table_ids
        self.max_in_flight = max(self.max_in_flight, len(self._locks))
        return lock

    def release(self, lock: CompactionLock) -> None:
        self._locks.remove(lock)
        self._busy_tables -= lock.table_ids


def level_max_tables(level: int, multiplier: int) -> int:
    """Size budget of a level, in tables: L1 holds `multiplier`, L2
    `multiplier**2`, ..."""
    return multiplier ** level


def pick_compaction(levels: List[List[TableRef]], l0_trigger: int,
                    multiplier: int,
                    busy: Optional[CompactionExecutor] = None,
                    ) -> Optional[CompactionPick]:
    """RocksDB-style priority: L0 first, then the most oversized level.

    With *busy* (the in-flight lock table), candidates that would share
    inputs or key ranges with a running compaction are skipped, so up to
    M admissible compactions can run concurrently: an L0->L1 merge next
    to an L2->L3 merge, or two same-level merges over disjoint ranges.
    The bottom level is never a source — its tables have nowhere to go,
    so the level can exceed its budget silently (the engine surfaces
    this through the ``lsm.compaction.bottom_level_oversize`` counter).
    """
    if len(levels[0]) >= l0_trigger:
        inputs = list(levels[0])                      # newest first already
        first = min(t.meta.first_key for t in inputs if t.meta.first_keys)
        last = max(t.meta.last_key for t in inputs if t.meta.first_keys)
        if len(levels) > 1:
            overlapping = [t for t in levels[1]
                           if t.meta.overlaps(first, last)]
        else:
            overlapping = []
        pick = CompactionPick(inputs=inputs + overlapping, target_level=1,
                              reason="l0")
        if busy is None or not busy.conflicts(pick):
            return pick
    for level in range(1, len(levels) - 1):
        if len(levels[level]) > level_max_tables(level, multiplier):
            for victim in levels[level]:              # oldest range first
                overlapping = [t for t in levels[level + 1]
                               if t.meta.overlaps(victim.meta.first_key,
                                                  victim.meta.last_key)]
                pick = CompactionPick(inputs=[victim] + overlapping,
                                      target_level=level + 1,
                                      reason=f"l{level}-size")
                if busy is None or not busy.conflicts(pick):
                    return pick
    return None
