"""OX-ZNS: the ZNS application-specific FTL.

Zones are fixed-size append regions; each zone is backed by a set of
whole chunks striped across the parallel units of one group (zones rotate
groups, so concurrently-open zones exercise disjoint channels — the
device-side placement freedom ZNS gives the FTL).  The host API is the
NVMe ZNS shape:

* ``report_zones()`` — zone descriptors;
* ``append(zone_id, data)`` — sequential write at the zone's pointer,
  returns the LBA the data landed on;
* ``read(lba, sectors)``;
* ``reset_zone(zone_id)`` — chunk erases;
* ``finish_zone(zone_id)`` — pad and close.

The FTL owns wear: resets route through the chunks, and a zone whose
chunk goes offline is retired with its notification surfaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ZoneError
from repro.ocssd.address import Ppa
from repro.ocssd.chunk import pad_sector
from repro.ox.media import MediaManager
from repro.zns.zone import Zone, ZoneState

ChunkKey = Tuple[int, int, int]


@dataclass(frozen=True)
class ZnsConfig:
    """Zone sizing: chunks per zone (striped within one group)."""

    chunks_per_zone: int = 4
    max_open_zones: int = 8


@dataclass
class ZnsStats:
    appends: int = 0
    sectors_appended: int = 0
    sectors_read: int = 0
    zone_resets: int = 0
    zones_finished: int = 0
    zones_retired: int = 0


class OXZns:
    """A ZNS namespace over one Open-Channel SSD."""

    def __init__(self, media: MediaManager,
                 config: Optional[ZnsConfig] = None,
                 tenant=None):
        if tenant is not None:
            media = media.for_tenant(tenant)
        self.media = media
        self.sim = media.sim
        self.geometry = media.geometry
        self.config = config or ZnsConfig()
        per_zone = self.config.chunks_per_zone
        if per_zone < 1 or per_zone > self.geometry.pus_per_group \
                * self.geometry.chunks_per_pu:
            raise ZoneError(f"chunks_per_zone={per_zone} does not fit a group")
        self.zone_capacity = per_zone * self.geometry.sectors_per_chunk
        self.zones: List[Zone] = []
        self._open_count = 0
        self.stats = ZnsStats()
        # Observability (repro.obs): inherited from the simulator; None
        # unless a hub was attached before this FTL was built.
        self.obs = media.sim.obs
        self._build_zones()

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` this namespace's I/O is
        tagged with (from its media manager); None when untagged."""
        return self.media.tenant

    def _build_zones(self) -> None:
        """Carve the whole device into zones, group by group; each zone's
        chunks stripe across the PUs of its group."""
        per_zone = self.config.chunks_per_zone
        zone_id = 0
        for group in range(self.geometry.num_groups):
            pool = [(group, pu, chunk)
                    for chunk in range(self.geometry.chunks_per_pu)
                    for pu in range(self.geometry.pus_per_group)]
            for start in range(0, len(pool) - per_zone + 1, per_zone):
                chunks = pool[start:start + per_zone]
                self.zones.append(Zone(zone_id=zone_id,
                                       capacity=self.zone_capacity,
                                       chunks=chunks))
                zone_id += 1

    # -- admin ---------------------------------------------------------------------

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    def report_zones(self) -> List[Zone]:
        return list(self.zones)

    def zone(self, zone_id: int) -> Zone:
        if not 0 <= zone_id < len(self.zones):
            raise ZoneError(f"zone {zone_id} out of range")
        return self.zones[zone_id]

    # -- data path -----------------------------------------------------------------

    def append(self, zone_id: int, data: bytes) -> int:
        return self.sim.run_until(self.sim.spawn(
            self.append_proc(zone_id, data)))

    def append_proc(self, zone_id: int, data: bytes):
        """Zone append; returns the starting LBA of the written data.

        Data must be a whole number of sectors; the FTL pads internally to
        the device write unit, so the host never sees ``ws_min`` (that is
        the complexity ZNS hides, §2.3).
        """
        zone = self.zone(zone_id)
        sector_size = self.geometry.sector_size
        if not data or len(data) % sector_size:
            raise ZoneError(
                f"append of {len(data)} bytes is not sector-aligned")
        sectors = len(data) // sector_size
        zone.check_append(sectors)
        if zone.state is ZoneState.EMPTY:
            if self._open_count >= self.config.max_open_zones:
                raise ZoneError(
                    f"too many open zones (max "
                    f"{self.config.max_open_zones})")
            self._open_count += 1
        start_lba = zone.start_lba + zone.write_pointer

        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("zns", "append")
            append_started = self.sim.now
        ws_min = self.geometry.ws_min
        offset = zone.write_pointer
        remaining = sectors
        data_offset = 0
        procs = []
        while remaining > 0:
            chunk_index, in_chunk = self._locate(zone, offset)
            room = self.geometry.sectors_per_chunk - in_chunk
            count = min(remaining, room)
            # Pad the tail of the append to a whole write unit; padding
            # sectors advance the physical pointer but not the zone's.
            padded = count + ((-count) % ws_min) \
                if count == remaining else count
            padded = min(padded, room)
            key = zone.chunks[chunk_index]
            ppas = [Ppa(*key, in_chunk + i) for i in range(padded)]
            payloads = []
            for i in range(padded):
                if i < count:
                    begin = (data_offset + i) * sector_size
                    payloads.append(data[begin:begin + sector_size])
                else:
                    payloads.append(b"")
            oob = [("zns", zone_id, offset + i if i < count else -1)
                   for i in range(padded)]
            procs.append(self.sim.spawn(
                self.media.write_proc(ppas, payloads, oob=oob,
                                      parent=span)))
            offset += padded
            data_offset += count
            remaining -= count
        completions = yield self.sim.all_of(procs)
        for completion in completions:
            self.media.require_ok(completion, f"zone {zone_id} append")
        # Physical pointer may have advanced past the logical one due to
        # padding: account the padding into the zone as consumed capacity.
        zone.advance(offset - zone.write_pointer)
        if zone.state is ZoneState.FULL:
            self._open_count -= 1
        self.stats.appends += 1
        self.stats.sectors_appended += sectors
        if obs is not None:
            obs.end(span, zone=zone_id, sectors=sectors)
            obs.metrics.counter("zns.append.sectors").increment(sectors)
            obs.metrics.histogram("zns.append.latency_s").record(
                self.sim.now - append_started)
        return start_lba

    def read(self, lba: int, sectors: int = 1) -> bytes:
        return self.sim.run_until(self.sim.spawn(
            self.read_proc(lba, sectors)))

    def read_proc(self, lba: int, sectors: int = 1):
        zone_id, offset = divmod(lba, self.zone_capacity)
        zone = self.zone(zone_id)
        zone.check_read(offset, sectors)
        sector_size = self.geometry.sector_size
        ppas = []
        for i in range(sectors):
            chunk_index, in_chunk = self._locate(zone, offset + i)
            ppas.append(Ppa(*zone.chunks[chunk_index], in_chunk))
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("zns", "read")
            read_started = self.sim.now
        completion = yield from self.media.read_proc(ppas, parent=span)
        self.media.require_ok(completion, f"zone {zone_id} read")
        self.stats.sectors_read += sectors
        if obs is not None:
            obs.end(span, zone=zone_id, sectors=sectors)
            obs.metrics.histogram("zns.read.latency_s").record(
                self.sim.now - read_started)
        return b"".join(pad_sector(payload, sector_size)
                        for payload in completion.data)

    def reset_zone(self, zone_id: int) -> None:
        self.sim.run_until(self.sim.spawn(self.reset_zone_proc(zone_id)))

    def reset_zone_proc(self, zone_id: int):
        zone = self.zone(zone_id)
        was_open = zone.state is ZoneState.OPEN
        zone.reset()   # validates state first
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.begin("zns", "reset")
        yield from self.media.flush_proc()
        failed = False
        for key in zone.chunks:
            info = self.media.chunk_info(Ppa(*key, 0))
            if info.write_pointer == 0 and info.state.value == "free":
                continue
            completion = yield from self.media.reset_proc(Ppa(*key, 0),
                                                          parent=span)
            if not completion.ok:
                failed = True
        if was_open:
            self._open_count -= 1
        if obs is not None:
            obs.end(span, zone=zone_id, failed=failed)
            obs.metrics.counter("zns.zone_resets").increment()
        if failed:
            zone.retire()
            self.stats.zones_retired += 1
            if obs is not None:
                obs.error("zns", "zone-retired", f"zone {zone_id}")
            raise ZoneError(f"zone {zone_id} retired: chunk reset failed")
        self.stats.zone_resets += 1

    def finish_zone(self, zone_id: int) -> None:
        self.sim.run_until(self.sim.spawn(self.finish_zone_proc(zone_id)))

    def finish_zone_proc(self, zone_id: int):
        """Close a zone early: its unwritten tail becomes unusable until
        the next reset (NVMe ZNS 'finish').  Appended data still in the
        device cache is flushed first, so a finished zone is durable."""
        zone = self.zone(zone_id)
        if zone.state is ZoneState.FULL:
            return
        if zone.state is ZoneState.OFFLINE:
            raise ZoneError(f"finish of offline zone {zone_id}")
        was_open = zone.state is ZoneState.OPEN
        yield from self.media.flush_proc()
        zone.finish()
        if was_open:
            self._open_count -= 1
        self.stats.zones_finished += 1

    # -- internals ------------------------------------------------------------------

    def _locate(self, zone: Zone, offset: int) -> Tuple[int, int]:
        """Zone offset -> (chunk index, sector within chunk).

        Zones fill chunk by chunk (each chunk is written sequentially, as
        the device demands); chunks of a zone sit on distinct PUs, so
        multiple open zones and large appends still parallelize.
        """
        return divmod(offset, self.geometry.sectors_per_chunk)
