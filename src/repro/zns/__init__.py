"""OX-ZNS: a Zoned Namespace FTL on top of the Open-Channel SSD.

§2.3 of the paper: "ZNS can be implemented as an application-specific
Flash Translation Layer on top of Open-Channel SSDs ... It should be
straightforward to define a LightNVM target that exposes the ZNS
interface through a host-based FTL on top of Open-Channel SSDs, but this
has not — to the best of our knowledge — been released or even
announced."  Figure 1 places the resulting artifact as *OX-ZNS*.  This
package is that target: zones map to chunk sets, the host sees the ZNS
zone state machine (EMPTY/OPEN/FULL + reset), and the FTL handles
placement, striping and wear.
"""

from repro.zns.zone import Zone, ZoneState
from repro.zns.ftl import OXZns, ZnsConfig

__all__ = ["Zone", "ZoneState", "OXZns", "ZnsConfig"]
