"""The ZNS zone state machine.

"ZNS exposes a disk as a collection of zones that must be written
sequentially and reset before rewriting" (§2.3).  The state machine
follows the NVMe ZNS TP shape, reduced to the states this FTL needs:
EMPTY -> (IMPLICIT) OPEN -> FULL, plus OFFLINE for zones whose backing
chunks died.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ZoneError

ChunkKey = Tuple[int, int, int]


class ZoneState(enum.Enum):
    EMPTY = "empty"
    OPEN = "open"
    FULL = "full"
    OFFLINE = "offline"


@dataclass
class Zone:
    """One zone: a logical append region backed by whole chunks."""

    zone_id: int
    capacity: int                 # writable sectors
    chunks: List[ChunkKey] = field(default_factory=list)
    state: ZoneState = ZoneState.EMPTY
    write_pointer: int = 0

    @property
    def start_lba(self) -> int:
        """Zones are laid out back to back in the LBA space."""
        return self.zone_id * self.capacity

    @property
    def remaining(self) -> int:
        return self.capacity - self.write_pointer

    def check_append(self, sectors: int) -> None:
        if self.state is ZoneState.OFFLINE:
            raise ZoneError(f"append to offline zone {self.zone_id}")
        if self.state is ZoneState.FULL:
            raise ZoneError(f"append to full zone {self.zone_id}")
        if sectors <= 0:
            raise ZoneError(f"append of {sectors} sectors")
        if sectors > self.remaining:
            raise ZoneError(
                f"append of {sectors} sectors exceeds the remaining "
                f"{self.remaining} of zone {self.zone_id}")

    def advance(self, sectors: int) -> None:
        self.write_pointer += sectors
        self.state = (ZoneState.FULL if self.write_pointer == self.capacity
                      else ZoneState.OPEN)

    def check_read(self, offset: int, sectors: int) -> None:
        if self.state is ZoneState.OFFLINE:
            raise ZoneError(f"read from offline zone {self.zone_id}")
        if offset < 0 or sectors <= 0 \
                or offset + sectors > self.write_pointer:
            raise ZoneError(
                f"read [{offset}, {offset + sectors}) beyond zone "
                f"{self.zone_id} write pointer {self.write_pointer}")

    def reset(self) -> None:
        if self.state is ZoneState.OFFLINE:
            raise ZoneError(f"reset of offline zone {self.zone_id}")
        self.state = ZoneState.EMPTY
        self.write_pointer = 0

    def finish(self) -> None:
        """Close the zone early (NVMe ZNS 'finish').  The write pointer
        stays at the end of the data: the unwritten tail is unusable until
        the next reset, and reads past the pointer keep failing instead of
        hitting never-programmed flash."""
        if self.state is ZoneState.OFFLINE:
            raise ZoneError(f"finish of offline zone {self.zone_id}")
        self.state = ZoneState.FULL

    def retire(self) -> None:
        self.state = ZoneState.OFFLINE
