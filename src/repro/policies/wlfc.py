"""WLFC-style write-less caching: absorb re-writes before they hit flash.

WLFC's observation (PAPERS.md) is that a flash cache serving a
write-heavy tier wears itself out writing data that is overwritten or
evicted before it is ever read back — so keep a small RAM staging area
in front of the flash and *write less*: re-writes to a staged sector
update RAM in place, and only LRU-evicted (or explicitly flushed)
sectors reach the device, batched into write-unit-sized runs.

:class:`WriteLessCache` is a host on the OX-Block **synchronous** LBA
API — the same write/read/trim/flush surface, so any raw-block
workload (``workload.kind="raw_fill_read"``, the policy-ablation
bench) can run with or without the cache by flipping
``StackSpec.host`` between ``"none"`` and ``"wlfc"``.  Determinism:
the cache is plain dict bookkeeping above the sim boundary, so a run
with the cache is exactly as reproducible as one without.

The effect on write amplification is mechanical: the flash-level WAF
numerator (host sectors programmed + GC relocations) shrinks by every
absorbed re-write, which is why the ablation bench's ``wlfc`` rows
undercut every bare GC policy on overwrite-heavy workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class WlfcConfig:
    """Tunables of the write-less cache host."""

    #: RAM staging capacity, in sectors (dirty sectors held back from
    #: flash).  Must cover at least one write unit so eviction can
    #: always form a batch.
    cache_sectors: int = 4096
    #: Evict down to this fraction of capacity once full, so eviction
    #: runs in batches instead of thrashing one sector per write.
    evict_to_fraction: float = 0.75

    def validate(self) -> None:
        if self.cache_sectors < 1:
            raise ReproError(
                f"wlfc: cache_sectors must be >= 1, "
                f"got {self.cache_sectors}")
        if not 0.0 <= self.evict_to_fraction < 1.0:
            raise ReproError(
                f"wlfc: evict_to_fraction must be in [0, 1), "
                f"got {self.evict_to_fraction}")


@dataclass
class WlfcStats:
    #: Sectors the host wrote into the cache (logical write traffic).
    host_sectors_written: int = 0
    #: Sectors actually written through to the FTL (flash traffic).
    flash_sectors_written: int = 0
    #: Re-writes absorbed in RAM (a staged dirty sector overwritten).
    absorbed_rewrites: int = 0
    #: Eviction rounds (capacity pressure, not flushes).
    evictions: int = 0
    #: Sector reads served from the staging area / from flash.
    read_hits: int = 0
    read_misses: int = 0
    flushes: int = 0

    @property
    def write_reduction(self) -> float:
        """Fraction of host write traffic that never reached flash."""
        if not self.host_sectors_written:
            return 0.0
        return 1.0 - (self.flash_sectors_written
                      / self.host_sectors_written)


class WriteLessCache:
    """A write-back RAM stage over an OX-Block-shaped FTL.

    *ftl* needs the synchronous block surface: ``write(lba, data)``,
    ``read(lba, sectors)``, ``trim(lba, sectors)``, ``flush()`` and a
    ``geometry`` with ``sector_size``/``ws_min``.
    """

    def __init__(self, ftl, config: WlfcConfig = WlfcConfig()):
        config.validate()
        self.ftl = ftl
        self.geometry = ftl.geometry
        self.config = config
        self.stats = WlfcStats()
        # lba -> sector payload, in LRU order (oldest first).  "Dirty"
        # is implicit: everything staged here is ahead of flash.
        self._dirty: "OrderedDict[int, bytes]" = OrderedDict()

    # -- the synchronous LBA API -------------------------------------------------

    def write(self, lba: int, data: bytes) -> None:
        sector_size = self.geometry.sector_size
        if not data or len(data) % sector_size:
            raise ReproError(
                f"wlfc: write of {len(data)} bytes is not a whole number "
                f"of {sector_size}-byte sectors")
        count = len(data) // sector_size
        view = memoryview(data)
        dirty = self._dirty
        for index in range(count):
            cur = lba + index
            if cur in dirty:
                self.stats.absorbed_rewrites += 1
                dirty.move_to_end(cur)
            dirty[cur] = bytes(view[index * sector_size:
                                    (index + 1) * sector_size])
        self.stats.host_sectors_written += count
        if len(dirty) > self.config.cache_sectors:
            self._evict()

    def read(self, lba: int, sectors: int = 1) -> bytes:
        sector_size = self.geometry.sector_size
        dirty = self._dirty
        pieces: List[bytes] = []
        index = 0
        while index < sectors:
            cur = lba + index
            staged = dirty.get(cur)
            if staged is not None:
                self.stats.read_hits += 1
                pieces.append(staged)
                index += 1
                continue
            # Batch the run of consecutive misses into one FTL read.
            run = 1
            while (index + run < sectors
                   and (lba + index + run) not in dirty):
                run += 1
            self.stats.read_misses += run
            payload = self.ftl.read(cur, run)
            pieces.extend(payload[i * sector_size:(i + 1) * sector_size]
                          for i in range(run))
            index += run
        return b"".join(pieces)

    def trim(self, lba: int, sectors: int = 1) -> None:
        for index in range(sectors):
            self._dirty.pop(lba + index, None)
        self.ftl.trim(lba, sectors)

    def flush(self) -> None:
        """Write every staged sector through and flush the FTL."""
        self.stats.flushes += 1
        self._write_through(list(self._dirty))
        self.ftl.flush()

    # -- eviction -----------------------------------------------------------------

    def _evict(self) -> None:
        target = int(self.config.cache_sectors
                     * self.config.evict_to_fraction)
        count = len(self._dirty) - target
        victims = []
        for cur in self._dirty:
            victims.append(cur)
            if len(victims) >= count:
                break
        self.stats.evictions += 1
        self._write_through(victims)

    def _write_through(self, lbas: List[int]) -> None:
        """Pop *lbas* from the stage and write them down, coalescing
        consecutive LBAs into single FTL transactions."""
        if not lbas:
            return
        staged: List[Tuple[int, bytes]] = [
            (cur, self._dirty.pop(cur)) for cur in lbas]
        staged.sort(key=lambda item: item[0])
        run_start = staged[0][0]
        run: List[bytes] = [staged[0][1]]
        for cur, payload in staged[1:]:
            if cur == run_start + len(run):
                run.append(payload)
                continue
            self._flush_run(run_start, run)
            run_start, run = cur, [payload]
        self._flush_run(run_start, run)

    def _flush_run(self, lba: int, payloads: List[bytes]) -> None:
        self.ftl.write(lba, b"".join(payloads))
        self.stats.flash_sectors_written += len(payloads)
