"""GC victim-selection policies (the paper's §2.3 "application-specific
FTL" claim, made concrete).

The collector asks its policy to order the FULL-and-partly-invalid
chunks of the marked group; it then tries victims in that order.  The
menu follows Lomet & Luo's taxonomy of log-structured space
reclamation:

* **greedy** — most-invalid first (min valid count).  Optimal when
  invalidation is uniform; also the historical — and default —
  behavior of this repo's collector, bit-for-bit.
* **cost_benefit** — the LFS/Lomet–Luo benefit/cost ratio
  ``(1 - u) * age / (1 + u)`` with ``u = valid/capacity`` and *age*
  the logical time since the chunk was last written (see
  :meth:`repro.ox.ftl.metadata.ChunkTable.tick`).  Prefers old, cold
  chunks even when a younger chunk is slightly emptier: cold data
  relocated once stays put, while a hot chunk collected too early is
  immediately dirtied again.
* **age_partitioned** — a hot/cold generational split: the older half
  of the candidates (by last-write stamp) is collected greedily first;
  the young half is touched only when no cold victim remains.  A
  simplification of generational reclamation that never mixes
  generations within one ordering decision.

Policies are pure ordering functions over candidate lists — they never
mutate FTL state — so the same instance can serve any number of
collectors.  Ties always break on the chunk's fixed linear index,
keeping victim order (and therefore replay) deterministic.
"""

from __future__ import annotations

import time
from typing import List


class VictimPolicy:
    """Orders GC victim candidates; subclasses implement :meth:`select`.

    *candidates* is the unordered list of
    :class:`~repro.ox.ftl.metadata.FtlChunkInfo` for one group's FULL
    chunks with at least one invalid sector; *table* is the owning
    :class:`~repro.ox.ftl.metadata.ChunkTable` (capacity and the
    logical clock live there).  The returned list is the order in
    which the collector will try victims.
    """

    name = "?"

    def select(self, candidates: List["FtlChunkInfo"],
               table: "ChunkTable") -> List["FtlChunkInfo"]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GreedyVictimPolicy(VictimPolicy):
    """Most-invalid first — the default, bit-identical to the legacy
    collector (stable min-valid order with linear-index tie-break)."""

    name = "greedy"

    def select(self, candidates, table):
        return sorted(candidates,
                      key=lambda info: (info.valid_count, info.linear))


class CostBenefitVictimPolicy(VictimPolicy):
    """Benefit/cost ordering: ``(1 - u) * age / (1 + u)``, highest first.

    ``u`` is the chunk's live fraction; ``age`` is the logical clock
    distance since the chunk last absorbed a write.  The ``1 + u``
    denominator (instead of the classical ``2u``) keeps wholly-dead
    chunks (``u = 0``) finite while preserving the ordering intent;
    they score highest at any age, as they should.
    """

    name = "cost_benefit"

    def select(self, candidates, table):
        capacity = table.capacity
        now = table.clock()

        def score(info):
            u = info.valid_count / capacity
            age = now - info.write_seq
            return (1.0 - u) * age / (1.0 + u)

        return sorted(candidates,
                      key=lambda info: (-score(info), info.linear))


class AgePartitionedVictimPolicy(VictimPolicy):
    """Hot/cold generational selection.

    Candidates split into generations by last-write stamp: the oldest
    ``cold_fraction`` of them form the cold generation and are offered
    first (greedily within the generation); the young remainder only
    when the cold side is exhausted.  This keeps the collector off
    freshly-written chunks whose invalid share is still growing —
    collecting them now relocates data that is about to die anyway.
    """

    name = "age_partitioned"

    def __init__(self, cold_fraction: float = 0.5):
        if not 0.0 < cold_fraction <= 1.0:
            raise ValueError(
                f"cold_fraction must be in (0, 1], got {cold_fraction}")
        self.cold_fraction = cold_fraction

    def select(self, candidates, table):
        if len(candidates) <= 1:
            return list(candidates)
        by_age = sorted(candidates,
                        key=lambda info: (info.write_seq, info.linear))
        split = max(1, int(len(by_age) * self.cold_fraction))
        greedy_key = lambda info: (info.valid_count, info.linear)
        return (sorted(by_age[:split], key=greedy_key)
                + sorted(by_age[split:], key=greedy_key))


class TimedVictimPolicy(VictimPolicy):
    """Decorator recording the wall-clock cost of each selection.

    Victim selection is pure computation — it never advances the
    simulated clock — so its cost is a *wall* fact, like ops/sec.  The
    samples therefore live here, on the bench side, and never enter the
    obs registry (whose contents must stay bit-identical across
    machines and worker counts).  ``bench_policy_ablation`` wraps each
    stack's live policy with this to report victim-selection p99.
    """

    def __init__(self, inner: VictimPolicy):
        self.inner = inner
        self.name = inner.name
        self.samples: List[float] = []

    def select(self, candidates, table):
        started = time.perf_counter()
        ordered = self.inner.select(candidates, table)
        self.samples.append(time.perf_counter() - started)
        return ordered

    def percentile(self, q: float) -> float:
        from repro.obs.metrics import percentile_of
        return percentile_of(sorted(self.samples), q)
