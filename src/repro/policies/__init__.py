"""repro.policies: the FTL policy lab.

The paper's core claim is that host-side FTLs let each application pick
its own policies (§2.3).  This package makes the two policy axes of
the OX-Block FTL — GC victim selection and allocation placement —
first-class, pluggable objects, and adds a WLFC-style write-less cache
host that reduces flash writes *above* the FTL:

* :class:`VictimPolicy` (greedy / cost_benefit / age_partitioned) —
  see :mod:`repro.policies.victim`;
* :class:`PlacementPolicy` (striped / stream_partitioned / hotcold) —
  see :mod:`repro.policies.placement`;
* :class:`WriteLessCache` — see :mod:`repro.policies.wlfc`.

Policies are declared on a :class:`~repro.stack.StackSpec`
(``gc_policy``, ``placement_policy``, ``host="wlfc"``) or directly in
``ftl_config``; :func:`resolve_victim_policy` /
:func:`resolve_placement_policy` turn names into fresh instances (every
stack gets its own — some policies carry per-stream state).  The
``"default"`` alias pins today's behavior: greedy victim order and
striped placement, bit-identical to the pre-policy collector
(``scripts/policy_guard.py`` enforces this).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.policies.placement import (
    HotColdPlacement,
    PlacementPolicy,
    StreamPartitionedPlacement,
    StripedPlacement,
)
from repro.policies.victim import (
    AgePartitionedVictimPolicy,
    CostBenefitVictimPolicy,
    GreedyVictimPolicy,
    TimedVictimPolicy,
    VictimPolicy,
)
from repro.policies.wlfc import WlfcConfig, WlfcStats, WriteLessCache

#: name -> factory.  "default" is an alias for the historical behavior.
VICTIM_POLICIES = {
    "default": GreedyVictimPolicy,
    "greedy": GreedyVictimPolicy,
    "cost_benefit": CostBenefitVictimPolicy,
    "age_partitioned": AgePartitionedVictimPolicy,
}

PLACEMENT_POLICIES = {
    "default": StripedPlacement,
    "striped": StripedPlacement,
    "stream_partitioned": StreamPartitionedPlacement,
    "hotcold": HotColdPlacement,
}


def resolve_victim_policy(name: str) -> VictimPolicy:
    """A fresh :class:`VictimPolicy` for *name*; :class:`ReproError`
    (listing the valid options) on an unknown name."""
    try:
        factory = VICTIM_POLICIES[name]
    except KeyError:
        raise ReproError(
            f"unknown gc_policy {name!r}; expected one of "
            f"{tuple(VICTIM_POLICIES)}") from None
    return factory()


def resolve_placement_policy(name: str) -> PlacementPolicy:
    """A fresh :class:`PlacementPolicy` for *name*; :class:`ReproError`
    (listing the valid options) on an unknown name."""
    try:
        factory = PLACEMENT_POLICIES[name]
    except KeyError:
        raise ReproError(
            f"unknown placement_policy {name!r}; expected one of "
            f"{tuple(PLACEMENT_POLICIES)}") from None
    return factory()


__all__ = [
    "AgePartitionedVictimPolicy",
    "CostBenefitVictimPolicy",
    "GreedyVictimPolicy",
    "HotColdPlacement",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "StreamPartitionedPlacement",
    "StripedPlacement",
    "TimedVictimPolicy",
    "VICTIM_POLICIES",
    "VictimPolicy",
    "WlfcConfig",
    "WlfcStats",
    "WriteLessCache",
    "resolve_placement_policy",
    "resolve_victim_policy",
]
