"""Placement policies: how the provisioner spreads allocation streams
over groups and parallel units.

The provisioner allocates write units by walking a *PU cycle* — an
ordered list of parallel units, first usable one wins.  A placement
policy owns that ordering.  Policies express *preference*, not
restriction: every cycle ends with the non-preferred PUs as fallback,
so capacity semantics (``sectors_available``, out-of-space behavior)
are identical across policies — only locality changes.  An explicit
``group=`` hint (GC relocating within its victim's group) always wins
over any preference: group-local GC is an invariant, not a policy.

Three strategies:

* **striped** — rotate across every PU, one step per allocation.  The
  historical behavior, bit-identical; large writes stripe across chips.
* **stream_partitioned** — each allocation stream is pinned to its own
  group partition (streams are assigned partitions in first-use order),
  so e.g. user data and any future cold/log streams never share a
  group until their partition runs dry.  The group-granular cousin of
  pblk's user/GC line separation.
* **hotcold** — fill one group completely before advancing to the next
  (per stream).  Data written together lands together, so temporally
  correlated overwrites invalidate whole chunks instead of peppering
  every group — SSDFS's GC-avoiding layout argument.  GC-relocated
  (cold) data stays in its victim's group via the hint, away from the
  hot frontier group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

PuKey = Tuple[int, int]


class PlacementPolicy:
    """Orders parallel units for one allocation; subclasses implement
    :meth:`pu_cycle`.

    Arguments mirror the provisioner's internals: *stream* is the
    allocation stream name, *state* the stream's
    :class:`~repro.ox.ftl.provisioning._StreamState` (its ``pu_index``
    rotation cursor belongs to the policy), *group* the optional hard
    confinement hint, *all_pus* every PU in geometry order, and
    *provisioner* the caller (for free-space queries).  The first PU in
    the returned cycle with space wins.
    """

    name = "?"

    def pu_cycle(self, stream: str, state, group: Optional[int],
                 all_pus: List[PuKey], provisioner) -> List[PuKey]:
        raise NotImplementedError

    @staticmethod
    def _rotate(state, pus: List[PuKey]) -> List[PuKey]:
        start = state.pu_index % len(pus)
        state.pu_index += 1
        return pus[start:] + pus[:start]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StripedPlacement(PlacementPolicy):
    """Round-robin over every PU (or the hinted group) — the default,
    reproducing the legacy ``Provisioner._pu_cycle`` exactly."""

    name = "striped"

    def pu_cycle(self, stream, state, group, all_pus, provisioner):
        pus = (all_pus if group is None
               else [pu for pu in all_pus if pu[0] == group])
        return self._rotate(state, pus)


class StreamPartitionedPlacement(PlacementPolicy):
    """Each stream prefers its own modular group partition.

    Streams claim partitions in first-use order (deterministic: the
    simulation discovers streams in a fixed order), wrapping when there
    are more streams than partitions.  Stream *i* prefers groups
    ``{g : g % partitions == i}``; everything else is fallback, so a
    stream outgrowing its partition degrades to striping instead of
    failing while free space remains elsewhere.
    """

    name = "stream_partitioned"

    def __init__(self, partitions: int = 2):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions
        self._assigned: Dict[str, int] = {}

    def _partition(self, stream: str) -> int:
        if stream not in self._assigned:
            self._assigned[stream] = len(self._assigned) % self.partitions
        return self._assigned[stream]

    def pu_cycle(self, stream, state, group, all_pus, provisioner):
        if group is not None:
            return self._rotate(
                state, [pu for pu in all_pus if pu[0] == group])
        slot = self._partition(stream)
        modulus = min(self.partitions, provisioner.geometry.num_groups)
        preferred = [pu for pu in all_pus if pu[0] % modulus == slot % modulus]
        rest = [pu for pu in all_pus if pu[0] % modulus != slot % modulus]
        return self._rotate(state, preferred) + rest

    def assignments(self) -> Dict[str, int]:
        """The stream -> partition map claimed so far (for reporting)."""
        return dict(self._assigned)


class HotColdPlacement(PlacementPolicy):
    """Group-fill (temporal) segregation: one frontier group per stream.

    Allocations stripe across the frontier group's PUs until that group
    has nothing left to give this stream, then the frontier advances.
    Consecutive writes — which tend to be overwritten together — share
    chunks, so invalidation concentrates and victims come out nearly
    empty; relocated survivors are by definition cold and stay in their
    own (non-frontier) group via the GC group hint.
    """

    name = "hotcold"

    def __init__(self):
        self._frontier: Dict[str, int] = {}

    def pu_cycle(self, stream, state, group, all_pus, provisioner):
        if group is not None:
            return self._rotate(
                state, [pu for pu in all_pus if pu[0] == group])
        num_groups = provisioner.geometry.num_groups
        current = self._frontier.get(stream, 0)
        for __ in range(num_groups):
            if provisioner.group_free(current) > 0 or any(
                    pu[0] == current for pu in state.open_chunks):
                break
            current = (current + 1) % num_groups
        self._frontier[stream] = current
        frontier = [pu for pu in all_pus if pu[0] == current]
        rest = [pu for pu in all_pus if pu[0] != current]
        return self._rotate(state, frontier) + rest
