"""Delta pages: LLAMA/Bw-tree-style page state.

A logical page is a *base* plus a chain of *delta* records.  Updates
prepend deltas without rewriting the base (cheap, latch-free in the real
system); consolidation folds the chain back into a single base.  On flush
the whole state serializes into one variable-sized page for OX-ELEOS —
which is why OX-ELEOS must support pages "of an arbitrary number of
bytes".

Serialized layout: ``[u32 base_len][base][u32 delta_len][delta]...``
with deltas stored oldest-first.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.errors import ReproError

_LEN = struct.Struct("<I")


@dataclass
class DeltaPage:
    """In-memory state of one logical page."""

    pid: int
    base: bytes = b""
    deltas: List[bytes] = field(default_factory=list)
    dirty: bool = False

    def apply_delta(self, delta: bytes) -> None:
        """Append an update record to the page's chain."""
        self.deltas.append(delta)
        self.dirty = True

    def replace_base(self, base: bytes) -> None:
        """Overwrite the page wholesale (drops the delta chain)."""
        self.base = base
        self.deltas = []
        self.dirty = True

    def consolidate(self) -> None:
        """Fold the delta chain into the base.

        The content model is simple concatenation (a delta appends bytes);
        richer semantics would swap this method out.
        """
        if self.deltas:
            self.base = self.materialize()
            self.deltas = []
            self.dirty = True

    def materialize(self) -> bytes:
        """The page's current logical content."""
        return self.base + b"".join(self.deltas)

    @property
    def chain_length(self) -> int:
        return len(self.deltas)

    # -- serialization ---------------------------------------------------------

    def serialize(self) -> bytes:
        parts = [_LEN.pack(len(self.base)), self.base]
        for delta in self.deltas:
            parts.append(_LEN.pack(len(delta)))
            parts.append(delta)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, pid: int, blob: bytes) -> "DeltaPage":
        if len(blob) < _LEN.size:
            raise ReproError(f"page {pid}: serialized blob too short")
        offset = 0
        (base_len,) = _LEN.unpack_from(blob, offset)
        offset += _LEN.size
        if offset + base_len > len(blob):
            raise ReproError(f"page {pid}: base extends past blob")
        base = blob[offset:offset + base_len]
        offset += base_len
        deltas: List[bytes] = []
        while offset < len(blob):
            (delta_len,) = _LEN.unpack_from(blob, offset)
            offset += _LEN.size
            if offset + delta_len > len(blob):
                raise ReproError(f"page {pid}: delta extends past blob")
            deltas.append(blob[offset:offset + delta_len])
            offset += delta_len
        return cls(pid=pid, base=base, deltas=deltas, dirty=False)
