"""The LLAMA-lite engine: page cache + batched flush + segment cleaner.

Write path: updates accumulate as deltas on cached pages; ``flush()``
serializes every dirty page into one LSS I/O buffer and hands it to
OX-ELEOS as a single batched write — the CPU-efficiency trick of [9].
Read path: a page miss fetches exactly one (variable-sized) page through
OX-ELEOS, whatever number of sectors that touches.

Cleaning: flushing relocates pages, so old segments lose live pages over
time; :meth:`clean_once` picks the segment with the lowest live ratio,
re-appends its remaining live pages, and frees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import FTLError, ReproError
from repro.llama.pages import DeltaPage
from repro.ox.eleos import OXEleos


@dataclass(frozen=True)
class LlamaConfig:
    """Engine tunables."""

    consolidate_after: int = 8     # delta-chain length triggering consolidation
    clean_live_ratio: float = 0.5  # segments below this live fraction get cleaned
    cache_capacity: int = 0        # cached pages kept in memory; 0 = unlimited


@dataclass
class LlamaStats:
    updates: int = 0
    reads: int = 0
    cache_misses: int = 0
    flushes: int = 0
    pages_flushed: int = 0
    consolidations: int = 0
    segments_cleaned: int = 0
    pages_relocated: int = 0


class LlamaEngine:
    """A log-structured page store over OX-ELEOS."""

    def __init__(self, ftl: OXEleos, config: Optional[LlamaConfig] = None):
        self.ftl = ftl
        self.sim = ftl.sim
        self.config = config or LlamaConfig()
        self._cache: Dict[int, DeltaPage] = {}
        # segment id -> pids written there by the flush that created it.
        self._segment_pids: Dict[int, Set[int]] = {}
        # pid -> segment currently holding its persistent image.
        self._page_segment: Dict[int, int] = {}
        self.stats = LlamaStats()

    @property
    def tenant(self):
        """The :class:`~repro.qos.TenantContext` of the underlying FTL;
        None when untagged."""
        return self.ftl.tenant

    # -- write path -----------------------------------------------------------

    def update(self, pid: int, delta: bytes) -> None:
        """Append *delta* to the page's chain (in memory, no I/O)."""
        page = self._cached_or_new(pid)
        page.apply_delta(delta)
        if page.chain_length >= self.config.consolidate_after:
            page.consolidate()
            self.stats.consolidations += 1
        self.stats.updates += 1

    def replace(self, pid: int, content: bytes) -> None:
        """Overwrite the page's content wholesale."""
        self._cached_or_new(pid).replace_base(content)
        self.stats.updates += 1

    def flush(self) -> Optional[int]:
        """Persist all dirty pages in one LSS buffer; returns the segment
        id (None if nothing was dirty)."""
        return self.sim.run_until(self.sim.spawn(self.flush_proc()))

    def flush_proc(self):
        dirty = [page for page in self._cache.values() if page.dirty]
        if not dirty:
            return None
        segment_id = None
        batch: List[Tuple[int, bytes]] = []
        batch_bytes = 0
        limit = self.ftl.config.buffer_bytes
        flushed_pids: List[int] = []

        def batched_pids():
            return [pid for pid, __ in batch]

        for page in sorted(dirty, key=lambda p: p.pid):
            blob = page.serialize()
            if len(blob) > limit:
                raise ReproError(
                    f"page {page.pid} serializes to {len(blob)} bytes, "
                    f"larger than the LSS buffer ({limit})")
            if batch_bytes + len(blob) > limit:
                segment_id = yield from self._emit_batch_proc(batch)
                flushed_pids.extend(batched_pids())
                batch, batch_bytes = [], 0
            batch.append((page.pid, blob))
            batch_bytes += len(blob)
        if batch:
            segment_id = yield from self._emit_batch_proc(batch)
            flushed_pids.extend(batched_pids())
        for pid in flushed_pids:
            self._cache[pid].dirty = False
        self.stats.flushes += 1
        self.stats.pages_flushed += len(flushed_pids)
        self._evict_clean_pages()
        return segment_id

    def _emit_batch_proc(self, batch: List[Tuple[int, bytes]]):
        segment_id = yield from self.ftl.append_buffer_proc(batch)
        pids = {pid for pid, __ in batch}
        self._segment_pids[segment_id] = pids
        for pid in pids:
            self._page_segment[pid] = segment_id
        return segment_id

    # -- read path ----------------------------------------------------------------

    def read(self, pid: int) -> bytes:
        """The page's current logical content (cache, else one FTL read)."""
        return self.sim.run_until(self.sim.spawn(self.read_proc(pid)))

    def read_proc(self, pid: int):
        self.stats.reads += 1
        page = self._cache.get(pid)
        if page is None:
            self.stats.cache_misses += 1
            blob = yield from self.ftl.read_page_proc(pid)
            page = DeltaPage.deserialize(pid, blob)
            self._cache[pid] = page
        return page.materialize()

    def contains(self, pid: int) -> bool:
        return pid in self._cache or pid in self.ftl.vmap

    # -- cleaning ----------------------------------------------------------------------

    def segment_live_ratio(self, segment_id: int) -> float:
        """Live pages of the segment / pages originally written to it."""
        pids = self._segment_pids.get(segment_id)
        if not pids:
            return 0.0
        total = max(1, len(pids))
        live = sum(1 for pid in pids
                   if self._page_segment.get(pid) == segment_id)
        return live / total

    def clean_once(self) -> Optional[int]:
        """Clean the coldest segment below the live-ratio threshold;
        returns the freed segment id (None if nothing qualified)."""
        return self.sim.run_until(self.sim.spawn(self.clean_once_proc()))

    def clean_once_proc(self):
        candidates = [(self.segment_live_ratio(seg), seg)
                      for seg in self.ftl.segments
                      if seg in self._segment_pids]
        candidates = [(ratio, seg) for ratio, seg in candidates
                      if ratio <= self.config.clean_live_ratio]
        if not candidates:
            return None
        __, segment_id = min(candidates)
        live_pids = [pid for pid in self._segment_pids.get(segment_id, ())
                     if self._page_segment.get(pid) == segment_id]
        if live_pids:
            batch: List[Tuple[int, bytes]] = []
            for pid in sorted(live_pids):
                cached = self._cache.get(pid)
                if cached is not None:
                    blob = cached.serialize()
                else:
                    blob = yield from self.ftl.read_page_proc(pid)
                batch.append((pid, blob))
                self.stats.pages_relocated += 1
            yield from self._emit_batch_proc(batch)
        try:
            yield from self.ftl.free_segment_proc(segment_id)
        except FTLError:
            # A page moved into the segment between selection and free
            # (possible with concurrent flushes): skip this round.
            return None
        self._segment_pids.pop(segment_id, None)
        self.stats.segments_cleaned += 1
        return segment_id

    # -- internals ----------------------------------------------------------------------

    def _cached_or_new(self, pid: int) -> DeltaPage:
        page = self._cache.get(pid)
        if page is None:
            if pid in self.ftl.vmap:
                blob = self.ftl.read_page(pid)
                page = DeltaPage.deserialize(pid, blob)
            else:
                page = DeltaPage(pid=pid)
            self._cache[pid] = page
        return page

    def _evict_clean_pages(self) -> None:
        capacity = self.config.cache_capacity
        if not capacity or len(self._cache) <= capacity:
            return
        evictable = [pid for pid, page in self._cache.items()
                     if not page.dirty]
        excess = len(self._cache) - capacity
        for pid in evictable[:excess]:
            del self._cache[pid]
