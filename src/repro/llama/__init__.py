"""LLAMA-lite: a latch-free-style log-structured page store (substrate).

The paper's OX-ELEOS FTL exists "to reduce the load on the host CPU in a
data system based on the LLAMA storage engine" [9].  This package is the
host-side driver: a page store with delta updates, batched flushes into
8 MB LSS I/O buffers, and a segment cleaner — enough of LLAMA to exercise
every OX-ELEOS code path (buffer-granularity writes, page-granularity
reads, variable page sizes, host-driven reclamation).
"""

from repro.llama.pages import DeltaPage
from repro.llama.engine import LlamaConfig, LlamaEngine

__all__ = ["DeltaPage", "LlamaConfig", "LlamaEngine"]
