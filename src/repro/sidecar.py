"""The sidecar attachment plane: one lifecycle for faults, obs and qos.

Three cross-cutting subsystems ride alongside the device model — fault
injection (:mod:`repro.faults`), observability (:mod:`repro.obs`) and
QoS scheduling (:mod:`repro.qos`).  Each one wires itself into the same
host objects (the device, its controller, its chips, the simulator) by
setting a named *slot* attribute that is ``None`` in normal operation,
so every disabled hot path costs exactly one attribute load and one
identity check — the zero-cost contract the obs/qos guards enforce.

Before this module, each subsystem grew its own copy of that lifecycle:
``FaultInjector.attach``, ``Obs.attach`` and ``QosScheduler.attach``
re-implemented the slot walk, the double-attach guard and the detach
scrub with small drifts between them.  :class:`Sidecar` is the single
protocol; a subsystem declares *which slot it fills* and *which hosts
carry that slot*, and inherits attach/detach:

* ``slot`` — the attribute name (``"faults"``, ``"obs"``, ``"qos"``);
* :meth:`sidecar_targets` — the host objects to wire;
* :meth:`_sidecar_validate` — pre-attach checks (e.g. simulator match);
* :meth:`_sidecar_wire` / :meth:`_sidecar_unwire` — extra per-subsystem
  state (a chip's fault key, the tracer's simulator binding).

Hosts declare their slots with :func:`init_sidecar_slots` so the
"``None`` unless attached" convention is stated once, not per file.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.ocssd.device import OpenChannelSSD

#: The four sidecar slots the device stack carries today.
FAULTS_SLOT = "faults"
OBS_SLOT = "obs"
QOS_SLOT = "qos"
TRACE_SLOT = "trace"


def init_sidecar_slots(host: object, *slots: str) -> None:
    """Declare *host*'s sidecar slots, all detached (``None``).

    Hot paths guard on ``self.<slot> is None``; one attribute load plus
    an identity check is the entire disabled cost.
    """
    for slot in slots:
        setattr(host, slot, None)


class Sidecar:
    """A subsystem that attaches to (and detaches from) one device stack.

    Subclasses set :attr:`slot` and override :meth:`sidecar_targets`;
    the base class owns the lifecycle: the double-attach guard, the slot
    writes, and the detach scrub that only clears slots still pointing
    at *this* sidecar (so stacking or swapping sidecars never clobbers a
    newer attachment).
    """

    #: Attribute name this sidecar fills on its host objects.
    slot: str = ""

    def __init__(self) -> None:
        self.device: Optional["OpenChannelSSD"] = None

    # -- subclass surface --------------------------------------------------

    def sidecar_targets(self, device: "OpenChannelSSD") -> Iterable[object]:
        """Host objects carrying :attr:`slot` (default: the device, its
        controller and every chip)."""
        return (device, device.controller, *device.chips.values())

    def _sidecar_validate(self, device: "OpenChannelSSD") -> None:
        """Pre-attach checks; raise to refuse the attachment."""

    def _sidecar_wire(self, device: "OpenChannelSSD") -> None:
        """Extra wiring after the slots are set."""

    def _sidecar_unwire(self, device: "OpenChannelSSD") -> None:
        """Extra cleanup after the slots are scrubbed."""

    # -- lifecycle ---------------------------------------------------------

    def attach(self, device: "OpenChannelSSD") -> "Sidecar":
        """Wire this sidecar into *device*; returns self for chaining."""
        if not self.slot:
            raise ReproError(f"{type(self).__name__} declares no slot")
        if self.device is not None:
            raise ReproError(
                f"{type(self).__name__} is already attached")
        self._sidecar_validate(device)
        self.device = device
        for target in self.sidecar_targets(device):
            setattr(target, self.slot, self)
        self._sidecar_wire(device)
        return self

    def detach(self) -> None:
        """Unwire from the device; a no-op when not attached."""
        device = self.device
        if device is None:
            return
        for target in self.sidecar_targets(device):
            if getattr(target, self.slot, None) is self:
                setattr(target, self.slot, None)
        self.device = None
        self._sidecar_unwire(device)
