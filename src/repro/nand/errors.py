"""Wear and media-failure model.

Bad-media management is an Open-Channel SSD responsibility (§2.2): the
device tracks erase counts, retires blocks that exceed their endurance, and
may *grow* bad blocks stochastically.  The model is deterministic for a
given seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.nand.celltype import CellType

_ENDURANCE = {
    CellType.SLC: 100_000,
    CellType.MLC: 10_000,
    CellType.TLC: 3_000,
    CellType.QLC: 1_000,
}


@dataclass
class WearModel:
    """Decides when a block wears out or fails spontaneously.

    ``grown_fail_prob`` is the per-erase probability that an otherwise
    healthy block develops an unrecoverable defect; real devices quote
    figures in the 1e-4..1e-6 range.  Set it to 0 for failure-free runs.
    """

    cell: CellType = CellType.TLC
    endurance: int = 0
    grown_fail_prob: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.endurance <= 0:
            self.endurance = _ENDURANCE[self.cell]
        if not 0.0 <= self.grown_fail_prob <= 1.0:
            raise ValueError(
                f"grown_fail_prob must be in [0, 1], got {self.grown_fail_prob}")
        self._rng = random.Random(self.seed)

    def erase_fails(self, erase_count: int) -> bool:
        """Whether an erase bringing the block to *erase_count* cycles fails.

        A failure retires the block (it becomes a grown bad block).
        """
        if erase_count > self.endurance:
            return True
        if self.grown_fail_prob and self._rng.random() < self.grown_fail_prob:
            return True
        return False

    def read_error_prob(self, erase_count: int) -> float:
        """Probability that a page read at this wear level is uncorrectable.

        Grows quadratically towards 1e-3 at end of life; negligible when
        fresh.  Used for the "high ECC" early-warning chunk state.
        """
        fraction = min(1.0, erase_count / self.endurance)
        return 1e-3 * fraction * fraction

    def read_fails(self, erase_count: int) -> bool:
        prob = self.read_error_prob(erase_count)
        return bool(prob) and self._rng.random() < prob
