"""NAND operation latencies per cell type, plus bus-transfer timing.

Values are representative figures from vendor datasheets and the LightNVM
literature; what matters for the reproduction is the *ordering* (SLC fast,
QLC slow; reads ≪ programs ≪ erases) and the read/program asymmetry that —
combined with the controller's write-back cache — produces the write ≫ read
throughput gap of Figure 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.nand.celltype import CellType
from repro.units import MIB, US


@dataclass(frozen=True)
class NandTiming:
    """Latencies of a flash chip and its channel.

    ``channel_bandwidth`` is the per-channel bus throughput in bytes/second
    used to compute data transfer time between controller and chip.
    """

    read_latency: float
    program_latency: float
    erase_latency: float
    channel_bandwidth: float = 400 * MIB

    def transfer_time(self, num_bytes: int) -> float:
        """Bus time to move *num_bytes* over the channel."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        return num_bytes / self.channel_bandwidth

    def read_time(self, pages: int = 1) -> float:
        """Media time to sense *pages* pages.

        Multi-plane reads at the same page address proceed in parallel, so
        callers pass the number of *sequential* page senses.
        """
        return self.read_latency * pages

    def program_time(self, page_groups: int = 1) -> float:
        """Media time to program *page_groups* multi-plane page groups."""
        return self.program_latency * page_groups

    def erase_time(self) -> float:
        """Media time for a (multi-plane) block erase."""
        return self.erase_latency


@dataclass(frozen=True)
class SampledNandTiming(NandTiming):
    """A :class:`NandTiming` whose media latencies carry per-op jitter.

    Real chips do not serve every page in exactly t_R: measured profiles
    (what :mod:`repro.trace.calibrate` fits) show a right-skewed spread.
    Each ``*_sigma`` is the sigma of a mean-preserving multiplicative
    log-normal — the base latency stays the *mean*, so throughput-level
    results match the deterministic model while individual ops vary.

    Sampling is seeded and consumed in simulator event order, so a given
    (seed, workload) pair replays the identical latency sequence — the
    determinism contract every other layer already honours.  A sigma of
    zero skips the RNG entirely and is bit-identical to the base class.
    """

    read_sigma: float = 0.0
    program_sigma: float = 0.0
    erase_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("read_sigma", "program_sigma", "erase_sigma"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"negative {name}: {value}")
        # Frozen dataclass: the RNG is runtime state, not a field (it
        # stays out of ==/hash and of asdict()).
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def _jitter(self, sigma: float) -> float:
        if sigma <= 0.0:
            return 1.0
        # lognormvariate(-sigma^2/2, sigma) has mean exactly 1.
        return self._rng.lognormvariate(-0.5 * sigma * sigma, sigma)

    def read_time(self, pages: int = 1) -> float:
        return super().read_time(pages) * self._jitter(self.read_sigma)

    def program_time(self, page_groups: int = 1) -> float:
        return (super().program_time(page_groups)
                * self._jitter(self.program_sigma))

    def erase_time(self) -> float:
        return super().erase_time() * self._jitter(self.erase_sigma)


_PRESETS = {
    CellType.SLC: NandTiming(read_latency=25 * US, program_latency=200 * US,
                             erase_latency=1500 * US),
    CellType.MLC: NandTiming(read_latency=50 * US, program_latency=600 * US,
                             erase_latency=3000 * US),
    CellType.TLC: NandTiming(read_latency=75 * US, program_latency=900 * US,
                             erase_latency=3500 * US),
    CellType.QLC: NandTiming(read_latency=120 * US, program_latency=2000 * US,
                             erase_latency=4000 * US),
}


def timing_for(cell: CellType) -> NandTiming:
    """The preset timing profile for *cell*."""
    return _PRESETS[cell]
