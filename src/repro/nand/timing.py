"""NAND operation latencies per cell type, plus bus-transfer timing.

Values are representative figures from vendor datasheets and the LightNVM
literature; what matters for the reproduction is the *ordering* (SLC fast,
QLC slow; reads ≪ programs ≪ erases) and the read/program asymmetry that —
combined with the controller's write-back cache — produces the write ≫ read
throughput gap of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nand.celltype import CellType
from repro.units import MIB, US


@dataclass(frozen=True)
class NandTiming:
    """Latencies of a flash chip and its channel.

    ``channel_bandwidth`` is the per-channel bus throughput in bytes/second
    used to compute data transfer time between controller and chip.
    """

    read_latency: float
    program_latency: float
    erase_latency: float
    channel_bandwidth: float = 400 * MIB

    def transfer_time(self, num_bytes: int) -> float:
        """Bus time to move *num_bytes* over the channel."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        return num_bytes / self.channel_bandwidth

    def read_time(self, pages: int = 1) -> float:
        """Media time to sense *pages* pages.

        Multi-plane reads at the same page address proceed in parallel, so
        callers pass the number of *sequential* page senses.
        """
        return self.read_latency * pages

    def program_time(self, page_groups: int = 1) -> float:
        """Media time to program *page_groups* multi-plane page groups."""
        return self.program_latency * page_groups

    def erase_time(self) -> float:
        """Media time for a (multi-plane) block erase."""
        return self.erase_latency


_PRESETS = {
    CellType.SLC: NandTiming(read_latency=25 * US, program_latency=200 * US,
                             erase_latency=1500 * US),
    CellType.MLC: NandTiming(read_latency=50 * US, program_latency=600 * US,
                             erase_latency=3000 * US),
    CellType.TLC: NandTiming(read_latency=75 * US, program_latency=900 * US,
                             erase_latency=3500 * US),
    CellType.QLC: NandTiming(read_latency=120 * US, program_latency=2000 * US,
                             erase_latency=4000 * US),
}


def timing_for(cell: CellType) -> NandTiming:
    """The preset timing profile for *cell*."""
    return _PRESETS[cell]
