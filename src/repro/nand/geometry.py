"""Per-chip flash geometry: planes / blocks / pages / sectors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.nand.celltype import CellType, unit_of_write_sectors


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of a single flash chip (one OCSSD parallel unit).

    The defaults follow §2.1 and the Figure 4 drive: 4 KB sectors, 4
    sectors per flash page, dual-plane TLC (96 KB write unit).  Blocks are
    scaled down from the drive's 768 pages/block (24 MB chunks) to keep
    pure-Python experiments tractable; benches that need the paper's exact
    chunk size pass ``pages_per_block=768``.

    ``pages_per_block`` must be a multiple of the paired-page count so a
    chunk holds a whole number of write units (real parts are built this
    way; TLC blocks come in multiples of 3 pages).
    """

    cell: CellType = CellType.TLC
    planes: int = 2
    blocks_per_plane: int = 64
    pages_per_block: int = 96
    sectors_per_page: int = 4
    sector_size: int = 4096

    def __post_init__(self) -> None:
        if self.planes not in (1, 2, 4):
            raise GeometryError(f"planes must be 1, 2 or 4, got {self.planes}")
        for field in ("blocks_per_plane", "pages_per_block",
                      "sectors_per_page", "sector_size"):
            if getattr(self, field) < 1:
                raise GeometryError(f"{field} must be >= 1")
        if self.pages_per_block % self.cell.bits_per_cell:
            raise GeometryError(
                f"pages_per_block={self.pages_per_block} is not a multiple "
                f"of the {self.cell.name} paired-page count "
                f"({self.cell.bits_per_cell}); chunks would not hold a "
                "whole number of write units")

    @property
    def page_size(self) -> int:
        """Bytes per flash page (excluding out-of-band space)."""
        return self.sectors_per_page * self.sector_size

    @property
    def block_size(self) -> int:
        """Bytes per block on a single plane."""
        return self.pages_per_block * self.page_size

    @property
    def chip_size(self) -> int:
        """Usable bytes on the chip."""
        return self.planes * self.blocks_per_plane * self.block_size

    @property
    def write_unit_sectors(self) -> int:
        """``ws_min`` in sectors for this chip (§2.1 arithmetic)."""
        return unit_of_write_sectors(self.cell, self.planes,
                                     self.sectors_per_page)

    @property
    def write_unit_bytes(self) -> int:
        return self.write_unit_sectors * self.sector_size

    # -- chunk view ---------------------------------------------------------
    # A chunk (OCSSD unit of sequential write) spans one block on every
    # plane of the chip: plane-paired pages are always programmed together,
    # so exposing per-plane blocks separately would leak the constraint the
    # chunk abstraction exists to hide (§2.2).

    @property
    def chunks_per_chip(self) -> int:
        return self.blocks_per_plane

    @property
    def sectors_per_chunk(self) -> int:
        return self.planes * self.pages_per_block * self.sectors_per_page

    @property
    def chunk_size(self) -> int:
        return self.sectors_per_chunk * self.sector_size
