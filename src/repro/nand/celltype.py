"""Cell density types and the unit-of-write arithmetic of §2.1.

The paper's worked example: "on a QLC chip with 4 planes, 4 paired pages
must be written together on four planes, as a result the unit of write is
16 pages = 16*4 sectors = 16*4*4KB = 256 KB"; and for the dual-plane TLC
drive used in the evaluation, the unit of write is "24 logical blocks …
corresponding to 4 (sectors per page) * 3 (paired pages) * 2 (planes)",
i.e. 96 KB.  These functions encode exactly that arithmetic.
"""

from __future__ import annotations

import enum


class CellType(enum.Enum):
    """NAND cell density: how many bits each cell stores.

    Higher density lowers $/GB at the cost of latency and endurance; each
    stored bit adds one *paired page* sharing the cell, and all paired pages
    must be programmed before any of them can be read back reliably.
    """

    SLC = 1
    MLC = 2
    TLC = 3
    QLC = 4

    @property
    def bits_per_cell(self) -> int:
        return self.value


def paired_pages(cell: CellType) -> int:
    """Number of pages sharing each cell (1 per stored bit)."""
    return cell.bits_per_cell


def unit_of_write_pages(cell: CellType, planes: int) -> int:
    """Pages that must be programmed together: paired pages x planes."""
    _check_planes(planes)
    return paired_pages(cell) * planes


def unit_of_write_sectors(cell: CellType, planes: int,
                          sectors_per_page: int) -> int:
    """Sectors (= OCSSD logical blocks) in one unit of write (``ws_min``)."""
    if sectors_per_page < 1:
        raise ValueError(f"sectors_per_page must be >= 1, got {sectors_per_page}")
    return unit_of_write_pages(cell, planes) * sectors_per_page


def unit_of_write_bytes(cell: CellType, planes: int, sectors_per_page: int,
                        sector_size: int) -> int:
    """Byte size of one unit of write."""
    if sector_size < 1:
        raise ValueError(f"sector_size must be >= 1, got {sector_size}")
    return unit_of_write_sectors(cell, planes, sectors_per_page) * sector_size


def _check_planes(planes: int) -> None:
    if planes not in (1, 2, 4):
        raise ValueError(
            f"flash chips come with 1, 2 or 4 planes, got {planes}")
