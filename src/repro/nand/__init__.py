"""NAND flash substrate: cells, chips, timing, wear.

This package models the physical storage space of §2.1 of the paper:
channels of chips, chips of planes, planes of blocks, blocks of pages,
pages of sectors — with the cell-density dimension (SLC/MLC/TLC/QLC) that
drives paired pages and the unit-of-write arithmetic the paper builds its
argument on.
"""

from repro.nand.celltype import (
    CellType,
    paired_pages,
    unit_of_write_bytes,
    unit_of_write_pages,
    unit_of_write_sectors,
)
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming, SampledNandTiming, timing_for
from repro.nand.chip import BlockState, FlashBlock, FlashChip
from repro.nand.errors import WearModel

__all__ = [
    "CellType",
    "paired_pages",
    "unit_of_write_bytes",
    "unit_of_write_pages",
    "unit_of_write_sectors",
    "FlashGeometry",
    "NandTiming",
    "SampledNandTiming",
    "timing_for",
    "BlockState",
    "FlashBlock",
    "FlashChip",
    "WearModel",
]
