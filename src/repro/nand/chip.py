"""A flash chip: the physical home of one OCSSD parallel unit.

Operations on a chip are sequential (§2.1) — the *device controller* models
that with one resource per chip; this class models state, wear and media
time.  A :class:`FlashBlock` here is a *block set*: one erase block on every
plane of the chip.  Plane pairing (pages at the same address on different
planes are programmed/read together) and paired pages (SLC=1 … QLC=4) are
folded into the write-unit accounting, which is exactly the "chunk
management is under the responsibility of the Open-Channel SSD" contract of
§2.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MediaError, WritePointerError
from repro.nand.errors import WearModel
from repro.nand.geometry import FlashGeometry
from repro.nand.timing import NandTiming, timing_for
from repro.sidecar import FAULTS_SLOT, OBS_SLOT, init_sidecar_slots


class BlockState(enum.Enum):
    FREE = "free"            # erased, nothing programmed
    OPEN = "open"            # partially programmed
    FULL = "full"            # every page programmed
    BAD = "bad"              # retired (factory or grown bad block)


# Bound once: block-state checks run on every program/read/erase.
_B_FREE = BlockState.FREE
_B_OPEN = BlockState.OPEN
_B_FULL = BlockState.FULL
_B_BAD = BlockState.BAD


@dataclass
class FlashBlock:
    """State of one block set (one erase block per plane)."""

    index: int
    state: BlockState = BlockState.FREE
    sectors_programmed: int = 0
    erase_count: int = 0


@dataclass
class ChipStats:
    reads: int = 0
    programs: int = 0
    erases: int = 0
    read_time: float = 0.0
    program_time: float = 0.0
    erase_time: float = 0.0


class FlashChip:
    """One NAND die with its geometry, timing and wear state."""

    def __init__(self, geometry: Optional[FlashGeometry] = None,
                 timing: Optional[NandTiming] = None,
                 wear: Optional[WearModel] = None,
                 factory_bad: Optional[list[int]] = None):
        self.geometry = geometry or FlashGeometry()
        self.timing = timing or timing_for(self.geometry.cell)
        self.wear = wear or WearModel(cell=self.geometry.cell)
        self.blocks = [FlashBlock(index=i)
                       for i in range(self.geometry.blocks_per_plane)]
        self.stats = ChipStats()
        # Hot-path dimensions: resolved once here instead of through a
        # property/enum chain on every program and read.
        self._write_unit = self.geometry.write_unit_sectors
        self._block_sectors = self.geometry.sectors_per_chunk
        self._group_sectors = (self.geometry.sectors_per_page
                               * self.geometry.planes)
        self._paired_pages = self.geometry.cell.bits_per_cell
        # Sidecars (repro.sidecar): None in normal operation, so the hot
        # paths pay one attribute load + identity check per op.  The chip
        # records nand.* obs metrics; the controller records the spans (it
        # knows the parent command).
        init_sidecar_slots(self, FAULTS_SLOT, OBS_SLOT)
        self.fault_key = (0, 0)   # (group, pu) — set on faults attach
        for index in factory_bad or []:
            self.blocks[index].state = BlockState.BAD

    # -- helpers -------------------------------------------------------------

    def _block(self, index: int) -> FlashBlock:
        if not 0 <= index < len(self.blocks):
            raise MediaError(
                f"block index {index} out of range "
                f"(chip has {len(self.blocks)} block sets)")
        return self.blocks[index]

    @property
    def sectors_per_block(self) -> int:
        """Sectors in one block set (= one OCSSD chunk)."""
        return self.geometry.sectors_per_chunk

    @property
    def sectors_per_page_group(self) -> int:
        """Sectors spanned by one multi-plane page address."""
        return self.geometry.sectors_per_page * self.geometry.planes

    # -- operations ----------------------------------------------------------

    def erase(self, index: int) -> float:
        """Erase a block set; returns the media time consumed.

        Raises :class:`MediaError` (and retires the block) when the wear
        model declares the erase failed; erasing a retired block also fails.
        """
        block = self._block(index)
        if block.state is _B_BAD:
            raise MediaError(f"erase of bad block {index}")
        faults = self.faults
        if faults is not None:
            if not faults.on_media_op("erase"):
                return 0.0      # powered off: the erase never happens
            if faults.erase_fails(self.fault_key, index,
                                  block.erase_count + 1):
                block.erase_count += 1
                self.stats.erases += 1
                block.state = _B_BAD
                raise MediaError(
                    f"block {index} failed erase at cycle "
                    f"{block.erase_count} (injected fault)")
        block.erase_count += 1
        self.stats.erases += 1
        elapsed = self.timing.erase_time()
        self.stats.erase_time += elapsed
        if self.obs is not None:
            self.obs.on_media("erase", elapsed, 1)
        if self.wear.erase_fails(block.erase_count):
            block.state = _B_BAD
            raise MediaError(
                f"block {index} failed erase at cycle {block.erase_count}")
        block.state = _B_FREE
        block.sectors_programmed = 0
        return elapsed

    def program(self, index: int, sectors: int) -> float:
        """Program *sectors* sequential sectors at the block's append point.

        *sectors* must be a whole number of write units; programming past
        the end of the block or into a non-erased block is an error.
        Returns the media time consumed.
        """
        block = self._block(index)
        if block.state is _B_BAD:
            raise MediaError(f"program on bad block {index}")
        if block.state is _B_FULL:
            raise WritePointerError(f"program on full block {index}")
        write_unit = self._write_unit
        if sectors <= 0 or sectors % write_unit:
            raise WritePointerError(
                f"program of {sectors} sectors is not a multiple of the "
                f"write unit ({write_unit} sectors)")
        if block.sectors_programmed + sectors > self._block_sectors:
            raise WritePointerError(
                f"program overflows block {index}: "
                f"{block.sectors_programmed} + {sectors} > "
                f"{self.sectors_per_block}")
        faults = self.faults
        if faults is not None:
            if not faults.on_media_op("program"):
                return 0.0      # powered off: nothing reaches the array
            if faults.program_fails(self.fault_key):
                block.state = _B_BAD
                raise MediaError(
                    f"block {index} failed program (injected fault)")
        block.sectors_programmed += sectors
        block.state = (_B_FULL
                       if block.sectors_programmed == self._block_sectors
                       else _B_OPEN)
        # One write unit = `paired_pages` successive multi-plane programs.
        page_groups = (sectors // write_unit) * self._paired_pages
        self.stats.programs += page_groups
        elapsed = self.timing.program_time(page_groups)
        self.stats.program_time += elapsed
        if self.obs is not None:
            self.obs.on_media("program", elapsed, page_groups)
        return elapsed

    def read(self, index: int, first_sector: int, sectors: int) -> float:
        """Read *sectors* sectors starting at *first_sector* of the block.

        Only programmed sectors may be read (reading above the write pointer
        is undefined on real flash and an error here).  Returns the media
        time: one sense per multi-plane page group touched.

        Raises :class:`MediaError` on an uncorrectable (wear-induced) error.
        """
        block = self._block(index)
        if block.state is _B_BAD:
            raise MediaError(f"read on bad block {index}")
        if sectors <= 0:
            raise MediaError(f"read of {sectors} sectors")
        if first_sector < 0 or first_sector + sectors > block.sectors_programmed:
            raise WritePointerError(
                f"read of sectors [{first_sector}, {first_sector + sectors}) "
                f"beyond write pointer {block.sectors_programmed} "
                f"in block {index}")
        group = self._group_sectors
        first_group = first_sector // group
        last_group = (first_sector + sectors - 1) // group
        page_groups = last_group - first_group + 1
        self.stats.reads += page_groups
        faults = self.faults
        if faults is not None:
            if not faults.on_media_op("read"):
                return 0.0
            if faults.read_fails(self.fault_key):
                raise MediaError(
                    f"uncorrectable read error in block {index} "
                    f"(injected fault)")
        if self.wear.read_fails(block.erase_count):
            raise MediaError(
                f"uncorrectable read error in block {index} "
                f"(erase count {block.erase_count})")
        elapsed = self.timing.read_time(page_groups)
        self.stats.read_time += elapsed
        if self.obs is not None:
            self.obs.on_media("read", elapsed, page_groups)
        return elapsed

    # -- inspection ------------------------------------------------------------

    def good_blocks(self) -> list[int]:
        return [b.index for b in self.blocks if b.state is not BlockState.BAD]

    def bad_blocks(self) -> list[int]:
        return [b.index for b in self.blocks if b.state is BlockState.BAD]
