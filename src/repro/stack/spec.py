"""StackSpec: one declarative description of a full storage stack.

The paper's FTLs are a menu, not a monolith — OX-Block, OX-ELEOS,
OX-ZNS and LightLSM are different compositions over the same media.  A
:class:`StackSpec` names one composition: geometry and cell type, the
FTL flavor, the host above it, the sidecars riding along (faults, obs,
qos tenants), the workload to drive it with, and the seed that makes
the whole run deterministic.  :func:`repro.stack.build_stack` turns the
spec into live objects; ``python -m repro.stack spec.json`` runs it.

Specs round-trip through plain dicts (:meth:`StackSpec.to_dict` /
:meth:`StackSpec.from_dict`), so JSON and TOML files are first-class
inputs and results files can embed the exact spec they measured.
Validation raises :class:`~repro.errors.ReproError` with the offending
field named; structural invariants the lower layers already enforce
(geometry bounds, fault probabilities) stay enforced there.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.nand import CellType

FTL_FLAVORS = ("oxblock", "eleos", "zns", "lightlsm", "none")
HOSTS = ("auto", "db", "llama", "wlfc", "none")
PLACEMENTS = ("horizontal", "vertical")
QOS_POLICIES = ("partitioned", "shared")
#: Mirrors repro.ox.ftl.mapping.VECTOR_BACKENDS (kept literal so spec
#: validation does not import FTL modules).
VECTOR_BACKENDS = ("array", "numpy")
#: Mirror of the repro.policies registries (kept literal for the same
#: reason; tests assert the two stay in sync).
GC_POLICIES = ("default", "greedy", "cost_benefit", "age_partitioned")
PLACEMENT_POLICIES = ("default", "striped", "stream_partitioned", "hotcold")
WORKLOADS = ("fill_sequential", "fill_then_read_random",
             "fill_then_read_sequential", "raw_fill_read", "trace", "none")
PACINGS = ("afap", "recorded")

#: host="auto" resolves per FTL flavor: the LSM engine for the three
#: table-native environments, LLAMA for ELEOS, nothing for a raw device
#: or a bare OX-Block FTL (the quickstart shape).
AUTO_HOST = {"oxblock": "none", "eleos": "llama", "zns": "db",
             "lightlsm": "db", "none": "none"}


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(message)


def _sub_spec(cls, value):
    """Accept an instance, a mapping, or None (-> defaults)."""
    if value is None:
        return cls()
    if isinstance(value, cls):
        return value
    if isinstance(value, dict):
        known = {f.name for f in fields(cls)}
        unknown = set(value) - known
        _check(not unknown,
               f"{cls.__name__}: unknown field(s) {sorted(unknown)}")
        return cls(**value)
    raise ReproError(f"{cls.__name__}: cannot build from {type(value)}")


@dataclass
class GeometrySpec:
    """The device shape (defaults: the scaled Figure 4 drive)."""

    num_groups: int = 8
    pus_per_group: int = 4
    cell: str = "tlc"             # slc | mlc | tlc | qlc
    planes: int = 2
    chunks_per_pu: int = 64       # blocks per plane
    pages_per_block: int = 96
    sectors_per_page: int = 4
    sector_size: int = 4096

    def validate(self) -> None:
        _check(self.cell.upper() in CellType.__members__,
               f"geometry.cell must be one of "
               f"{sorted(n.lower() for n in CellType.__members__)}, "
               f"got {self.cell!r}")

    @property
    def cell_type(self) -> CellType:
        return CellType[self.cell.upper()]


@dataclass
class TenantSpec:
    """One tenant's identity and QoS parameters."""

    name: str
    weight: float = 1.0
    rate_bytes_per_sec: Optional[float] = None
    burst_bytes: Optional[float] = None

    def validate(self) -> None:
        _check(bool(self.name), "tenant name must be non-empty")
        _check(self.weight > 0,
               f"tenant {self.name!r}: weight must be > 0, "
               f"got {self.weight}")


@dataclass
class FaultSpec:
    """A serializable mirror of :class:`repro.faults.FaultPlan`.

    ``grown_bad`` is a list of ``[group, pu, block, erase_cycle]`` rows
    (JSON has no tuple-keyed dicts); probabilities are re-validated by
    ``FaultPlan.validate`` at build time.
    """

    seed: int = 0
    program_fail_prob: float = 0.0
    read_fail_prob: float = 0.0
    erase_fail_prob: float = 0.0
    grown_bad: List[List[int]] = field(default_factory=list)
    power_cut_at_op: Optional[int] = None
    power_cut_at_time: Optional[float] = None
    torn_unit_prob: float = 0.0
    protect_groups: List[int] = field(default_factory=list)

    def validate(self) -> None:
        for row in self.grown_bad:
            _check(len(row) == 4,
                   f"faults.grown_bad rows are [group, pu, block, "
                   f"erase_cycle]; got {row}")


@dataclass
class WorkloadSpec:
    """What the runner drives the stack with."""

    kind: str = "fill_sequential"
    clients: int = 1
    ops_per_client: int = 200
    read_ops_per_client: int = 0   # 0 = same as ops_per_client
    key_size: int = 16
    value_size: int = 1024
    # raw_fill_read only: single-sector reads over the filled span.
    fill_ops: int = 40
    read_ops: int = 300
    # kind="trace" only: the recorded trace to replay, and whether to
    # run it closed-loop (afap) or at the captured issue times.
    trace: str = ""
    pacing: str = "afap"

    def validate(self) -> None:
        _check(self.kind in WORKLOADS,
               f"workload.kind must be one of {WORKLOADS}, "
               f"got {self.kind!r}")
        _check(self.clients >= 1,
               f"workload.clients must be >= 1, got {self.clients}")
        _check(self.pacing in PACINGS,
               f"workload.pacing must be one of {PACINGS}, "
               f"got {self.pacing!r}")
        if self.kind == "trace":
            _check(bool(self.trace),
                   "workload.trace must name a trace file when "
                   "workload.kind is 'trace'")


@dataclass
class TimingSpec:
    """The device timing model, declaratively.

    Resolution order (each stage overrides the previous): the cell
    preset, a calibrated *profile* (a builtin name or a
    ``repro.timing_profile`` JSON path — see
    :mod:`repro.trace.calibrate`), then the explicit ``*_us`` /
    bandwidth overrides.  A positive ``jitter_sigma`` turns the result
    into a seeded :class:`repro.nand.SampledNandTiming` whose per-op
    latencies vary log-normally around the base values.
    """

    profile: str = ""
    read_latency_us: float = 0.0      # 0 = keep preset/profile value
    program_latency_us: float = 0.0
    erase_latency_us: float = 0.0
    channel_mib_per_sec: float = 0.0
    jitter_sigma: float = 0.0
    #: With a profile: also adopt its fitted per-op sigmas.
    fit_jitter: bool = False
    seed: int = 0

    def validate(self) -> None:
        for name in ("read_latency_us", "program_latency_us",
                     "erase_latency_us", "channel_mib_per_sec",
                     "jitter_sigma"):
            _check(getattr(self, name) >= 0,
                   f"timing.{name} must be >= 0, "
                   f"got {getattr(self, name)}")


@dataclass
class StackSpec:
    """The whole composition, one declaration."""

    name: str = "stack"
    seed: int = 0
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    #: FTL flavor: oxblock | eleos | zns | lightlsm | none (raw device).
    ftl: str = "lightlsm"
    #: Kwargs for the flavor's config dataclass (BlockConfig /
    #: EleosConfig / ZnsConfig; lightlsm: ``chunks_per_sstable``).
    ftl_config: Dict[str, object] = field(default_factory=dict)
    #: LightLSM data placement (Figures 5/6): horizontal | vertical.
    placement: str = "horizontal"
    #: GC victim selection for ftl="oxblock" (repro.policies):
    #: default | greedy | cost_benefit | age_partitioned.
    gc_policy: str = "default"
    #: PU allocation order for ftl="oxblock" (repro.policies):
    #: default | striped | stream_partitioned | hotcold.
    placement_policy: str = "default"
    #: Host above the FTL: auto | db | llama | wlfc | none.  "wlfc"
    #: layers the write-less cache over a bare oxblock LBA API.
    host: str = "auto"
    #: Kwargs for :class:`repro.policies.WlfcConfig` (host="wlfc").
    wlfc: Dict[str, object] = field(default_factory=dict)
    #: Kwargs for :class:`repro.lsm.DBConfig` (host="db").
    db: Dict[str, object] = field(default_factory=dict)
    #: LSM concurrency plane (host="db"): flush procs draining the
    #: frozen-memtable FIFO and the max concurrent compactions.  1/1 is
    #: the historical single-daemon engine, bit-identically (pinned by
    #: scripts/lsm_guard.py).  An explicit ``db["flush_workers"]`` /
    #: ``db["compaction_workers"]`` wins over these.
    lsm_flush_workers: int = 1
    lsm_compaction_workers: int = 1
    #: Dispatch loops for ftl="lightlsm" (§4.2: the paper runs one).
    #: An explicit ``ftl_config["dispatch_workers"]`` wins.
    lightlsm_dispatch_workers: int = 1
    #: Kwargs for :class:`repro.llama.LlamaConfig` (host="llama").
    llama: Dict[str, object] = field(default_factory=dict)
    #: host="db" over oxblock only: extent size for BlockDevEnv, in
    #: chunks (0 = 32 chunks, the spectrum bench's table size).
    table_chunks: int = 0
    workload: Optional[WorkloadSpec] = None
    tenants: List[TenantSpec] = field(default_factory=list)
    #: Placement of tenants over PUs: partitioned | shared.
    qos_policy: str = "partitioned"
    #: Attach a QosScheduler when tenants are declared.
    qos_scheduler: bool = True
    faults: Optional[FaultSpec] = None
    #: Device timing override: None keeps the cell preset.
    timing: Optional[TimingSpec] = None
    obs: bool = False
    #: Device write-back cache (bench_ablations turns it off).
    write_back: bool = True
    #: Bulk-op backend for the FTL page map's snapshot paths: "array"
    #: (stdlib, default) or "numpy" (build fails with a ReproError when
    #: numpy is not installed).  Scalar map lookups are unaffected.
    vector_backend: str = "array"

    def __post_init__(self) -> None:
        self.geometry = _sub_spec(GeometrySpec, self.geometry)
        if self.workload is not None:
            self.workload = _sub_spec(WorkloadSpec, self.workload)
        if self.faults is not None:
            self.faults = _sub_spec(FaultSpec, self.faults)
        if self.timing is not None:
            self.timing = _sub_spec(TimingSpec, self.timing)
        self.tenants = [t if isinstance(t, TenantSpec)
                        else _sub_spec(TenantSpec, t)
                        for t in self.tenants]

    # -- validation ---------------------------------------------------------

    def validate(self) -> "StackSpec":
        _check(self.ftl in FTL_FLAVORS,
               f"unknown FTL flavor {self.ftl!r}; "
               f"expected one of {FTL_FLAVORS}")
        _check(self.host in HOSTS,
               f"unknown host {self.host!r}; expected one of {HOSTS}")
        _check(self.placement in PLACEMENTS,
               f"unknown placement {self.placement!r}; "
               f"expected one of {PLACEMENTS}")
        _check(self.qos_policy in QOS_POLICIES,
               f"unknown qos policy {self.qos_policy!r}; "
               f"expected one of {QOS_POLICIES}")
        _check(self.vector_backend in VECTOR_BACKENDS,
               f"unknown vector backend {self.vector_backend!r}; "
               f"expected one of {VECTOR_BACKENDS}")
        _check(self.gc_policy in GC_POLICIES,
               f"unknown gc_policy {self.gc_policy!r}; "
               f"expected one of {GC_POLICIES}")
        _check(self.placement_policy in PLACEMENT_POLICIES,
               f"unknown placement_policy {self.placement_policy!r}; "
               f"expected one of {PLACEMENT_POLICIES}")
        if self.gc_policy != "default":
            _check(self.ftl == "oxblock",
                   f"gc_policy {self.gc_policy!r} needs ftl 'oxblock', "
                   f"not {self.ftl!r}")
        if self.placement_policy != "default":
            _check(self.ftl == "oxblock",
                   f"placement_policy {self.placement_policy!r} needs "
                   f"ftl 'oxblock', not {self.ftl!r}")
        for name in ("lsm_flush_workers", "lsm_compaction_workers",
                     "lightlsm_dispatch_workers"):
            _check(isinstance(getattr(self, name), int)
                   and getattr(self, name) >= 1,
                   f"{name} must be an int >= 1, "
                   f"got {getattr(self, name)!r}")
        if self.lightlsm_dispatch_workers != 1:
            _check(self.ftl == "lightlsm",
                   f"lightlsm_dispatch_workers="
                   f"{self.lightlsm_dispatch_workers} needs ftl "
                   f"'lightlsm', not {self.ftl!r}")
        if (self.lsm_flush_workers != 1
                or self.lsm_compaction_workers != 1):
            _check(self.resolved_host == "db",
                   f"lsm_flush_workers/lsm_compaction_workers need the "
                   f"'db' host, not {self.resolved_host!r}")
        self.geometry.validate()
        for tenant in self.tenants:
            tenant.validate()
        names = [t.name for t in self.tenants]
        _check(len(set(names)) == len(names),
               f"duplicate tenant names in {names}")
        if self.workload is not None:
            self.workload.validate()
        if self.faults is not None:
            self.faults.validate()
        if self.timing is not None:
            self.timing.validate()
        host = self.resolved_host
        if host == "db":
            _check(self.ftl in ("oxblock", "zns", "lightlsm"),
                   f"host 'db' needs a table-capable FTL, not {self.ftl!r}")
        if host == "llama":
            _check(self.ftl == "eleos",
                   f"host 'llama' runs over the eleos FTL, not {self.ftl!r}")
        if host == "wlfc":
            _check(self.ftl == "oxblock",
                   f"host 'wlfc' caches the oxblock sync LBA API, "
                   f"not {self.ftl!r}")
        return self

    @property
    def resolved_host(self) -> str:
        return AUTO_HOST[self.ftl] if self.host == "auto" else self.host

    def replace(self, **overrides) -> "StackSpec":
        """A validated copy with *overrides* applied.

        The clone is deep (built through the dict round-trip), so
        mutating the copy's sub-specs never aliases the original —
        cluster templating stamps out per-shard specs this way.
        """
        data = self.to_dict()
        unknown = set(overrides) - {f.name for f in fields(type(self))}
        _check(not unknown,
               f"StackSpec.replace: unknown field(s) {sorted(unknown)}")
        data.update(overrides)
        return type(self).from_dict(data)

    # -- dict round-trip ----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["workload"] is None:
            del data["workload"]
        if data["faults"] is None:
            del data["faults"]
        if data["timing"] is None:
            del data["timing"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StackSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        _check(not unknown,
               f"StackSpec: unknown field(s) {sorted(unknown)}")
        return cls(**data).validate()
