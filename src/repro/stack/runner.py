"""Execute a :class:`StackSpec`'s workload and emit the results files.

``run_spec`` builds the stack, drives the declared workload, and
returns a flat metrics dict; ``python -m repro.stack spec.json`` (see
``__main__``) additionally persists the usual harness artifacts —
``benchmarks/results/<name>.txt`` plus its JSON twin — through
:func:`repro.benchhelpers.report`.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Optional

from repro.errors import ReproError
from repro.stack.build import Stack, build_stack
from repro.stack.spec import StackSpec

SECTOR = 4096


def _db_workload(stack: Stack) -> Dict[str, object]:
    workload = stack.spec.workload
    bench = stack.dbbench()
    fill = bench.fill_sequential(clients=workload.clients,
                                 ops_per_client=workload.ops_per_client)
    metrics = {
        "fill_ops": fill.ops,
        "fill_ops_per_sec": round(fill.ops_per_sec, 1),
        "stall_seconds": round(fill.stall_seconds, 6),
        "compactions": fill.compactions,
        "flushes": fill.flushes,
    }
    if workload.kind != "fill_sequential":
        bench.quiesce()
        read_ops = (workload.read_ops_per_client
                    or workload.ops_per_client)
        if workload.kind == "fill_then_read_random":
            result = bench.read_random(clients=workload.clients,
                                       ops_per_client=read_ops)
        else:
            result = bench.read_sequential(clients=workload.clients,
                                           ops_per_client=read_ops)
        metrics["read_ops"] = result.ops
        metrics["read_ops_per_sec"] = round(result.ops_per_sec, 1)
    return metrics


def _raw_workload(stack: Stack) -> Dict[str, object]:
    """The perf-trajectory shape: write-unit fills through the FTL's
    block API, then random single-sector reads over the filled span."""
    workload = stack.spec.workload
    # The write-less cache host exposes the same sync surface, so the
    # raw workload drives it transparently when the spec asked for it.
    ftl = stack.wlfc if stack.wlfc is not None else stack.ftl
    if ftl is None or not hasattr(ftl, "write"):
        raise ReproError(
            f"workload 'raw_fill_read' needs a block FTL, "
            f"not ftl={stack.spec.ftl!r}")
    unit = stack.device.geometry.ws_min
    payload = bytes(unit * SECTOR)
    started = time.perf_counter()
    for op in range(workload.fill_ops):
        ftl.write(op * unit, payload)
    ftl.flush()
    # The documented default seed is 0 and must stay 0 — `seed or 17`
    # silently rewrote it to 17 (falsy-zero bug); 17 now backstops only
    # a spec that explicitly carries seed=None.
    seed = stack.spec.seed
    rng = random.Random(17 if seed is None else seed)
    span = workload.fill_ops * unit
    for __ in range(workload.read_ops):
        ftl.read(rng.randrange(span), 1)
    stack.sim.run()
    wall = time.perf_counter() - started
    total = workload.fill_ops + workload.read_ops
    return {
        "fill_ops": workload.fill_ops,
        "read_ops": workload.read_ops,
        "ops_per_sec": round(total / wall, 1) if wall else 0.0,
    }


def _trace_workload(stack: Stack) -> Dict[str, object]:
    from repro.trace.replay import TraceWorkload
    workload = stack.spec.workload
    return TraceWorkload.load(workload.trace,
                              pacing=workload.pacing).run(stack)


def _capture_boundary(spec: StackSpec) -> str:
    """Which instrumented boundary a capture of *spec* records."""
    host = spec.resolved_host
    if host == "db":
        return "host"
    if host == "none" and spec.ftl == "oxblock":
        return "block"
    raise ReproError(
        f"trace capture: no instrumented workload boundary for "
        f"ftl={spec.ftl!r}, host={host!r} (supported: any db host, or a "
        f"bare oxblock FTL)")


def run_spec(spec: StackSpec,
             trace_out: Optional[str] = None) -> Dict[str, object]:
    """Build the stack, run its workload, return the metrics.

    With *trace_out*, a :class:`repro.trace.TraceRecorder` rides along
    and the captured trace is written there.  Recording appends to a
    list outside the event loop, so the captured run's simulated
    timeline is identical to an unrecorded one.
    """
    stack = build_stack(spec)
    recorder = None
    if trace_out:
        from repro.trace.recorder import TraceRecorder
        recorder = TraceRecorder(
            boundary=_capture_boundary(spec)).attach(stack.device)
    workload = spec.workload
    if workload is None or workload.kind == "none":
        stack.sim.run()
        metrics: Dict[str, object] = {}
    elif workload.kind == "raw_fill_read":
        metrics = _raw_workload(stack)
    elif workload.kind == "trace":
        metrics = _trace_workload(stack)
    else:
        metrics = _db_workload(stack)
    metrics["sim_seconds"] = round(stack.sim.now, 9)
    metrics["events_processed"] = stack.sim.events_processed
    if stack.wlfc is not None:
        wstats = stack.wlfc.stats
        metrics["wlfc_host_sectors"] = wstats.host_sectors_written
        metrics["wlfc_flash_sectors"] = wstats.flash_sectors_written
        metrics["wlfc_absorbed_rewrites"] = wstats.absorbed_rewrites
        metrics["wlfc_write_reduction"] = round(wstats.write_reduction, 4)
    if stack.faults is not None:
        metrics["media_ops"] = stack.faults.stats.media_ops
        metrics["power_cuts"] = stack.faults.stats.power_cuts
    if recorder is not None:
        recorder.write(trace_out, meta={"spec": spec.to_dict()})
        metrics["trace_ops"] = len(recorder.ops)
    return metrics


def run_and_report(spec: StackSpec,
                   name: Optional[str] = None,
                   trace_out: Optional[str] = None) -> Dict[str, object]:
    """``run_spec`` + the standard results files; returns the metrics."""
    # Imported here: benchhelpers itself builds stacks from specs.
    from repro.benchhelpers import report
    metrics = run_spec(spec, trace_out=trace_out)
    label = name or spec.name
    lines = [f"Stack run: {label} (ftl={spec.ftl}, "
             f"host={spec.resolved_host}, "
             f"workload={spec.workload.kind if spec.workload else 'none'})"]
    # Pad to the longest key so long cluster-style metric names
    # (cluster.shard3.read_ops_per_sec, ...) stay aligned.
    width = max((len(key) for key in metrics), default=0)
    width = max(width, 18)   # the historical floor, so short tables look as before
    lines.extend(f"  {key:>{width}s} = {value}"
                 for key, value in metrics.items())
    report(label, lines, metrics=metrics)
    return metrics
