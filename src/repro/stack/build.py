"""build_stack(): turn one :class:`StackSpec` into live, wired objects.

Construction order is load-bearing for determinism and matches the
hand-wired assembly every bench used to repeat:

1. the device (which creates its simulator);
2. sidecars, in the fixed order obs -> faults -> qos (attach-before-
   build, so layers constructed afterwards inherit ``sim.obs`` /
   ``sim.qos``);
3. the media manager;
4. the FTL / storage environment (LightLSM spawns its dispatcher here);
5. the host (the LSM engine spawns its daemons here).

Given the same spec, two builds produce event-for-event identical runs
(``tests/test_stack.py`` proves this against the legacy wiring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.lsm import (
    DB, DBConfig, DbBench, HorizontalPlacement, LightLSMEnv,
    VerticalPlacement)
from repro.lsm.blockenv import BlockDevEnv
from repro.lsm.znsenv import ZnsEnv
from repro.llama import LlamaConfig, LlamaEngine
from repro.nand import (
    FlashGeometry, NandTiming, SampledNandTiming, timing_for)
from repro.obs import Obs
from repro.ocssd import DeviceGeometry, OpenChannelSSD
from repro.ox import BlockConfig, EleosConfig, MediaManager, OXBlock, OXEleos
from repro.policies import WlfcConfig, WriteLessCache
from repro.qos import (
    PARTITIONED, QosScheduler, SHARED, TenantContext, TenantRegistry,
    plan_placement)
from repro.stack.spec import StackSpec
from repro.zns import OXZns, ZnsConfig


@dataclass
class Stack:
    """Everything :func:`build_stack` wired, one handle per layer.

    Layers a spec did not ask for are ``None`` — a raw-device stack has
    no ``ftl``; a bare FTL has no ``env``/``db``.
    """

    spec: StackSpec
    device: OpenChannelSSD
    #: Built after the sidecars attach ("attach first, build second").
    media: Optional[MediaManager] = None
    obs: Optional[Obs] = None
    faults: Optional[FaultInjector] = None
    qos: Optional[QosScheduler] = None
    registry: Optional[TenantRegistry] = None
    placement_plan: Optional[
        Dict[TenantContext, List[Tuple[int, int]]]] = None
    ftl: Optional[object] = None          # OXBlock | OXEleos | OXZns
    env: Optional[object] = None          # StorageEnv
    engine: Optional[LlamaEngine] = None
    db: Optional[DB] = None
    wlfc: Optional[WriteLessCache] = None  # host="wlfc" only

    @property
    def sim(self):
        return self.device.sim

    def tenant(self, name: str) -> TenantContext:
        if self.registry is None:
            raise ReproError("this stack declares no tenants")
        return self.registry.lookup(name)

    def dbbench(self) -> DbBench:
        """A workload driver over this stack's DB, seeded by the spec."""
        if self.db is None:
            raise ReproError(
                f"stack {self.spec.name!r} has no DB host "
                f"(ftl={self.spec.ftl!r}, host={self.spec.resolved_host!r})")
        workload = self.spec.workload
        kwargs = {}
        if workload is not None:
            kwargs = dict(key_size=workload.key_size,
                          value_size=workload.value_size)
        return DbBench(self.db, seed=self.spec.seed, **kwargs)


def _config_from(cls, kwargs: Dict[str, object], label: str):
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ReproError(f"{label}: {exc}") from None


def _device_geometry(spec: StackSpec) -> DeviceGeometry:
    g = spec.geometry
    return DeviceGeometry(
        num_groups=g.num_groups, pus_per_group=g.pus_per_group,
        flash=FlashGeometry(
            cell=g.cell_type, planes=g.planes,
            blocks_per_plane=g.chunks_per_pu,
            pages_per_block=g.pages_per_block,
            sectors_per_page=g.sectors_per_page,
            sector_size=g.sector_size))


def _resolve_timing(spec: StackSpec) -> Optional[NandTiming]:
    """``spec.timing`` -> a concrete timing model (None = cell preset).

    Preset -> profile fit -> explicit overrides, then an optional
    log-normal jitter wrapper; see :class:`repro.stack.spec.TimingSpec`.
    """
    t = spec.timing
    if t is None:
        return None
    base = timing_for(spec.geometry.cell_type)
    sigmas = {"read": t.jitter_sigma, "program": t.jitter_sigma,
              "erase": t.jitter_sigma}
    if t.profile:
        # Imported lazily: the spec layer stays importable without the
        # trace package, and most stacks never calibrate.
        from repro.trace.calibrate import fit_profile, load_profile
        fitted = fit_profile(load_profile(t.profile), jitter=t.fit_jitter,
                             seed=t.seed)
        base = fitted.timing
        if t.fit_jitter and not t.jitter_sigma:
            sigmas = {kind: fitted.sigmas.get(kind, 0.0)
                      for kind in sigmas}
    values = dict(
        read_latency=(t.read_latency_us * 1e-6
                      or base.read_latency),
        program_latency=(t.program_latency_us * 1e-6
                         or base.program_latency),
        erase_latency=(t.erase_latency_us * 1e-6
                       or base.erase_latency),
        channel_bandwidth=(t.channel_mib_per_sec * 2**20
                           or base.channel_bandwidth))
    if any(sigmas.values()):
        return SampledNandTiming(
            read_sigma=sigmas["read"], program_sigma=sigmas["program"],
            erase_sigma=sigmas["erase"], seed=t.seed, **values)
    return NandTiming(**values)


def _fault_plan(spec: StackSpec) -> FaultPlan:
    f = spec.faults
    return FaultPlan(
        seed=f.seed,
        program_fail_prob=f.program_fail_prob,
        read_fail_prob=f.read_fail_prob,
        erase_fail_prob=f.erase_fail_prob,
        grown_bad={(g, pu, block): cycle
                   for g, pu, block, cycle in f.grown_bad},
        power_cut_at_op=f.power_cut_at_op,
        power_cut_at_time=f.power_cut_at_time,
        torn_unit_prob=f.torn_unit_prob,
        protect_groups=frozenset(f.protect_groups))


def build_stack(spec: StackSpec) -> Stack:
    """Assemble and wire the stack *spec* describes."""
    spec.validate()
    device = OpenChannelSSD(geometry=_device_geometry(spec),
                            timing=_resolve_timing(spec),
                            write_back=spec.write_back)
    stack = Stack(spec=spec, device=device)

    # Sidecars first, so layers built below inherit sim.obs / sim.qos.
    if spec.obs:
        stack.obs = Obs().attach(device)
    if spec.faults is not None:
        stack.faults = FaultInjector(_fault_plan(spec)).attach(device)
    if spec.tenants:
        stack.registry = TenantRegistry()
        tenants = [stack.registry.register(
                       t.name, weight=t.weight,
                       rate_bytes_per_sec=t.rate_bytes_per_sec,
                       burst_bytes=t.burst_bytes)
                   for t in spec.tenants]
        if spec.qos_scheduler:
            stack.qos = QosScheduler(device.sim).attach(device)
            for tenant in tenants:
                stack.qos.register_tenant(tenant)
        policy = PARTITIONED if spec.qos_policy == "partitioned" else SHARED
        stack.placement_plan = plan_placement(
            spec.geometry.num_groups, spec.geometry.pus_per_group,
            tenants, policy=policy)

    stack.media = MediaManager(device)
    host = spec.resolved_host

    if spec.ftl == "oxblock":
        ftl_config = dict(spec.ftl_config)
        ftl_config.setdefault("map_backend", spec.vector_backend)
        ftl_config.setdefault("gc_policy", spec.gc_policy)
        ftl_config.setdefault("placement_policy", spec.placement_policy)
        config = _config_from(BlockConfig, ftl_config, "ftl_config")
        stack.ftl = OXBlock.format(stack.media, config)
        if host == "wlfc":
            stack.wlfc = WriteLessCache(
                stack.ftl, _config_from(WlfcConfig, spec.wlfc, "wlfc"))
        if host == "db":
            chunks = spec.table_chunks or 32
            stack.env = BlockDevEnv(
                stack.ftl,
                table_sectors=chunks * device.geometry.sectors_per_chunk)
    elif spec.ftl == "eleos":
        config = _config_from(EleosConfig, spec.ftl_config, "ftl_config")
        stack.ftl = OXEleos.format(stack.media, config)
        if host == "llama":
            stack.engine = LlamaEngine(
                stack.ftl, _config_from(LlamaConfig, spec.llama, "llama"))
    elif spec.ftl == "zns":
        config = _config_from(ZnsConfig, spec.ftl_config, "ftl_config")
        stack.ftl = OXZns(stack.media, config)
        if host == "db":
            stack.env = ZnsEnv(stack.ftl)
    elif spec.ftl == "lightlsm":
        placement = (HorizontalPlacement()
                     if spec.placement == "horizontal"
                     else VerticalPlacement())
        kwargs = dict(spec.ftl_config)
        allowed = {"chunks_per_sstable", "dispatch_workers",
                   "dispatch_cpu"}
        unknown = set(kwargs) - allowed
        if unknown:
            raise ReproError(
                f"ftl_config: lightlsm accepts only {sorted(allowed)}, "
                f"got {sorted(unknown)}")
        kwargs.setdefault("dispatch_workers",
                          spec.lightlsm_dispatch_workers)
        stack.env = LightLSMEnv(stack.media, placement, **kwargs)
    # spec.ftl == "none": a raw device stack (isolation/landscape shapes).

    if host == "db" and stack.env is not None:
        db_kwargs = dict(spec.db)
        db_kwargs.setdefault("flush_workers", spec.lsm_flush_workers)
        db_kwargs.setdefault("compaction_workers",
                             spec.lsm_compaction_workers)
        db_config = _config_from(DBConfig, db_kwargs, "db")
        stack.db = DB(stack.env, db_config, device.sim)
    return stack
