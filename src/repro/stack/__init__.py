"""repro.stack: declarative assembly of the whole storage stack.

One :class:`StackSpec` names a composition — geometry, FTL flavor,
host, sidecars, workload, seed — and :func:`build_stack` wires it
deterministically.  ``python -m repro.stack spec.json`` runs a spec
from a JSON or TOML file and writes the usual results files.
"""

from repro.stack.build import Stack, build_stack
from repro.stack.runner import run_and_report, run_spec
from repro.stack.spec import (
    FaultSpec,
    GeometrySpec,
    StackSpec,
    TenantSpec,
    TimingSpec,
    WorkloadSpec,
)

__all__ = [
    "FaultSpec",
    "GeometrySpec",
    "Stack",
    "StackSpec",
    "TenantSpec",
    "TimingSpec",
    "WorkloadSpec",
    "build_stack",
    "run_and_report",
    "run_spec",
]
