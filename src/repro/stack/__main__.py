"""``python -m repro.stack <spec.json|spec.toml>``: run a declared stack.

Loads the spec (JSON by content, TOML by ``.toml`` suffix), validates
it, builds and runs the stack, and writes the standard results files
(``benchmarks/results/<name>.txt`` + JSON twin).  Exit code 0 on
success; spec errors print the offending field and exit 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.stack.runner import run_and_report
from repro.stack.spec import StackSpec


def load_spec(path: str) -> StackSpec:
    if path.endswith(".toml"):
        import tomllib
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        with open(path) as handle:
            data = json.load(handle)
    return StackSpec.from_dict(data)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stack",
        description=__doc__.split("\n")[0])
    parser.add_argument("spec", help="path to a JSON or TOML StackSpec")
    parser.add_argument("--name", default=None,
                        help="override the results-file name")
    parser.add_argument("--trace-out", default=None,
                        help="record the run's workload-boundary ops to "
                             "this trace file (.jsonl/.json or binary)")
    args = parser.parse_args(argv)
    try:
        spec = load_spec(args.spec)
    except ReproError as exc:
        print(f"invalid spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    try:
        run_and_report(spec, name=args.name, trace_out=args.trace_out)
    except ReproError as exc:
        print(f"run failed for {args.spec}: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
