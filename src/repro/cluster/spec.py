"""ClusterSpec: N device shards behind a router, one declaration.

The paper's Figure-1 landscape is "one host, many device
personalities"; the cluster layer extends the same argument sideways —
one router, many device *shards*.  A :class:`ClusterSpec` names a fleet
of fully message-isolated :class:`~repro.stack.StackSpec` stacks (each
shard gets its own simulator kernel, OCSSD device and FTL — nothing is
shared between shards but the spec values themselves), a routing policy
(consistent-hash ring or contiguous ranges), and an R-way replication
factor.  :func:`repro.cluster.run_cluster` executes the shards either
serially in-process or in parallel worker processes; both modes merge
to bit-identical metrics, which is the cluster's reproducibility
contract.

Shards come from a ``template`` stamped per shard (name suffixed,
per-shard seed derived from the cluster seed via
:func:`repro.workloads.derive_stream_seed`) or from an explicit
``shards`` list when individual shards need distinct personalities —
e.g. a fault plan on one shard for failover experiments.

Specs round-trip through plain dicts exactly like ``StackSpec``:
``python -m repro.cluster cluster.json`` runs one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import List

from repro.errors import ReproError
from repro.stack.spec import StackSpec, _sub_spec
from repro.workloads import derive_stream_seed

ROUTERS = ("hash", "range")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(message)


def _default_template() -> StackSpec:
    """A bare OX-Block stack: the cluster drives the raw block API."""
    return StackSpec(ftl="oxblock", host="none")


@dataclass
class ClusterWorkloadSpec:
    """The cluster-level workload the runner routes over the shards.

    ``num_keys`` distinct keys are written once each (to every one of
    their R replicas, in key order), then ``read_ops`` random point
    reads are drawn over the key space (seeded by the cluster seed) and
    routed to each key's primary replica, failing over to the next
    replica on error.  Values are ``value_units`` write units
    (``ws_min`` sectors each) of per-key deterministic bytes, so every
    read verifies content end to end.
    """

    num_keys: int = 64
    read_ops: int = 256
    value_units: int = 1
    #: Replay a recorded cluster trace (``repro.trace`` format) instead
    #: of generating the keyed workload; ``num_keys``/``read_ops`` are
    #: then taken from the trace.
    trace: str = ""

    def validate(self) -> None:
        _check(self.num_keys >= 1,
               f"workload.num_keys must be >= 1, got {self.num_keys}")
        _check(self.read_ops >= 0,
               f"workload.read_ops must be >= 0, got {self.read_ops}")
        _check(self.value_units >= 1,
               f"workload.value_units must be >= 1, got {self.value_units}")


@dataclass
class ClusterSpec:
    """The whole fleet, one declaration."""

    name: str = "cluster"
    seed: int = 0
    num_shards: int = 2
    #: Each key lives on this many distinct shards.
    replication: int = 1
    #: Routing policy: ``hash`` (consistent-hash ring with virtual
    #: nodes) or ``range`` (contiguous hash ranges, split on add).
    router: str = "hash"
    #: Virtual nodes per shard on the hash ring.
    vnodes: int = 64
    #: Worker processes; 0 = serial in-process (the reference mode the
    #: parallel runs must match bit for bit).
    workers: int = 0
    #: Per-shard stack template; name/seed are stamped per shard.
    template: StackSpec = field(default_factory=_default_template)
    #: Explicit per-shard specs (overrides ``template``/``num_shards``).
    shards: List[StackSpec] = field(default_factory=list)
    workload: ClusterWorkloadSpec = field(
        default_factory=ClusterWorkloadSpec)

    def __post_init__(self) -> None:
        self.template = _sub_spec(StackSpec, self.template)
        self.shards = [s if isinstance(s, StackSpec)
                       else _sub_spec(StackSpec, s)
                       for s in self.shards]
        if self.shards:
            self.num_shards = len(self.shards)
        self.workload = _sub_spec(ClusterWorkloadSpec, self.workload)

    # -- validation ---------------------------------------------------------

    def validate(self) -> "ClusterSpec":
        _check(self.num_shards >= 1,
               f"num_shards must be >= 1, got {self.num_shards}")
        _check(1 <= self.replication <= self.num_shards,
               f"replication must be in [1, num_shards={self.num_shards}], "
               f"got {self.replication}")
        _check(self.router in ROUTERS,
               f"unknown router {self.router!r}; expected one of {ROUTERS}")
        _check(self.vnodes >= 1, f"vnodes must be >= 1, got {self.vnodes}")
        _check(self.workers >= 0,
               f"workers must be >= 0 (0 = serial), got {self.workers}")
        self.workload.validate()
        for index, shard in enumerate(self.shard_specs()):
            shard.validate()
            _check(shard.ftl == "oxblock" and shard.resolved_host == "none",
                   f"shard {index}: the cluster drives the raw block API, "
                   f"so shards need ftl='oxblock' with no host "
                   f"(got ftl={shard.ftl!r}, host={shard.resolved_host!r})")
        return self

    def shard_specs(self) -> List[StackSpec]:
        """The per-shard stack specs, stamped with shard names.

        Template mode derives each shard's seed from the cluster seed
        (``derive_stream_seed(seed, "shard:<i>")``), so shards are
        deterministic yet mutually independent; explicit shards keep
        their declared seeds (failover experiments pin fault plans to a
        particular shard this way).
        """
        if self.shards:
            return [shard.replace(name=f"{self.name}.shard{index}")
                    for index, shard in enumerate(self.shards)]
        return [self.template.replace(
                    name=f"{self.name}.shard{index}",
                    seed=derive_stream_seed(self.seed, f"shard:{index}"))
                for index in range(self.num_shards)]

    # -- dict round-trip ----------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        if not data["shards"]:
            del data["shards"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        _check(not unknown,
               f"ClusterSpec: unknown field(s) {sorted(unknown)}")
        return cls(**data).validate()
