"""``python -m repro.cluster <spec.json|spec.toml>``: run a declared fleet.

Loads the cluster spec (JSON by content, TOML by ``.toml`` suffix),
validates it, runs the cluster, and writes the standard results files
(``benchmarks/results/<name>.txt`` + JSON twin).  Exit code 0 on
success; spec errors print the offending field and exit 2; a run that
loses reads (no live replica) exits 1.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cluster.runner import run_and_report_cluster
from repro.cluster.spec import ClusterSpec
from repro.errors import ReproError


def load_cluster_spec(path: str) -> ClusterSpec:
    if path.endswith(".toml"):
        import tomllib
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        with open(path) as handle:
            data = json.load(handle)
    return ClusterSpec.from_dict(data)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description=__doc__.split("\n")[0])
    parser.add_argument("spec", help="path to a JSON or TOML ClusterSpec")
    parser.add_argument("--name", default=None,
                        help="override the results-file name")
    parser.add_argument("--workers", type=int, default=None,
                        help="override spec.workers (0 = serial)")
    parser.add_argument("--trace-out", default=None,
                        help="record the routed cluster workload to this "
                             "trace file (replayable via workload.trace)")
    args = parser.parse_args(argv)
    try:
        spec = load_cluster_spec(args.spec)
    except ReproError as exc:
        print(f"invalid spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_and_report_cluster(spec, name=args.name,
                                        workers=args.workers,
                                        trace_out=args.trace_out)
    except ReproError as exc:
        print(f"run failed for {args.spec}: {exc}", file=sys.stderr)
        return 2
    if result.reads_lost:
        print(f"{result.reads_lost} read(s) lost "
              f"(no live replica)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
