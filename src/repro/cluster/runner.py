"""Execute a :class:`ClusterSpec`: route, run shards, merge.

The execution model:

1. The parent plans the whole workload up front: every key is routed to
   its R replicas (writes) and every read to its primary, producing one
   op list per shard.  Routing happens only in the parent — shards
   never talk to each other, and a shard task is a plain picklable dict
   (spec dict + op lists).
2. Shards execute their op lists independently — serially in-process
   (``workers=0``, the reference mode) or on a
   ``concurrent.futures.ProcessPoolExecutor`` with the ``spawn`` start
   method (one simulator kernel per worker process, nothing shared).
3. Reads that fail (a shard lost power mid-run, a write never landed)
   fail over: the parent re-routes them to the next live replica in a
   retry round.  A retry task replays the shard's writes first — the
   stacks are deterministic, so a replayed shard reaches the exact
   state of its round-0 twin before serving the retried reads.
4. Results merge in the parent (:mod:`repro.cluster.merge`).  The
   merged dict is bit-identical for the serial runner and any worker
   count; wall-clock facts (the only legitimately nondeterministic
   outputs) are kept apart in ``ClusterResult.wall``.

Worker-visible functions (:func:`_run_shard`) live at module top level
so the spawn pickler can import them by qualified name.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.merge import merge_shard_results
from repro.cluster.router import build_router
from repro.cluster.spec import ClusterSpec
from repro.errors import ReproError
from repro.stack.build import build_stack
from repro.stack.spec import StackSpec
from repro.workloads import derive_stream_seed

#: Documented nondeterministic keys — everything else in a merged
#: result is part of the bit-identity contract.
WALL_KEYS = ("wall_seconds", "ops_per_sec", "workers", "cpu_count",
             "shard_wall_seconds_max")


def payload_for(key: int, size_bytes: int) -> bytes:
    """*key*'s deterministic value bytes (BLAKE2s seed, repeated)."""
    seed = hashlib.blake2s(f"key:{key}".encode(),
                           digest_size=32).digest()
    repeats = -(-size_bytes // len(seed))
    return (seed * repeats)[:size_bytes]


def _run_shard(task: dict) -> dict:
    """Run one shard's op list in this process (the worker entry point).

    Everything in the returned dict except ``wall_seconds`` is a pure
    function of *task* — no wall clock, no process identity, no
    unordered iteration — because the serial/parallel metric identity
    rests on this function.
    """
    spec = StackSpec.from_dict(task["spec"])
    started = time.perf_counter()
    stack = build_stack(spec)
    ftl = stack.ftl
    faults = stack.faults
    sector_size = spec.geometry.sector_size
    unit_sectors = stack.device.geometry.ws_min * task["value_units"]
    unit_bytes = unit_sectors * sector_size

    payload_cache: Dict[int, bytes] = {}

    def payload(key: int) -> bytes:
        cached = payload_cache.get(key)
        if cached is None:
            cached = payload_cache[key] = payload_for(key, unit_bytes)
        return cached

    def dead() -> bool:
        return faults is not None and faults.tripped

    counts = {"write_ops": 0, "write_failures": 0, "read_ops": 0,
              "read_failures": 0, "reads_verified": 0,
              "read_corruptions": 0}
    failed_reads: List[int] = []
    lba_of: Dict[int, int] = {}
    stored: set = set()
    next_lba = 0

    for key in task["writes"]:
        lba_of[key] = next_lba
        next_lba += unit_sectors
        counts["write_ops"] += 1
        if dead():
            counts["write_failures"] += 1
            continue
        try:
            ftl.write(lba_of[key], payload(key))
            stored.add(key)
        except ReproError:
            counts["write_failures"] += 1
    if not dead():
        try:
            ftl.flush()
        except ReproError:
            pass

    for key in task["reads"]:
        counts["read_ops"] += 1
        # The lba map *is* this replica's per-key metadata: a key whose
        # write never landed here reports a failed read (and the parent
        # fails over), never a silent read of unmapped zeroes.
        if key not in stored or dead():
            counts["read_failures"] += 1
            failed_reads.append(key)
            continue
        data = None
        try:
            data = ftl.read(lba_of[key], 1)
        except ReproError:
            data = None
        if data is None:
            counts["read_failures"] += 1
            failed_reads.append(key)
        elif data == payload(key)[:sector_size]:
            counts["reads_verified"] += 1
        else:
            counts["read_corruptions"] += 1

    metrics: Dict[str, object] = dict(counts)
    metrics["sim_seconds"] = round(stack.sim.now, 9)
    metrics["events_processed"] = stack.sim.events_processed
    if faults is not None:
        metrics["media_ops"] = faults.stats.media_ops
        metrics["power_cuts"] = faults.stats.power_cuts
    return {
        "shard": task["shard"],
        "round": task["round"],
        "metrics": metrics,
        "registry": (stack.obs.metrics.dump()
                     if stack.obs is not None else None),
        "failed_reads": failed_reads,
        "dead": dead(),
        "wall_seconds": time.perf_counter() - started,
    }


def _ensure_child_import_path() -> None:
    """Make ``repro`` importable in spawn children.

    Spawned workers re-exec the interpreter and unpickle
    :func:`_run_shard` by qualified name, so ``repro`` must be on their
    import path.  The parent may have gotten it from a ``sys.path``
    insert (the scripts do) rather than ``PYTHONPATH`` — propagate the
    package root through the environment the children inherit.
    """
    import repro
    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)


@dataclass
class ClusterResult:
    """One cluster run: the deterministic view and the wall-clock one."""

    spec: ClusterSpec
    #: Bit-identical across serial and any worker count.
    merged: Dict[str, object]
    #: Wall-clock facts (:data:`WALL_KEYS`) — honest, not deterministic.
    wall: Dict[str, object]
    #: Raw per-shard worker results, by round then shard.
    rounds: List[List[dict]] = field(default_factory=list)

    @property
    def reads_lost(self) -> int:
        return self.merged["cluster.reads_lost"]


def _plan_keys(spec: ClusterSpec) -> Tuple[List[int], List[int]]:
    """The cluster-boundary op streams: write keys then read keys.

    Generated from the workload spec, or — when ``workload.trace``
    names a recorded cluster trace — replayed from it verbatim, so a
    re-run routes the exact captured key sequences through whatever
    sharding the current spec declares.
    """
    workload = spec.workload
    if workload.trace:
        from repro.trace.format import read_trace
        __, ops = read_trace(workload.trace)
        write_keys: List[int] = []
        read_keys: List[int] = []
        for op in ops:
            if op.layer != "cluster":
                raise ReproError(
                    f"cluster replay: trace {workload.trace!r} carries a "
                    f"{op.layer!r}-layer op; cluster traces only")
            if op.kind == "write":
                write_keys.append(int(op.key))
            elif op.kind == "read":
                read_keys.append(int(op.key))
            else:
                raise ReproError(
                    f"cluster replay: op kind {op.kind!r} is not "
                    f"replayable at the cluster boundary")
        unknown = set(read_keys) - set(write_keys)
        if unknown:
            raise ReproError(
                f"cluster replay: trace reads {len(unknown)} key(s) it "
                f"never wrote (e.g. {sorted(unknown)[:3]})")
        return write_keys, read_keys
    write_keys = list(range(workload.num_keys))
    rng = random.Random(derive_stream_seed(spec.seed, "cluster:reads"))
    read_keys = [rng.randrange(workload.num_keys)
                 for __ in range(workload.read_ops)]
    return write_keys, read_keys


def run_cluster(spec: ClusterSpec,
                workers: Optional[int] = None,
                trace_out: Optional[str] = None) -> ClusterResult:
    """Route the workload, execute the shards, merge the results.

    *workers* overrides ``spec.workers``; 0 runs every shard serially
    in-process.  Both paths call the same :func:`_run_shard` on the
    same task dicts, so their merged metrics are bit-identical.

    With *trace_out*, the cluster-boundary workload (the routed key
    streams, before sharding) is written as a ``repro.trace`` file that
    ``workload.trace`` replays — through this spec or a differently
    sharded one.
    """
    spec.validate()
    worker_count = spec.workers if workers is None else workers
    shard_specs = [s.to_dict() for s in spec.shard_specs()]
    count = spec.num_shards
    router = build_router(spec.router, range(count),
                          replication=spec.replication,
                          vnodes=spec.vnodes)
    workload = spec.workload
    write_keys, read_keys = _plan_keys(spec)

    # -- plan: route every op in the parent ---------------------------------
    replica_sets: Dict[int, Tuple[int, ...]] = {}
    writes_by_shard: List[List[int]] = [[] for __ in range(count)]
    for key in write_keys:
        replicas = router.replicas(key)
        replica_sets[key] = replicas
        for shard in replicas:
            writes_by_shard[shard].append(key)
    reads_by_shard: List[List[int]] = [[] for __ in range(count)]
    for key in read_keys:
        reads_by_shard[replica_sets[key][0]].append(key)

    if trace_out:
        from repro.trace.format import TraceOp, write_trace
        # The cluster plan has no simulated clock (shards own their own
        # kernels), so issue times are the plan order itself.
        ops = [TraceOp(t=float(index), layer="cluster", kind="write",
                       key=str(key))
               for index, key in enumerate(write_keys)]
        base = len(ops)
        ops.extend(TraceOp(t=float(base + index), layer="cluster",
                           kind="read", key=str(key))
                   for index, key in enumerate(read_keys))
        write_trace(trace_out, ops,
                    meta={"cluster": spec.name,
                          "value_units": workload.value_units})

    def task_for(shard: int, round_no: int, reads: List[int]) -> dict:
        return {"shard": shard, "round": round_no,
                "spec": shard_specs[shard],
                "value_units": workload.value_units,
                "writes": writes_by_shard[shard], "reads": reads}

    # -- execute: round 0 plus failover retry rounds ------------------------
    def drive(execute: Callable[[List[dict]], List[dict]]):
        tasks = [task_for(shard, 0, reads_by_shard[shard])
                 for shard in range(count)]
        rounds = [execute(tasks)]
        dead_shards = {r["shard"] for r in rounds[0] if r["dead"]}
        pending: List[Tuple[int, int]] = [
            (key, 1) for result in rounds[0]
            for key in result["failed_reads"]]
        failed_over = 0
        lost = 0
        round_no = 1
        while pending:
            batch: Dict[int, List[Tuple[int, int]]] = {}
            for key, cursor in pending:
                replicas = replica_sets[key]
                while (cursor < len(replicas)
                       and replicas[cursor] in dead_shards):
                    cursor += 1
                if cursor >= len(replicas):
                    lost += 1
                    continue
                batch.setdefault(replicas[cursor], []).append(
                    (key, cursor))
            if not batch:
                break
            tasks = [task_for(shard, round_no,
                              [key for key, __ in batch[shard]])
                     for shard in sorted(batch)]
            results = execute(tasks)
            rounds.append(results)
            pending = []
            for result in results:
                if result["dead"]:
                    dead_shards.add(result["shard"])
                failed = set(result["failed_reads"])
                for key, cursor in batch[result["shard"]]:
                    if key in failed:
                        pending.append((key, cursor + 1))
                    else:
                        failed_over += 1
            round_no += 1
        return rounds, failed_over, lost

    started = time.perf_counter()
    if worker_count > 0:
        _ensure_child_import_path()
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=worker_count,
                                 mp_context=context) as pool:
            rounds, failed_over, lost = drive(
                lambda tasks: list(pool.map(_run_shard, tasks)))
    else:
        rounds, failed_over, lost = drive(
            lambda tasks: [_run_shard(task) for task in tasks])
    wall_seconds = time.perf_counter() - started

    # -- merge --------------------------------------------------------------
    flat_results = [result for round_results in rounds
                    for result in round_results]
    merged = merge_shard_results(flat_results)
    round0 = rounds[0]
    merged["cluster.shards"] = count
    merged["cluster.replication"] = spec.replication
    merged["cluster.rounds"] = len(rounds)
    merged["cluster.writes_attempted"] = sum(
        r["metrics"]["write_ops"] for r in round0)
    merged["cluster.writes_failed"] = sum(
        r["metrics"]["write_failures"] for r in round0)
    merged["cluster.reads_attempted"] = len(read_keys)
    merged["cluster.reads_verified_total"] = sum(
        r["metrics"]["reads_verified"] for r in flat_results)
    merged["cluster.read_corruptions_total"] = sum(
        r["metrics"]["read_corruptions"] for r in flat_results)
    merged["cluster.reads_failed_over"] = failed_over
    merged["cluster.reads_lost"] = lost
    merged["cluster.sim_seconds_total"] = round(
        sum(r["metrics"]["sim_seconds"] for r in round0), 9)
    merged = dict(sorted(merged.items()))

    total_ops = (merged["cluster.writes_attempted"]
                 + merged["cluster.reads_attempted"])
    wall = {
        "wall_seconds": round(wall_seconds, 3),
        "ops_per_sec": (round(total_ops / wall_seconds, 1)
                        if wall_seconds else 0.0),
        "workers": worker_count,
        "cpu_count": os.cpu_count(),
        "shard_wall_seconds_max": round(
            max(r["wall_seconds"] for r in flat_results), 3),
    }
    return ClusterResult(spec=spec, merged=merged, wall=wall,
                         rounds=rounds)


def run_and_report_cluster(spec: ClusterSpec,
                           name: Optional[str] = None,
                           workers: Optional[int] = None,
                           trace_out: Optional[str] = None) -> ClusterResult:
    """:func:`run_cluster` plus the standard results files."""
    # Imported here: benchhelpers imports repro.stack at module scope
    # and the report path is CLI/bench-only.
    from repro.benchhelpers import report
    result = run_cluster(spec, workers=workers, trace_out=trace_out)
    label = name or spec.name
    effective = spec.workers if workers is None else workers
    lines = [f"Cluster run: {label} ({spec.num_shards} shards, "
             f"router={spec.router}, replication={spec.replication}, "
             f"workers={effective})"]
    table = dict(result.merged)
    table.update(result.wall)
    width = max(18, max((len(key) for key in table), default=0))
    lines.extend(f"  {key:>{width}s} = {value}"
                 for key, value in table.items())
    report(label, lines, metrics=table)
    return result
