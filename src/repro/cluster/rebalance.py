"""The rebalancer: minimal data-movement plans for membership changes.

The router answers "where does this key live *now*"; the rebalancer
answers "which replicas must copy what" when a shard joins or leaves.
It diffs the replica sets of a concrete key population across the
membership change and pairs every lost replica with a gained one, so a
plan is exactly the background copy traffic a deployment would run —
and its size is the movement-minimality witness the property tests
check: no key moves unless its replica set actually involves the added
or removed shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Move:
    """Copy *key*'s replica from *source* to *dest* (source may be -1
    when a key gains a replica without losing one, e.g. R grew into the
    new shard; dest may be -1 for a pure drop)."""

    key: object
    source: int
    dest: int


@dataclass
class RebalancePlan:
    """Everything a membership change moves, for one key population."""

    kind: str                       # "add" | "remove"
    shard_id: int
    moves: List[Move] = field(default_factory=list)
    #: Keys whose replica set was untouched (the majority, if the
    #: router is any good).
    unmoved: int = 0

    @property
    def moved_keys(self) -> Tuple[object, ...]:
        seen: List[object] = []
        last = object()
        for move in self.moves:
            if move.key != last:
                seen.append(move.key)
                last = move.key
        return tuple(seen)

    def moved_fraction(self) -> float:
        total = len(self.moved_keys) + self.unmoved
        return len(self.moved_keys) / total if total else 0.0


class Rebalancer:
    """Plans (and applies to the router) shard add/remove.

    The router mutates in place — after ``add_shard`` returns, new
    traffic already routes to the grown fleet; the returned plan is the
    background copy work that makes the data match the routing.  The
    cluster runner executes plans offline (between runs); a live system
    would drain them from a queue.
    """

    def __init__(self, router):
        self.router = router

    def _diff(self, kind: str, shard_id: int,
              before: Dict[object, Tuple[int, ...]]) -> RebalancePlan:
        plan = RebalancePlan(kind=kind, shard_id=shard_id)
        for key, old in before.items():
            new = self.router.replicas(key)
            if new == old:
                plan.unmoved += 1
                continue
            lost = [shard for shard in old if shard not in new]
            gained = [shard for shard in new if shard not in old]
            for index in range(max(len(lost), len(gained))):
                plan.moves.append(Move(
                    key=key,
                    source=lost[index] if index < len(lost) else -1,
                    dest=gained[index] if index < len(gained) else -1))
        return plan

    def add_shard(self, shard_id: int,
                  keys: Iterable[object]) -> RebalancePlan:
        """Grow the fleet by *shard_id*; plan the copies for *keys*."""
        before = {key: self.router.replicas(key) for key in keys}
        self.router.add_shard(shard_id)
        return self._diff("add", shard_id, before)

    def remove_shard(self, shard_id: int,
                     keys: Iterable[object]) -> RebalancePlan:
        """Retire *shard_id*; plan the re-replication for *keys*.

        The plan's sources are surviving replicas wherever one exists —
        a retired-then-unreachable shard must not be the only copy
        source — so a move's ``source`` is the removed shard only when
        it held the sole replica (impossible for replication >= 2).
        """
        before = {key: self.router.replicas(key) for key in keys}
        self.router.remove_shard(shard_id)
        plan = self._diff("remove", shard_id, before)
        # Prefer surviving sources: any move sourced at the removed
        # shard re-points to a surviving replica of the same key.
        survivors: Dict[object, List[int]] = {
            key: [shard for shard in old if shard != shard_id]
            for key, old in before.items()}
        for index, move in enumerate(plan.moves):
            if move.source == shard_id and survivors[move.key]:
                plan.moves[index] = Move(key=move.key,
                                         source=survivors[move.key][0],
                                         dest=move.dest)
        return plan


def assert_minimal(plan: RebalancePlan,
                   before: Dict[object, Tuple[int, ...]],
                   after: Dict[object, Tuple[int, ...]]) -> None:
    """Raise :class:`ReproError` unless *plan* is movement-minimal:
    every moved key's change involves the added/removed shard itself.

    Shared by the property tests and the cluster guard, so "the
    rebalancer moves only the minimal key range" is an executable claim
    rather than a docstring.
    """
    for key in plan.moved_keys:
        old, new = set(before[key]), set(after[key])
        if plan.kind == "add" and plan.shard_id not in new:
            raise ReproError(
                f"non-minimal rebalance: key {key!r} moved "
                f"({sorted(old)} -> {sorted(new)}) without gaining "
                f"shard {plan.shard_id}")
        if plan.kind == "remove" and plan.shard_id not in old:
            raise ReproError(
                f"non-minimal rebalance: key {key!r} moved "
                f"({sorted(old)} -> {sorted(new)}) but never lived on "
                f"shard {plan.shard_id}")
