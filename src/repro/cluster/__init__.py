"""``repro.cluster``: sharded multi-device fleets behind a router.

One :class:`ClusterSpec` declares N message-isolated
:class:`~repro.stack.StackSpec` shards (each with its own simulator
kernel, OCSSD device and FTL), a routing policy (consistent-hash ring
or contiguous ranges) with R-way replication, and a cluster-level
workload.  :func:`run_cluster` executes the shards serially or on
parallel worker processes; both merge to bit-identical metrics.
``python -m repro.cluster cluster.json`` runs a declared fleet and
writes the standard results files.
"""

from repro.cluster.merge import merge_shard_results, shard_prefix
from repro.cluster.rebalance import (
    Move, RebalancePlan, Rebalancer, assert_minimal)
from repro.cluster.router import (
    HashRing, RangeRouter, build_router, key_point, stable_hash)
from repro.cluster.runner import (
    ClusterResult, WALL_KEYS, payload_for, run_and_report_cluster,
    run_cluster)
from repro.cluster.spec import ClusterSpec, ClusterWorkloadSpec, ROUTERS

__all__ = [
    "ClusterResult",
    "ClusterSpec",
    "ClusterWorkloadSpec",
    "HashRing",
    "Move",
    "RangeRouter",
    "RebalancePlan",
    "Rebalancer",
    "ROUTERS",
    "WALL_KEYS",
    "assert_minimal",
    "build_router",
    "key_point",
    "merge_shard_results",
    "payload_for",
    "run_and_report_cluster",
    "run_cluster",
    "shard_prefix",
    "stable_hash",
]
