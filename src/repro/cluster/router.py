"""Key routing across shards: consistent-hash ring and range router.

Both routers answer one question — ``replicas(key)``: the R distinct
shards a key lives on, primary first — and support shard add/remove
with *minimal movement*: a membership change only re-homes keys whose
replica set actually involves the added or removed shard (the property
``tests/test_cluster.py`` asserts over seeded key populations).

All hashing is :func:`stable_hash` (BLAKE2s, 64-bit).  The builtin
``hash()`` is process-salted and would silently break the
serial-vs-parallel bit-identity contract, so it must never route keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from repro.errors import ReproError

#: The shared 64-bit key space both routers partition.
SPACE = 1 << 64


def stable_hash(token: object) -> int:
    """A process-stable 64-bit point for *token* (BLAKE2s, not hash())."""
    digest = hashlib.blake2s(str(token).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def key_point(key: object) -> int:
    """Where *key* lands in the shared 64-bit space."""
    return stable_hash(f"key:{key}")


class HashRing:
    """Consistent-hash ring with virtual nodes and R-way replication.

    Each shard owns ``vnodes`` points on the ring; a key's replicas are
    the first R *distinct* shards at or clockwise of the key's point.
    Adding a shard steals only the ranges its new points cover; removing
    one hands its ranges to the existing successors — in both cases a
    key's replica set changes only if it gains the added (or loses the
    removed) shard.
    """

    def __init__(self, shard_ids: Iterable[int], vnodes: int = 64,
                 replication: int = 1):
        if vnodes < 1:
            raise ReproError(f"vnodes must be >= 1, got {vnodes}")
        if replication < 1:
            raise ReproError(
                f"replication must be >= 1, got {replication}")
        self.vnodes = vnodes
        self.replication = replication
        self._points: List[Tuple[int, int]] = []   # sorted (point, shard)
        self._shards: set = set()
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    @property
    def shards(self) -> frozenset:
        return frozenset(self._shards)

    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ReproError(f"shard {shard_id} is already on the ring")
        self._shards.add(shard_id)
        for vnode in range(self.vnodes):
            point = stable_hash(f"shard:{shard_id}:vnode:{vnode}")
            bisect.insort(self._points, (point, shard_id))

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ReproError(f"shard {shard_id} is not on the ring")
        self._shards.remove(shard_id)
        self._points = [(point, shard)
                        for point, shard in self._points
                        if shard != shard_id]

    def replicas(self, key: object) -> Tuple[int, ...]:
        """The R distinct shards for *key*, primary first."""
        count = self.replication
        if count > len(self._shards):
            raise ReproError(
                f"replication {count} exceeds the {len(self._shards)} "
                f"shard(s) on the ring")
        points = self._points
        index = bisect.bisect_right(points, (key_point(key), -1))
        found: List[int] = []
        seen = set()
        for step in range(len(points)):
            shard = points[(index + step) % len(points)][1]
            if shard not in seen:
                seen.add(shard)
                found.append(shard)
                if len(found) == count:
                    break
        return tuple(found)

    def primary(self, key: object) -> int:
        return self.replicas(key)[0]


class RangeRouter:
    """Contiguous hash ranges, one or more per shard.

    The 64-bit space starts as an equal partition over the shards in id
    order; a key's primary is the owner of the range containing its
    point, and its further replicas are the owners of the next distinct
    ranges clockwise (so replication survives range splits unchanged).
    ``add_shard`` splits the largest range and hands the upper half to
    the new shard — only keys in that half change primary; ``remove_shard``
    merges each of the leaving shard's ranges into its predecessor.
    """

    def __init__(self, shard_ids: Iterable[int], replication: int = 1):
        ids = list(shard_ids)
        if not ids:
            raise ReproError("a RangeRouter needs at least one shard")
        if replication < 1:
            raise ReproError(
                f"replication must be >= 1, got {replication}")
        self.replication = replication
        count = len(ids)
        #: Parallel sorted lists: range *starts* and their owner shards;
        #: range i spans [start[i], start[i+1]) circularly.
        self._starts: List[int] = [index * SPACE // count
                                   for index in range(count)]
        self._owners: List[int] = list(ids)
        self._shards: set = set(ids)

    @property
    def shards(self) -> frozenset:
        return frozenset(self._shards)

    def assignment(self) -> Tuple[Tuple[int, int], ...]:
        """The current ``(range_start, owner_shard)`` table."""
        return tuple(zip(self._starts, self._owners))

    def _range_index(self, point: int) -> int:
        return bisect.bisect_right(self._starts, point) - 1

    def replicas(self, key: object) -> Tuple[int, ...]:
        count = self.replication
        if count > len(self._shards):
            raise ReproError(
                f"replication {count} exceeds the {len(self._shards)} "
                f"live shard(s)")
        owners = self._owners
        index = self._range_index(key_point(key))
        found: List[int] = []
        seen = set()
        for step in range(len(owners)):
            shard = owners[(index + step) % len(owners)]
            if shard not in seen:
                seen.add(shard)
                found.append(shard)
                if len(found) == count:
                    break
        return tuple(found)

    def primary(self, key: object) -> int:
        return self.replicas(key)[0]

    def add_shard(self, shard_id: int) -> Tuple[int, int]:
        """Split the largest range; returns the ``[lo, hi)`` span moved
        to the new shard (ties break on the lowest start, so splits are
        deterministic)."""
        if shard_id in self._shards:
            raise ReproError(f"shard {shard_id} is already routed")
        widths = [
            (self._starts[(index + 1) % len(self._starts)]
             - self._starts[index]) % SPACE or SPACE
            for index in range(len(self._starts))]
        largest = max(range(len(widths)), key=lambda i: (widths[i], -i))
        lo = self._starts[largest]
        width = widths[largest]
        mid = (lo + width // 2) % SPACE
        hi = (lo + width) % SPACE
        self._starts.insert(largest + 1, mid)
        self._owners.insert(largest + 1, shard_id)
        self._shards.add(shard_id)
        return (mid, hi)

    def remove_shard(self, shard_id: int) -> None:
        """Merge each of the shard's ranges into its predecessor."""
        if shard_id not in self._shards:
            raise ReproError(f"shard {shard_id} is not routed")
        if len(self._shards) == 1:
            raise ReproError("cannot remove the last shard")
        self._shards.remove(shard_id)
        keep_starts: List[int] = []
        keep_owners: List[int] = []
        for start, owner in zip(self._starts, self._owners):
            if owner != shard_id:
                keep_starts.append(start)
                keep_owners.append(owner)
        # A leaving shard's range merges into its predecessor simply by
        # dropping its start boundary; the wrap-around range (a leaving
        # shard owning the first range) falls to the last surviving
        # owner automatically, because range 0 is reached via the
        # circular scan from the final start.
        if keep_starts[0] != 0:
            # Keep the table anchored at 0 so lookups before the first
            # kept start resolve to the (circular) last range's owner.
            keep_starts.insert(0, 0)
            keep_owners.insert(0, keep_owners[-1])
        self._starts = keep_starts
        self._owners = keep_owners


def build_router(kind: str, shard_ids: Iterable[int], replication: int = 1,
                 vnodes: int = 64):
    """The router a :class:`~repro.cluster.spec.ClusterSpec` names."""
    if kind == "hash":
        return HashRing(shard_ids, vnodes=vnodes, replication=replication)
    if kind == "range":
        return RangeRouter(shard_ids, replication=replication)
    raise ReproError(f"unknown router kind {kind!r}")
