"""Deterministic merge of per-shard worker results into one view.

Worker processes ship back plain dicts (scalar metrics plus an optional
:meth:`~repro.obs.metrics.MetricsRegistry.dump`).  The merge is pure
data-plumbing — sort, prefix, fold — so the merged metrics of a run are
a function of the shard results alone: the serial runner and any
worker-count parallel runner produce bit-identical merged dicts, which
is the property the cluster guard and determinism suite pin.

Metric names follow the obs convention with the shard as the leading
namespace: ``cluster.shard3.read_ops``, and for failover retry rounds
``cluster.shard3.retry1.read_ops``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import MetricsRegistry


def shard_prefix(shard: int, round_no: int) -> str:
    """The metric namespace for one shard execution."""
    if round_no == 0:
        return f"cluster.shard{shard}."
    return f"cluster.shard{shard}.retry{round_no}."


def merge_shard_results(results: List[dict]) -> Dict[str, object]:
    """Fold worker result dicts into one sorted, deterministic dict.

    Scalar metrics land under their shard prefix verbatim; registry
    dumps merge through a fresh :class:`MetricsRegistry` (so histogram
    percentiles are computed over the union of raw samples, exactly as
    a single-process registry would have).
    """
    merged: Dict[str, object] = {}
    registry = MetricsRegistry()
    any_dump = False
    for result in sorted(results,
                         key=lambda r: (r["round"], r["shard"])):
        prefix = shard_prefix(result["shard"], result["round"])
        for key in sorted(result["metrics"]):
            merged[prefix + key] = result["metrics"][key]
        dump = result.get("registry")
        if dump:
            registry.merge(dump, prefix=prefix)
            any_dump = True
    if any_dump:
        merged.update(registry.flat())
    return dict(sorted(merged.items()))
