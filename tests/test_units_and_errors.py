"""Tests for the shared units/formatting helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import GIB, KIB, MIB, MS, SEC, US, fmt_bytes, fmt_time


class TestUnits:
    def test_byte_constants(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_time_constants(self):
        assert US == pytest.approx(1e-6)
        assert MS == pytest.approx(1e-3)
        assert SEC == 1.0

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(96 * KIB) == "96.0 KiB"
        assert fmt_bytes(24 * MIB) == "24.0 MiB"
        assert fmt_bytes(3 * GIB) == "3.0 GiB"
        assert "TiB" in fmt_bytes(5 * 1024 * GIB)

    def test_fmt_time(self):
        assert fmt_time(25 * US) == "25.0 us"
        assert fmt_time(1.5 * MS) == "1.50 ms"
        assert fmt_time(2.5) == "2.500 s"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.OutOfSpaceError, errors.FTLError)
        assert issubclass(errors.RecoveryError, errors.FTLError)
        assert issubclass(errors.TransactionError, errors.FTLError)

    def test_device_errors_are_not_ftl_errors(self):
        """Device-level faults and FTL-level faults stay distinguishable."""
        assert not issubclass(errors.MediaError, errors.FTLError)
        assert not issubclass(errors.WritePointerError, errors.FTLError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.ZoneError("zones are repro errors too")
