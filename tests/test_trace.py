"""Tests for the ``repro.trace`` subsystem.

Covers the three pillars end to end: the on-disk format (both codecs,
version/corruption errors), the capture sidecar (attach/detach, boundary
filtering, zero perturbation of the simulated timeline), deterministic
replay (bit-identical non-wall metrics on the same spec, cross-FTL
replay, recorded pacing, block-layer traces, cluster traces), and
calibration (synthetic ground-truth recovery within tolerance, held-out
evaluation, builtin profiles, the obs-registry bridge), plus the
``StackSpec.timing`` declarative wiring.
"""

import copy

import pytest

from repro.cluster import ClusterSpec, run_cluster
from repro.errors import ReproError
from repro.nand import CellType, NandTiming, SampledNandTiming, timing_for
from repro.obs import MetricsRegistry, Obs
from repro.sidecar import TRACE_SLOT
from repro.stack import StackSpec, build_stack
from repro.stack.runner import run_spec
from repro.trace import (
    TraceOp,
    TraceRecorder,
    TraceWorkload,
    builtin_profiles,
    evaluate,
    fit_profile,
    load_profile,
    profile_from_registry,
    read_trace,
    synth_profile,
    write_trace,
)

# A small LSM stack: 2 closed-loop clients fill then read (the shape the
# replay engine must reconstruct stream for stream, phase for phase).
HOST_SPEC = {
    "name": "trace-host",
    "geometry": {"num_groups": 2, "pus_per_group": 2,
                 "chunks_per_pu": 16, "pages_per_block": 6},
    "ftl": "lightlsm",
    "ftl_config": {"chunks_per_sstable": 4},
    "workload": {"kind": "fill_then_read_random", "clients": 2,
                 "ops_per_client": 40, "read_ops_per_client": 60},
}

# A bare OX-Block stack driven through the raw LBA API.
BLOCK_SPEC = {
    "name": "trace-block",
    "geometry": {"num_groups": 2, "pus_per_group": 2,
                 "chunks_per_pu": 16, "pages_per_block": 6},
    "ftl": "oxblock", "host": "none",
    "ftl_config": {"wal_chunk_count": 4, "ckpt_chunks_per_slot": 2},
    "workload": {"kind": "raw_fill_read", "fill_ops": 40, "read_ops": 300},
}

# Wall-clock-derived metrics may differ run to run; everything else is
# covered by the simulator's determinism contract.
WALL_KEYS = {"fill_ops_per_sec", "read_ops_per_sec", "ops_per_sec"}


def host_spec(**overrides) -> StackSpec:
    data = copy.deepcopy(HOST_SPEC)
    data.update(overrides)
    return StackSpec.from_dict(data)


def replay_spec(trace_path, base=HOST_SPEC, pacing="afap",
                **overrides) -> StackSpec:
    data = copy.deepcopy(base)
    data["name"] = data["name"] + "-replay"
    data["workload"] = {"kind": "trace", "trace": str(trace_path),
                        "pacing": pacing}
    data.update(overrides)
    return StackSpec.from_dict(data)


def sample_ops():
    return [
        TraceOp(t=0.0, layer="host", kind="put", stream="fill-0",
                key="k0001", size=1024, fill=65),
        TraceOp(t=0.001, layer="host", kind="barrier", stream="quiesce"),
        TraceOp(t=0.002, layer="host", kind="get", stream="readrand-0",
                key="k0001"),
        TraceOp(t=0.003, layer="block", kind="write", lba=48, sectors=24,
                fill=7),
        TraceOp(t=0.004, layer="cluster", kind="read", key="17"),
    ]


class TestTraceFormat:
    @pytest.mark.parametrize("suffix", [".jsonl", ".trace"])
    def test_round_trip(self, tmp_path, suffix):
        path = str(tmp_path / f"t{suffix}")
        meta = write_trace(path, sample_ops(), meta={"spec": {"x": 1}})
        assert meta["op_count"] == 5
        got_meta, got_ops = read_trace(path)
        assert got_ops == sample_ops()
        assert got_meta["spec"] == {"x": 1}
        assert got_meta["version"] == 1

    def test_codec_sniffed_not_suffix(self, tmp_path):
        # Binary bytes under a .jsonl name still decode (magic wins).
        jsonl_named = str(tmp_path / "t.jsonl")
        binary_named = str(tmp_path / "t.bin")
        write_trace(binary_named, sample_ops())
        with open(binary_named, "rb") as handle:
            blob = handle.read()
        with open(jsonl_named, "wb") as handle:
            handle.write(blob)
        __, ops = read_trace(jsonl_named)
        assert ops == sample_ops()

    def test_binary_is_smaller(self, tmp_path):
        import os
        ops = sample_ops() * 200
        jsonl = str(tmp_path / "t.jsonl")
        binary = str(tmp_path / "t.trace")
        write_trace(jsonl, ops)
        write_trace(binary, ops)
        assert os.path.getsize(binary) < os.path.getsize(jsonl)

    def test_not_a_trace_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write('{"some": "json"}\n')
        with pytest.raises(ReproError, match="not a repro.trace"):
            read_trace(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        open(path, "w").close()
        with pytest.raises(ReproError, match="empty"):
            read_trace(path)

    def test_unsupported_version(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write('{"format":"repro.trace","version":99}\n')
        with pytest.raises(ReproError, match="version 99"):
            read_trace(path)

    def test_truncated_binary_record(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace(path, sample_ops())
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:-3])
        with pytest.raises(ReproError, match="trace"):
            read_trace(path)

    def test_op_vocabulary_validated(self):
        with pytest.raises(ReproError, match="layer"):
            TraceOp(t=0.0, layer="nvme", kind="put").validate()
        with pytest.raises(ReproError, match="kind"):
            TraceOp(t=0.0, layer="host", kind="munge").validate()

    def test_payload_reconstruction(self):
        host = TraceOp(t=0.0, layer="host", kind="put", key="k",
                       size=8, fill=65)
        block = TraceOp(t=0.0, layer="block", kind="write", lba=0,
                        sectors=2, fill=7)
        assert host.payload() == b"A" * 8
        assert block.payload(4096) == bytes([7]) * 8192
        assert host.key_bytes() == b"k"


class TestTraceRecorder:
    def test_boundary_validated(self):
        with pytest.raises(ReproError, match="boundary"):
            TraceRecorder(boundary="nvme")

    def test_attach_detach_lifecycle(self):
        stack = build_stack(host_spec())
        assert stack.sim.trace is None
        recorder = TraceRecorder().attach(stack.device)
        assert stack.sim.trace is recorder
        assert getattr(stack.device, TRACE_SLOT) is recorder
        recorder.detach()
        assert stack.sim.trace is None
        assert getattr(stack.device, TRACE_SLOT) is None

    def test_boundary_filters_layers(self):
        host_only = TraceRecorder(boundary="host")
        block_only = TraceRecorder(boundary="block")

        class FakeSim:
            now = 0.5
        for recorder in (host_only, block_only):
            recorder.sim = FakeSim()
            recorder.host_op("put", key=b"k", value=b"AA", stream="s")
            recorder.block_op("write", lba=3, sectors=2, fill=9)
            recorder.barrier()
        assert [op.kind for op in host_only.ops] == ["put", "barrier"]
        assert [op.layer for op in block_only.ops] == ["block"]
        put = host_only.ops[0]
        assert (put.t, put.key, put.size, put.fill) == (0.5, "k", 2, 65)


class TestHostCaptureReplay:
    def test_recording_does_not_perturb_timeline(self, tmp_path):
        plain = run_spec(host_spec())
        recorded = run_spec(host_spec(), trace_out=str(tmp_path / "t.jsonl"))
        assert recorded.pop("trace_ops") > 0
        assert plain == recorded

    def test_replay_is_bit_identical(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        captured = run_spec(host_spec(), trace_out=trace)
        replayed = run_spec(replay_spec(trace))
        for key in set(captured) & set(replayed) - WALL_KEYS:
            assert replayed[key] == captured[key], key
        # 2 fill clients + 2 readrand clients, quiesce between phases.
        assert replayed["replay_streams"] == 4
        assert replayed["replay_phases"] == 2
        assert replayed["replay_ops"] == 2 * 40 + 2 * 60
        assert replayed["sim_seconds"] == captured["sim_seconds"]
        assert (replayed["events_processed"]
                == captured["events_processed"])

    def test_replay_across_ftl_personalities(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        captured = run_spec(host_spec(), trace_out=trace)
        other = run_spec(replay_spec(trace, ftl="zns", ftl_config={}))
        assert other["replay_ops"] == 200
        # A different FTL serves the same ops on a different timeline.
        assert other["sim_seconds"] != captured["sim_seconds"]

    def test_recorded_pacing(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        captured = run_spec(host_spec(), trace_out=trace)
        paced = run_spec(replay_spec(trace, pacing="recorded"))
        assert paced["replay_ops"] == 200
        # Recorded issue times can only hold ops back, never hurry them.
        assert paced["sim_seconds"] >= captured["sim_seconds"]

    def test_host_trace_needs_db_stack(self, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        run_spec(host_spec(), trace_out=trace)
        with pytest.raises(ReproError, match="DB-hosted"):
            run_spec(replay_spec(trace, base=BLOCK_SPEC))


class TestBlockCaptureReplay:
    def test_replay_is_bit_identical(self, tmp_path):
        trace = str(tmp_path / "t.trace")
        captured = run_spec(StackSpec.from_dict(copy.deepcopy(BLOCK_SPEC)),
                            trace_out=trace)
        replayed = run_spec(replay_spec(trace, base=BLOCK_SPEC))
        assert replayed["replay_ops"] == captured["trace_ops"] == 341
        assert replayed["sim_seconds"] == captured["sim_seconds"]
        assert (replayed["events_processed"]
                == captured["events_processed"])


class TestTraceWorkloadValidation:
    def test_cluster_trace_rejected(self):
        ops = [TraceOp(t=0.0, layer="cluster", kind="write", key="1")]
        with pytest.raises(ReproError, match="cluster"):
            TraceWorkload(ops)

    def test_mixed_layer_trace_rejected(self):
        ops = [TraceOp(t=0.0, layer="host", kind="put", key="k"),
               TraceOp(t=0.0, layer="block", kind="write", lba=0)]
        with pytest.raises(ReproError, match="mixed"):
            TraceWorkload(ops)

    def test_bad_pacing_rejected(self):
        with pytest.raises(ReproError, match="pacing"):
            TraceWorkload([], pacing="warp")


class TestClusterTrace:
    SPEC = {
        "name": "trace-cluster", "num_shards": 2, "seed": 3,
        "template": {
            "geometry": {"num_groups": 2, "pus_per_group": 2,
                         "chunks_per_pu": 16, "pages_per_block": 6},
            "ftl": "oxblock", "host": "none",
            "ftl_config": {"wal_chunk_count": 4,
                           "ckpt_chunks_per_slot": 2}},
        "workload": {"num_keys": 24, "read_ops": 48},
    }

    def test_capture_then_replay_merges_identically(self, tmp_path):
        trace = str(tmp_path / "cluster.jsonl")
        captured = run_cluster(ClusterSpec.from_dict(
            copy.deepcopy(self.SPEC)), trace_out=trace)
        data = copy.deepcopy(self.SPEC)
        data["workload"]["trace"] = trace
        replayed = run_cluster(ClusterSpec.from_dict(data))
        assert replayed.merged == captured.merged
        __, ops = read_trace(trace)
        assert all(op.layer == "cluster" for op in ops)
        assert sum(op.kind == "write" for op in ops) == 24
        assert sum(op.kind == "read" for op in ops) == 48


class TestCalibration:
    def test_recovers_synthetic_ground_truth(self):
        truth = timing_for(CellType.TLC)
        fit = fit_profile(synth_profile(truth, seed=1), jitter=True)
        held_out = synth_profile(truth, seed=2)
        errors = evaluate(fit.timing, held_out)
        assert errors["max"] < 0.05
        assert isinstance(fit.timing, SampledNandTiming)
        assert 0.05 < fit.timing.read_sigma < 0.12   # drawn at 0.08
        assert fit.timing.channel_bandwidth == pytest.approx(
            truth.channel_bandwidth, rel=0.05)

    def test_fit_without_jitter_is_deterministic_model(self):
        fit = fit_profile(synth_profile(timing_for(CellType.MLC), seed=4))
        assert type(fit.timing) is NandTiming
        assert fit.sigmas == {"read": 0.0, "program": 0.0, "erase": 0.0}

    def test_builtin_profiles_ship_and_fit(self):
        names = builtin_profiles()
        assert {"slc-reference", "mlc-reference", "tlc-reference",
                "qlc-reference"} <= set(names)
        for name in names:
            profile = load_profile(name)
            cell = CellType[str(profile["cell"]).upper()]
            fit = fit_profile(profile, jitter=True)
            assert fit.timing.read_latency == pytest.approx(
                timing_for(cell).read_latency, rel=0.05)

    def test_unknown_profile_lists_builtins(self):
        with pytest.raises(ReproError, match="tlc-reference"):
            load_profile("no-such-profile")

    def test_malformed_profiles_rejected(self):
        with pytest.raises(ReproError, match="format"):
            fit_profile({"format": "nope", "version": 1, "ops": {}})
        with pytest.raises(ReproError, match="version"):
            fit_profile({"format": "repro.timing_profile", "version": 9,
                         "ops": {"read": {"samples_s": [1e-5]}}})
        with pytest.raises(ReproError, match="samples"):
            fit_profile({"format": "repro.timing_profile", "version": 1,
                         "ops": {"read": {"samples_s": []}}})
        with pytest.raises(ReproError, match="op kind"):
            fit_profile({"format": "repro.timing_profile", "version": 1,
                         "ops": {"seek": {"samples_s": [1e-3]}}})

    def test_profile_from_obs_registry(self):
        spec = host_spec()
        stack = build_stack(spec)
        hub = Obs().attach(stack.device)
        run = stack.dbbench()
        run.fill_sequential(clients=1, ops_per_client=30)
        run.quiesce()   # flush the memtable so media programs happen
        hub.detach()
        profile = profile_from_registry(hub.metrics)
        fit = fit_profile(profile)
        truth = timing_for(CellType.TLC)
        assert fit.timing.program_latency == pytest.approx(
            truth.program_latency, rel=0.05)

    def test_empty_registry_rejected(self):
        with pytest.raises(ReproError, match="no nand"):
            profile_from_registry(MetricsRegistry())


def device_timing(spec):
    """The timing model the built device's chips actually carry."""
    device = build_stack(spec).device
    return next(iter(device.chips.values())).timing


class TestTimingSpec:
    def test_explicit_latency_overrides(self):
        timing = device_timing(host_spec(
            timing={"read_latency_us": 30.0,
                    "channel_mib_per_sec": 800.0}))
        assert timing.read_latency == pytest.approx(30e-6)
        assert timing.program_latency == pytest.approx(
            timing_for(CellType.TLC).program_latency)
        assert timing.channel_bandwidth == pytest.approx(800 * 2**20)

    def test_profile_resolution(self):
        timing = device_timing(host_spec(
            timing={"profile": "mlc-reference"}))
        assert timing.read_latency == pytest.approx(
            timing_for(CellType.MLC).read_latency, rel=0.05)

    def test_jitter_sigma_builds_sampled_timing(self):
        timing = device_timing(host_spec(
            timing={"jitter_sigma": 0.1, "seed": 5}))
        assert isinstance(timing, SampledNandTiming)
        assert timing.read_sigma == 0.1
        assert timing.seed == 5

    def test_spec_validation(self):
        with pytest.raises(ReproError, match="workload.trace"):
            host_spec(workload={"kind": "trace"})
        with pytest.raises(ReproError, match="pacing"):
            host_spec(workload={"kind": "trace", "trace": "t.jsonl",
                                "pacing": "warp"})
        with pytest.raises(ReproError, match="timing.jitter_sigma"):
            host_spec(timing={"jitter_sigma": -0.5})

    def test_timing_round_trips_through_dict(self):
        spec = host_spec(timing={"profile": "tlc-reference",
                                 "fit_jitter": True})
        again = StackSpec.from_dict(spec.to_dict())
        assert again.timing.profile == "tlc-reference"
        assert again.timing.fit_jitter is True
        bare = host_spec()
        assert "timing" not in bare.to_dict()
