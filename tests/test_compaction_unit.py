"""Unit tests for the compaction machinery: picking, cursors, merging."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import MemEnv, TOMBSTONE
from repro.lsm.compaction import (
    MemCursor,
    TableCursor,
    TableRef,
    level_max_tables,
    merge_into_proc,
    pick_compaction,
)
from repro.lsm.sstable import build_sstable
from repro.sim import Simulator


def table_ref(sstable_id, items, block_size=256):
    data = build_sstable(sstable_id, sstable_id, block_size, iter(items))
    return TableRef(handle=None, meta=data.meta), data


def make_levels(counts_and_ranges):
    """Build a level structure from [(level, [(id, first, last)])]."""
    levels = [[] for __ in range(4)]
    for level, specs in counts_and_ranges:
        for sstable_id, first, last in specs:
            ref, __ = table_ref(sstable_id,
                                [(first, b"x"), (last, b"y")]
                                if first != last else [(first, b"x")])
            levels[level].append(ref)
    return levels


class TestPickCompaction:
    def test_no_work(self):
        levels = make_levels([(0, [(1, b"a", b"b")])])
        assert pick_compaction(levels, l0_trigger=4, multiplier=4) is None

    def test_l0_trigger(self):
        levels = make_levels([
            (0, [(i, b"a", b"z") for i in range(1, 5)]),
            (1, [(10, b"c", b"d"), (11, b"x", b"y")]),
        ])
        pick = pick_compaction(levels, l0_trigger=4, multiplier=4)
        assert pick is not None
        assert pick.target_level == 1
        # All of L0 plus the overlapping L1 tables.
        assert len(pick.inputs) == 6

    def test_l0_skips_non_overlapping_l1(self):
        levels = make_levels([
            (0, [(i, b"a", b"c") for i in range(1, 5)]),
            (1, [(10, b"x", b"z")]),
        ])
        pick = pick_compaction(levels, l0_trigger=4, multiplier=4)
        assert len(pick.inputs) == 4   # L1 table out of range

    def test_deep_level_overflow(self):
        levels = make_levels([
            (1, [(i, bytes([96 + i]), bytes([97 + i]))
                 for i in range(1, 7)]),   # 6 > multiplier 4
        ])
        pick = pick_compaction(levels, l0_trigger=99, multiplier=4)
        assert pick is not None
        assert pick.target_level == 2
        assert pick.reason == "l1-size"

    def test_level_budgets(self):
        assert level_max_tables(1, 4) == 4
        assert level_max_tables(2, 4) == 16
        assert level_max_tables(3, 2) == 8


class TestCursors:
    def test_mem_cursor_iterates_in_order(self):
        sim = Simulator()
        cursor = MemCursor([(b"a", b"1"), (b"b", b"2")])

        def run():
            yield from cursor.open_proc()
            seen = []
            while cursor.current is not None:
                seen.append(cursor.current)
                yield from cursor.advance_proc()
            return seen

        assert sim.run_until(sim.spawn(run())) == [(b"a", b"1"),
                                                   (b"b", b"2")]

    def test_table_cursor_streams_blocks(self):
        sim = Simulator()
        env = MemEnv(sim, read_latency=1e-6)
        items = [(f"k{i:04d}".encode(), str(i).encode())
                 for i in range(100)]
        ref, data = table_ref(1, items)

        def build():
            writer = yield from env.create_writer_proc(1, 0, 256)
            for block in data.blocks:
                yield from writer.append_block_proc(block)
            handle = yield from writer.finish_proc(b"meta")
            return handle

        ref.handle = sim.run_until(sim.spawn(build()))
        cursor = TableCursor(env, ref, 256, sim, readahead=True)

        def scan():
            yield from cursor.open_proc()
            seen = []
            while cursor.current is not None:
                seen.append(cursor.current)
                yield from cursor.advance_proc()
            return seen

        assert sim.run_until(sim.spawn(scan())) == items


class TestMergeInto:
    def run_merge(self, cursor_items, drop_tombstones=False):
        sim = Simulator()
        cursors = [MemCursor(items) for items in cursor_items]
        out = []

        def sink(key, value):
            out.append((key, value))
            return
            yield

        def run():
            emitted = yield from merge_into_proc(cursors, sink,
                                                 drop_tombstones)
            return emitted

        count = sim.run_until(sim.spawn(run()))
        return count, out

    def test_merge_two_sorted_streams(self):
        count, out = self.run_merge([
            [(b"a", b"1"), (b"c", b"3")],
            [(b"b", b"2"), (b"d", b"4")],
        ])
        assert count == 4
        assert [k for k, __ in out] == [b"a", b"b", b"c", b"d"]

    def test_newest_cursor_wins_duplicates(self):
        __, out = self.run_merge([
            [(b"k", b"new")],
            [(b"k", b"old")],
        ])
        assert out == [(b"k", b"new")]

    def test_tombstones_dropped_when_asked(self):
        count, out = self.run_merge([
            [(b"a", TOMBSTONE), (b"b", b"2")],
        ], drop_tombstones=True)
        assert count == 1
        assert out == [(b"b", b"2")]

    def test_tombstone_shadows_older_value(self):
        __, out = self.run_merge([
            [(b"k", TOMBSTONE)],
            [(b"k", b"old")],
        ], drop_tombstones=True)
        assert out == []

    def test_empty_inputs(self):
        count, out = self.run_merge([[], []])
        assert count == 0
        assert out == []


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.dictionaries(st.binary(min_size=1, max_size=8),
                    st.binary(max_size=8), max_size=30),
    min_size=1, max_size=5))
def test_merge_property_sorted_dedup_newest_first(stream_dicts):
    """Property: merging sorted streams (newest first) yields the sorted
    union with the newest value per key."""
    sim = Simulator()
    cursors = [MemCursor(sorted(d.items())) for d in stream_dicts]
    expected = {}
    for d in reversed(stream_dicts):    # oldest first so newest overwrites
        expected.update(d)
    out = []

    def sink(key, value):
        out.append((key, value))
        return
        yield

    sim.run_until(sim.spawn(merge_into_proc(cursors, sink, False)))
    assert out == sorted(expected.items())
