"""Tests for grant abandonment: interrupted waiters must not leak
resource capacity (the bug class that deadlocked recovery after a crash
mid-checkpoint)."""

import pytest

from repro.sim import Interrupt, Resource, Simulator


def holder(sim, resource, duration):
    grant = resource.request()
    yield grant
    try:
        yield sim.timeout(duration)
    finally:
        resource.release()


def test_interrupt_while_waiting_does_not_leak():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    sim.spawn(holder(sim, resource, 5.0))

    def waiter(sim):
        grant = resource.request()
        yield grant          # never granted before the interrupt
        resource.release()   # pragma: no cover

    victim = sim.spawn(waiter(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        victim.interrupt("die")

    sim.spawn(killer(sim))

    # A third process must still get the resource after the holder leaves.
    acquired = []

    def third(sim):
        yield sim.timeout(2.0)
        grant = resource.request()
        yield grant
        acquired.append(sim.now)
        resource.release()

    sim.spawn(third(sim))
    with pytest.raises(Interrupt):
        sim.run()
    sim.run()
    assert acquired == [5.0]
    assert resource.in_use == 0


def test_interrupt_after_grant_returns_unit():
    """Interrupt racing a grant: the unit must come back."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    first = sim.spawn(holder(sim, resource, 1.0))

    granted = []

    def waiter(sim):
        grant = resource.request()
        yield grant
        granted.append("waiter")   # pragma: no cover
        resource.release()

    victim = sim.spawn(waiter(sim))

    def killer(sim):
        # Interrupt exactly when the holder releases (t=1.0): the grant
        # may already be triggered but not yet consumed.
        yield sim.timeout(1.0)
        victim.interrupt()

    sim.spawn(killer(sim))

    def third(sim):
        yield sim.timeout(1.5)
        grant = resource.request()
        yield grant
        granted.append("third")
        resource.release()

    sim.spawn(third(sim))
    try:
        sim.run()
    except Interrupt:
        sim.run()
    assert "third" in granted
    assert resource.in_use == 0


def test_priority_requests_jump_the_queue():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def requester(sim, tag, priority, delay):
        yield sim.timeout(delay)
        grant = resource.request(priority)
        yield grant
        order.append(tag)
        try:
            yield sim.timeout(1.0)
        finally:
            resource.release()

    sim.spawn(requester(sim, "holder", 0, 0.0))
    sim.spawn(requester(sim, "bulk-1", 0, 0.1))
    sim.spawn(requester(sim, "bulk-2", 0, 0.2))
    sim.spawn(requester(sim, "urgent", -1, 0.3))
    sim.run()
    assert order == ["holder", "urgent", "bulk-1", "bulk-2"]


def test_equal_priority_is_fifo():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def requester(sim, tag, delay):
        yield sim.timeout(delay)
        grant = resource.request()
        yield grant
        order.append(tag)
        try:
            yield sim.timeout(1.0)
        finally:
            resource.release()

    for index, tag in enumerate("abcd"):
        sim.spawn(requester(sim, tag, 0.01 * index))
    sim.run()
    assert order == ["a", "b", "c", "d"]
