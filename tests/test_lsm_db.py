"""Integration tests for the LSM engine over the in-memory env, including
a model-based property test against a plain dict."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import DB, DBConfig, MemEnv
from repro.sim import Simulator


def make_db(manifest_required=True, **config_overrides):
    sim = Simulator()
    env = MemEnv(sim, read_latency=1e-6, write_latency=1e-6,
                 manifest_required=manifest_required)
    defaults = dict(block_size=1024, write_buffer_bytes=16 * 1024,
                    sstable_data_bytes=16 * 1024)
    defaults.update(config_overrides)
    return sim, env, DB(env, DBConfig(**defaults), sim)


def key(i):
    return f"{i:012d}".encode()


class TestBasicOperations:
    def test_put_get(self):
        __, __e, db = make_db()
        db.put(b"alpha", b"1")
        assert db.get(b"alpha") == b"1"
        assert db.get(b"beta") is None

    def test_overwrite(self):
        __, __e, db = make_db()
        db.put(b"k", b"old")
        db.put(b"k", b"new")
        assert db.get(b"k") == b"new"

    def test_delete(self):
        __, __e, db = make_db()
        db.put(b"k", b"v")
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_get_after_flush(self):
        __, __e, db = make_db()
        for i in range(100):
            db.put(key(i), str(i).encode())
        db.flush()
        db.wait_idle()
        assert db.level_sizes()[0] >= 1 or sum(db.level_sizes()) >= 1
        for i in range(100):
            assert db.get(key(i)) == str(i).encode()

    def test_delete_shadows_flushed_value(self):
        __, __e, db = make_db()
        db.put(b"k", b"v")
        db.flush()
        db.wait_idle()
        db.delete(b"k")
        assert db.get(b"k") is None
        db.flush()
        db.wait_idle()
        assert db.get(b"k") is None

    def test_overwrite_across_levels(self):
        """The newest version must win regardless of where it lives."""
        __, __e, db = make_db()
        for round_ in range(5):
            for i in range(60):
                db.put(key(i), f"{round_}-{i}".encode())
            db.flush()
            db.wait_idle()
        for i in range(60):
            assert db.get(key(i)) == f"4-{i}".encode()


class TestCompaction:
    def test_compaction_triggers_and_reduces_l0(self):
        sim, __, db = make_db(l0_compaction_trigger=3)
        for round_ in range(6):
            for i in range(60):
                db.put(key(i), bytes([round_]) * 16)
            db.flush()
        db.wait_idle()
        assert db.stats.compactions >= 1
        assert len(db.levels[0]) < 3

    def test_three_levels_emerge_under_load(self):
        """The paper's fill leaves L0, L1, L2 populated."""
        sim, __, db = make_db(l0_compaction_trigger=2,
                              level_size_multiplier=2)
        for round_ in range(25):
            for i in range(200):
                db.put(key((round_ * 200 + i) * 7 % 4000),
                       bytes([round_]) * 64)
            db.flush()
        db.wait_idle()
        populated = [bool(tables) for tables in db.levels]
        assert sum(populated) >= 3

    def test_compaction_preserves_all_data(self):
        sim, __, db = make_db(l0_compaction_trigger=2)
        expected = {}
        for round_ in range(8):
            for i in range(80):
                value = f"{round_}:{i}".encode()
                db.put(key(i), value)
                expected[key(i)] = value
            db.flush()
        db.wait_idle()
        for k, v in expected.items():
            assert db.get(k) == v

    def test_tombstones_dropped_at_bottom(self):
        sim, __, db = make_db(l0_compaction_trigger=2)
        for i in range(60):
            db.put(key(i), b"v")
        db.flush()
        for i in range(60):
            db.delete(key(i))
        db.flush()
        for __r in range(4):
            for i in range(60, 120):
                db.put(key(i), b"w")
            db.flush()
        db.wait_idle()
        assert db.scan() == 60   # only the live keys remain visible
        for i in range(60):
            assert db.get(key(i)) is None


class TestScan:
    def test_scan_returns_sorted_unique(self):
        __, __e, db = make_db()
        seen = []
        for i in range(100):
            db.put(key(i % 40), str(i).encode())
        db.flush()
        db.wait_idle()
        count = db.scan(on_entry=lambda k, __v: seen.append(k))
        assert count == 40
        assert seen == sorted(seen)
        assert len(set(seen)) == 40

    def test_scan_merges_memtable_and_disk(self):
        __, __e, db = make_db()
        db.put(key(1), b"disk")
        db.flush()
        db.wait_idle()
        db.put(key(2), b"mem")
        collected = {}
        db.scan(on_entry=lambda k, v: collected.update({k: v}))
        assert collected == {key(1): b"disk", key(2): b"mem"}

    def test_scan_limit(self):
        __, __e, db = make_db()
        for i in range(50):
            db.put(key(i), b"v")
        assert db.scan(limit=10) == 10


class TestStallsAndRecovery:
    def test_write_stalls_recorded_under_pressure(self):
        sim, env, db = make_db(l0_compaction_trigger=2,
                               l0_slowdown_trigger=2, l0_stop_trigger=3,
                               write_buffer_bytes=4 * 1024)
        for i in range(600):
            db.put(key(i), b"x" * 64)
        db.wait_idle()
        assert db.stats.slowdown_puts > 0 or db.stats.stall_seconds > 0

    def test_reopen_from_manifest(self):
        sim, env, db = make_db()
        for i in range(200):
            db.put(key(i), str(i).encode())
        db.close()
        db2 = DB.open(env, DBConfig(block_size=1024,
                                    write_buffer_bytes=16 * 1024,
                                    sstable_data_bytes=16 * 1024), sim)
        for i in range(200):
            assert db2.get(key(i)) == str(i).encode()

    def test_manifest_governs_visibility(self):
        """A table written but never logged in the MANIFEST is invisible
        after reopen — the POSIX-env behaviour LightLSM does away with."""
        sim, env, db = make_db()
        for i in range(50):
            db.put(key(i), b"v")
        db.close()
        env.manifest.clear()     # simulate a lost MANIFEST
        db2 = DB.open(env, DBConfig(block_size=1024,
                                    write_buffer_bytes=16 * 1024,
                                    sstable_data_bytes=16 * 1024), sim)
        assert db2.get(key(0)) is None

    def test_rate_limiter_slows_background_io(self):
        sim_fast, __, fast = make_db()
        sim_slow, __e, slow = make_db(rate_limit_bytes_per_sec=20 * 1024)
        for db, sim in ((fast, sim_fast), (slow, sim_slow)):
            for i in range(300):
                db.put(key(i), b"x" * 128)
            db.flush()
            db.wait_idle()
        assert slow.limiter.total_wait > 0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 30),
                          st.binary(min_size=1, max_size=32)),
                min_size=1, max_size=120))
def test_db_matches_dict_model(operations):
    """Model-based property: the DB behaves like a dict under any
    interleaving of puts, deletes and flushes."""
    __, __e, db = make_db(write_buffer_bytes=2 * 1024)
    model = {}
    for is_put, key_index, value in operations:
        k = key(key_index)
        if is_put:
            db.put(k, value)
            model[k] = value
        else:
            db.delete(k)
            model.pop(k, None)
    db.flush()
    db.wait_idle()
    for k, v in model.items():
        assert db.get(k) == v
    for key_index in range(31):
        k = key(key_index)
        if k not in model:
            assert db.get(k) is None
    collected = {}
    db.scan(on_entry=lambda k, v: collected.update({k: v}))
    assert collected == model
