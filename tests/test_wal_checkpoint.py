"""Focused tests for the WAL and checkpoint machinery: epochs, torn
tails, truncation, slot alternation."""

import pytest

from repro.errors import FTLError
from repro.nand import FlashGeometry
from repro.ocssd import DeviceGeometry, OpenChannelSSD, Ppa
from repro.ox.ftl.checkpoint import CheckpointManager
from repro.ox.ftl.mapping import PageMap
from repro.ox.ftl.metadata import ChunkTable
from repro.ox.ftl.provisioning import MetadataLayout
from repro.ox.ftl.serial import NO_PPA
from repro.ox.ftl.wal import (
    WalAppender,
    WalReader,
    committed_transactions,
)
from repro.ox.media import MediaManager


def make_media(chunks=16, pages=6):
    geometry = DeviceGeometry(
        num_groups=2, pus_per_group=2,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    return device, MediaManager(device)


def run(media, gen):
    return media.sim.run_until(media.sim.spawn(gen))


def layout_for(media):
    return MetadataLayout.build(media.geometry, wal_chunk_count=4,
                                ckpt_chunks_per_slot=1)


class TestWal:
    def test_append_flush_read_roundtrip(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_map_update(1, [(10, 100, NO_PPA)])
        appender.append_commit(1)
        run(media, appender.flush_proc())
        reader = WalReader(media, layout.wal_chunks, epoch=0)
        records = run(media, reader.read_proc())
        txns = committed_transactions(iter(records))
        assert txns == [(1, [(10, 100, NO_PPA)])]

    def test_uncommitted_transaction_ignored(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_map_update(1, [(10, 100, NO_PPA)])
        appender.append_commit(1)
        appender.append_map_update(2, [(20, 200, NO_PPA)])  # no commit
        run(media, appender.flush_proc())
        reader = WalReader(media, layout.wal_chunks, epoch=0)
        records = run(media, reader.read_proc())
        txns = committed_transactions(iter(records))
        assert [txn_id for txn_id, __ in txns] == [1]

    def test_stale_epoch_rejected(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=3)
        appender.append_commit(1)
        run(media, appender.flush_proc())
        reader = WalReader(media, layout.wal_chunks, epoch=4)
        assert run(media, reader.read_proc()) == []

    def test_flush_pads_to_write_unit(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_commit(1)
        written = run(media, appender.flush_proc())
        assert written == media.geometry.ws_min

    def test_empty_flush_is_noop(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        assert run(media, appender.flush_proc()) == 0

    def test_ring_exhaustion_raises(self):
        device, media = make_media(chunks=6)
        layout = MetadataLayout.build(media.geometry, wal_chunk_count=1,
                                      ckpt_chunks_per_slot=1)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        with pytest.raises(FTLError, match="ring exhausted"):
            for i in range(1000):
                appender.append_commit(i)
                run(media, appender.flush_proc())

    def test_truncate_resets_ring_and_epoch(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_commit(1)
        run(media, appender.flush_proc())
        run(media, appender.truncate_proc(new_epoch=1))
        assert appender.epoch == 1
        assert appender.used_sectors == 0
        # Old records invisible at the new epoch.
        reader = WalReader(media, layout.wal_chunks, epoch=1)
        assert run(media, reader.read_proc()) == []
        # Appends work again.
        appender.append_commit(2)
        run(media, appender.flush_proc())
        reader = WalReader(media, layout.wal_chunks, epoch=1)
        records = run(media, reader.read_proc())
        assert len(records) == 1

    def test_torn_tail_is_dropped_cleanly(self):
        """A crash mid-flush leaves a partial batch below the flushed
        pointer; the reader stops at the break in the sequence chain."""
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        appender.append_commit(1)
        run(media, appender.flush_proc())
        appender.append_commit(2)
        run(media, appender.flush_proc())
        device.crash_volatile()   # FUA writes survive; nothing torn here
        reader = WalReader(media, layout.wal_chunks, epoch=0)
        records = run(media, reader.read_proc())
        assert len(records) == 2

    def test_fill_fraction(self):
        device, media = make_media()
        layout = layout_for(media)
        appender = WalAppender(media, layout.wal_chunks, epoch=0)
        assert appender.fill_fraction() == 0.0
        appender.append_commit(1)
        run(media, appender.flush_proc())
        assert 0 < appender.fill_fraction() < 1


class TestCheckpoint:
    def build_state(self, media, layout, entries):
        page_map = PageMap()
        table = ChunkTable(media.geometry, iter(layout.data_chunk_keys()))
        for lba, ppa in entries:
            page_map.update(lba, ppa)
        return page_map, table

    def test_write_read_roundtrip(self):
        device, media = make_media()
        layout = layout_for(media)
        manager = CheckpointManager(media, layout.ckpt_slots)
        page_map, table = self.build_state(media, layout,
                                           [(i, i * 7) for i in range(500)])
        run(media, manager.write_proc(1, page_map, table, next_txn_id=42))
        snapshot = run(media, manager.read_latest_proc())
        assert snapshot.seq == 1
        assert snapshot.next_txn_id == 42
        assert dict(snapshot.map_entries) == {i: i * 7 for i in range(500)}

    def test_slots_alternate_and_newest_wins(self):
        device, media = make_media()
        layout = layout_for(media)
        manager = CheckpointManager(media, layout.ckpt_slots)
        page_map, table = self.build_state(media, layout, [(1, 10)])
        run(media, manager.write_proc(1, page_map, table, 2))
        page_map.update(1, 20)
        run(media, manager.write_proc(2, page_map, table, 3))
        snapshot = run(media, manager.read_latest_proc())
        assert snapshot.seq == 2
        assert dict(snapshot.map_entries)[1] == 20
        # The older slot is intact: corrupting the newest falls back.
        slot_b = layout.ckpt_slots[0 if 2 % 2 == 0 else 1]
        run(media, media.reset_proc(Ppa(*slot_b[0], 0)))
        snapshot = run(media, manager.read_latest_proc())
        assert snapshot.seq == 1
        assert dict(snapshot.map_entries)[1] == 10

    def test_incomplete_checkpoint_ignored(self):
        """A crash mid-checkpoint leaves a footerless slot; recovery must
        fall back to the previous complete one."""
        device, media = make_media()
        layout = layout_for(media)
        manager = CheckpointManager(media, layout.ckpt_slots)
        page_map, table = self.build_state(media, layout, [(1, 10)])
        run(media, manager.write_proc(1, page_map, table, 2))

        # Hand-write a partial "checkpoint 2": header only, no footer.
        from repro.ox.ftl import serial
        slot = layout.ckpt_slots[0]
        run(media, media.reset_proc(Ppa(*slot[0], 0)))
        writer = serial.FrameWriter(media.geometry.sector_size)
        writer.append(serial.encode_ckpt_header(2, 0, 0, 9))
        frames = writer.frames()
        pad = (-len(frames)) % media.geometry.ws_min
        empty = serial.FrameWriter(media.geometry.sector_size)
        empty.append(serial.encode_record(serial.REC_NOOP, b""))
        frames.extend([empty.frames()[0]] * pad)
        ppas = [Ppa(*slot[0], i) for i in range(len(frames))]
        run(media, media.write_proc(ppas, frames, fua=True))

        snapshot = run(media, manager.read_latest_proc())
        assert snapshot.seq == 1

    def test_fresh_device_has_no_checkpoint(self):
        device, media = make_media()
        layout = layout_for(media)
        manager = CheckpointManager(media, layout.ckpt_slots)
        assert run(media, manager.read_latest_proc()) is None

    def test_oversized_checkpoint_rejected(self):
        device, media = make_media(chunks=8, pages=6)
        layout = MetadataLayout.build(media.geometry, wal_chunk_count=1,
                                      ckpt_chunks_per_slot=1)
        manager = CheckpointManager(media, layout.ckpt_slots)
        page_map, table = self.build_state(
            media, layout, [(i, i) for i in range(100_000)])
        with pytest.raises(FTLError, match="enlarge"):
            run(media, manager.write_proc(1, page_map, table, 2))
