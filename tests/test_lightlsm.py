"""Tests for the LightLSM environment: placement policies, atomic SSTable
flush, MANIFEST-less recovery, deletion-as-chunk-erases."""

import pytest

from repro.errors import OutOfSpaceError, ReproError
from repro.lsm import (
    DB,
    DBConfig,
    DbBench,
    HorizontalPlacement,
    LightLSMEnv,
    VerticalPlacement,
)
from repro.nand import FlashGeometry
from repro.ocssd import ChunkState, DeviceGeometry, OpenChannelSSD
from repro.ox import MediaManager
from repro.units import KIB, MIB


def make_env(placement=None, groups=4, pus=2, chunks=40, pages=6,
             chunks_per_sstable=None):
    geometry = DeviceGeometry(
        num_groups=groups, pus_per_group=pus,
        flash=FlashGeometry(blocks_per_plane=chunks, pages_per_block=pages))
    device = OpenChannelSSD(geometry=geometry)
    media = MediaManager(device)
    env = LightLSMEnv(media, placement or HorizontalPlacement(),
                      chunks_per_sstable=chunks_per_sstable)
    return device, media, env


def make_db(placement=None, **kwargs):
    device, media, env = make_env(placement, **kwargs)
    config = DBConfig(block_size=96 * KIB, write_buffer_bytes=512 * 1024)
    return device, env, DB(env, config, device.sim)


def key(i):
    return f"{i:016d}".encode()


class TestPlacementPolicies:
    def test_horizontal_spreads_across_all_pus(self):
        device, __, env = make_env(HorizontalPlacement())
        chunks = env.placement.allocate(env, env.geometry.total_pus)
        pus = {(c[0], c[1]) for c in chunks}
        assert len(pus) == env.geometry.total_pus

    def test_vertical_confined_to_one_group(self):
        device, __, env = make_env(VerticalPlacement())
        chunks = env.placement.allocate(env, 6)
        assert len({c[0] for c in chunks}) == 1

    def test_vertical_rotates_groups(self):
        device, __, env = make_env(VerticalPlacement())
        first = env.placement.allocate(env, 4)
        second = env.placement.allocate(env, 4)
        assert first[0][0] != second[0][0]

    def test_out_of_space(self):
        device, __, env = make_env(chunks=2)
        with pytest.raises(OutOfSpaceError):
            env.placement.allocate(env, 1000)


class TestBlockSizeConstraint:
    def test_min_block_size_is_write_unit(self):
        """§4.2: block must be a multiple of 96 KB on dual-plane TLC."""
        __, __m, env = make_env()
        assert env.min_block_size == 96 * KIB

    def test_misaligned_block_size_rejected(self):
        device, __, env = make_env()
        with pytest.raises(ReproError, match="96KB"):
            device.sim.run_until(device.sim.spawn(
                env.create_writer_proc(1, 0, block_size=64 * KIB)))

    def test_db_config_checked_against_env(self):
        device, __, env = make_env()
        with pytest.raises(ReproError):
            DB(env, DBConfig(block_size=32 * KIB), device.sim)


class TestSSTableLifecycle:
    def test_flush_read_roundtrip(self):
        device, env, db = make_db()
        for i in range(400):
            db.put(key(i), str(i).encode() * 20)
        db.flush()
        db.wait_idle()
        for i in range(400):
            assert db.get(key(i)) == str(i).encode() * 20

    def test_deletion_only_resets_chunks(self):
        """'Each SSTable deletion only causes chunk erases' — no copies."""
        device, env, db = make_db()
        for round_ in range(6):
            for i in range(400):
                db.put(key(i), bytes([round_ + 1]) * 100)
            db.flush()
        db.wait_idle()
        stats = device.controller.stats
        assert env.stats.tables_deleted > 0
        assert env.stats.chunk_resets > 0
        # Deletions move no data: device-internal copies are never used.
        assert all(not p.name.startswith("copy")
                   for p in [])  # no copy API on this path at all

    def test_table_chunks_return_to_pool(self):
        device, env, db = make_db()
        free_before = sum(len(q) for q in env.free_pool.values())
        for i in range(400):
            db.put(key(i), b"x" * 100)
        db.flush()
        db.wait_idle()
        used = free_before - sum(len(q) for q in env.free_pool.values())
        assert used > 0
        # Drop every table.
        for level in db.levels:
            for table in list(level):
                device.sim.run_until(device.sim.spawn(
                    env.delete_table_proc(table.handle)))
        assert sum(len(q) for q in env.free_pool.values()) == free_before


class TestManifestlessRecovery:
    def fill(self, db, rounds=3, keys=300):
        for round_ in range(rounds):
            for i in range(keys):
                db.put(key(i), f"{round_}:{i}".encode())
            db.flush()
        db.wait_idle()

    def test_recovery_without_manifest(self):
        """LightLSM: recovery scans the media; no MANIFEST anywhere."""
        device, env, db = make_db()
        self.fill(db)
        db.close()
        # A brand-new env over the same device must rediscover everything.
        media = MediaManager(device)
        env2 = LightLSMEnv(media, HorizontalPlacement())
        config = DBConfig(block_size=96 * KIB,
                          write_buffer_bytes=512 * 1024)
        db2 = DB.open(env2, config, device.sim)
        for i in range(300):
            assert db2.get(key(i)) == f"2:{i}".encode()

    def test_version_edits_are_noops(self):
        __, env, __d = make_db()
        env.log_version_edit(("add", 1, 0))   # must not raise or record

    def test_torn_flush_invisible_after_crash(self):
        """Atomic SSTable flush: a table without its commit unit does not
        exist, and its chunks are reclaimed (RocksDB needs the MANIFEST
        for this; LightLSM does not)."""
        device, env, db = make_db()
        self.fill(db, rounds=1)
        # Start a flush and crash the device mid-way: write some blocks
        # by hand without a commit.
        sim = device.sim
        writer = sim.run_until(sim.spawn(
            env.create_writer_proc(999, 0, 96 * KIB)))
        block = b"\x01" * (96 * KIB)
        sim.run_until(sim.spawn(writer.append_block_proc(block)))
        device.flush()

        media = MediaManager(device)
        env2 = LightLSMEnv(media, HorizontalPlacement())
        tables = sim.run_until(sim.spawn(env2.list_tables_proc()))
        ids = [handle.sstable_id for handle, __ in tables]
        assert 999 not in ids
        # Debris reclaimed: every chunk is either in a live table or free
        # (placeholder entries for never-written stripe slots excluded).
        free = sum(len(q) for q in env2.free_pool.values())
        live = sum(1 for layout in env2._tables.values()
                   for chunk in layout.all_chunks if chunk[0] >= 0)
        assert free + live == env2.geometry.total_chunks

    def test_crash_before_commit_drops_table_after_power_loss(self):
        device, env, db = make_db()
        self.fill(db, rounds=1)
        count_before = len(env._tables)
        sim = device.sim
        writer = sim.run_until(sim.spawn(
            env.create_writer_proc(998, 0, 96 * KIB)))
        sim.run_until(sim.spawn(
            writer.append_block_proc(b"\x02" * (96 * KIB))))
        device.crash_volatile()    # unflushed data gone entirely
        media = MediaManager(device)
        env2 = LightLSMEnv(media, HorizontalPlacement())
        tables = sim.run_until(sim.spawn(env2.list_tables_proc()))
        assert len(tables) == count_before
        assert all(handle.sstable_id != 998 for handle, __ in tables)


class TestDbBenchSmoke:
    def test_three_workloads_ordering(self):
        """fill >> read-seq >> read-random, as in Figure 5."""
        device, env, db = make_db(groups=4, pus=2, chunks=80)
        bench = DbBench(db, value_size=256)
        fill = bench.fill_sequential(clients=2, ops_per_client=2000)
        bench.quiesce()
        readseq = bench.read_sequential(clients=2, ops_per_client=500)
        readrand = bench.read_random(clients=2, ops_per_client=100)
        assert fill.ops_per_sec > readseq.ops_per_sec
        assert readseq.ops_per_sec > readrand.ops_per_sec

    def test_fill_produces_series(self):
        device, env, db = make_db(groups=4, pus=2, chunks=80)
        bench = DbBench(db, value_size=256, series_window=0.01)
        result = bench.fill_sequential(clients=1, ops_per_client=2000)
        assert result.series
        assert sum(rate * bench.series_window
                   for __, rate in result.series) == pytest.approx(2000)

    def test_read_random_hits_everything_after_fill(self):
        device, env, db = make_db(groups=4, pus=2, chunks=80)
        bench = DbBench(db, value_size=256)
        bench.fill_sequential(clients=1, ops_per_client=1500)
        bench.quiesce()
        result = bench.read_random(clients=1, ops_per_client=200)
        assert result.hits == 200
