"""Tests for the §2.1 unit-of-write arithmetic — including the paper's two
worked examples, which must come out exactly."""

import pytest

from repro.nand import (
    CellType,
    paired_pages,
    unit_of_write_bytes,
    unit_of_write_pages,
    unit_of_write_sectors,
)
from repro.units import KIB


def test_bits_per_cell():
    assert CellType.SLC.bits_per_cell == 1
    assert CellType.MLC.bits_per_cell == 2
    assert CellType.TLC.bits_per_cell == 3
    assert CellType.QLC.bits_per_cell == 4


def test_paired_pages_match_bits():
    for cell in CellType:
        assert paired_pages(cell) == cell.bits_per_cell


def test_paper_example_qlc_four_planes():
    """§2.1: 'on a QLC chip with 4 planes ... the unit of write is 16 pages
    = 16*4 sectors = 16*4*4KB = 256 KB'."""
    assert unit_of_write_pages(CellType.QLC, planes=4) == 16
    assert unit_of_write_sectors(CellType.QLC, planes=4,
                                 sectors_per_page=4) == 64
    assert unit_of_write_bytes(CellType.QLC, planes=4, sectors_per_page=4,
                               sector_size=4 * KIB) == 256 * KIB


def test_paper_example_dual_plane_tlc():
    """§2.2: '24 logical blocks on a dual-plane TLC drive, corresponding to
    4 (sectors per page) * 3 (paired pages) * 2 (planes)' = 96 KB."""
    assert unit_of_write_sectors(CellType.TLC, planes=2,
                                 sectors_per_page=4) == 24
    assert unit_of_write_bytes(CellType.TLC, planes=2, sectors_per_page=4,
                               sector_size=4 * KIB) == 96 * KIB


def test_slc_single_plane_minimal_unit():
    """SLC, 1 plane: the unit of write is a single flash page."""
    assert unit_of_write_pages(CellType.SLC, planes=1) == 1
    assert unit_of_write_sectors(CellType.SLC, planes=1,
                                 sectors_per_page=4) == 4


def test_unit_of_write_grows_with_density():
    units = [unit_of_write_bytes(cell, planes=2, sectors_per_page=4,
                                 sector_size=4 * KIB)
             for cell in (CellType.SLC, CellType.MLC, CellType.TLC,
                          CellType.QLC)]
    assert units == sorted(units)
    assert len(set(units)) == len(units)


def test_invalid_plane_counts_rejected():
    for planes in (0, 3, 5, -1):
        with pytest.raises(ValueError):
            unit_of_write_pages(CellType.TLC, planes=planes)


def test_invalid_sector_parameters_rejected():
    with pytest.raises(ValueError):
        unit_of_write_sectors(CellType.TLC, planes=2, sectors_per_page=0)
    with pytest.raises(ValueError):
        unit_of_write_bytes(CellType.TLC, planes=2, sectors_per_page=4,
                            sector_size=0)
